//! Offline stand-in for the `proptest` crate.
//!
//! Supports the slice of the proptest DSL the workspace's property tests use:
//! the `proptest!` macro (with an optional `#![proptest_config(...)]` header),
//! range and tuple strategies, `prop::collection::vec`, `prop_map` /
//! `prop_flat_map`, and the `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Sampling is deterministic (seeded per test body, advancing per case) rather
//! than entropy-driven, and failing cases are reported but not shrunk.  Those
//! are the only semantic differences; test bodies compile unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Test-runner plumbing: config, RNG and the error type raised by
/// `prop_assert!`.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;

    /// Number of cases to run per property (mirrors
    /// `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of sampled cases per property test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` sampled inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed property-test case.
    #[derive(Debug)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Creates a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// A source of random values of type [`Strategy::Value`].
pub trait Strategy: Sized {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Samples a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, i64, i32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Length specifications accepted by [`vec`]: a fixed length or a range.
    pub trait SizeSpec {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeSpec for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeSpec for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.start..self.end)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a fixed or
    /// ranged length.
    pub fn vec<S: Strategy, L: SizeSpec>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};

    /// Module alias so `prop::collection::vec` resolves as in upstream
    /// proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Fails the current property case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[doc(hidden)]
pub fn __run_cases<F: FnMut(&mut StdRng) -> Result<(), test_runner::TestCaseError>>(
    test_name: &str,
    cases: u32,
    mut body: F,
) {
    // Deterministic per-test seed: stable across runs, distinct across tests.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..cases {
        if let Err(e) = body(&mut rng) {
            panic!("property `{test_name}` failed at case {case}/{cases}: {e}");
        }
    }
}

/// The `proptest!` test-declaration macro.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                $crate::__run_cases(stringify!($name), config.cases, |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}
