//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros with
//! criterion-compatible signatures.  Measurement is a simple adaptive
//! wall-clock loop: warm up, calibrate the iteration count to a target window,
//! then report the mean, min and max time per iteration on stdout.  It has no
//! statistical machinery, but it is plenty to compare implementations and to
//! keep `cargo bench` runnable offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement window per benchmark (after warm-up).
const MEASURE_WINDOW: Duration = Duration::from_millis(400);
/// Warm-up window per benchmark.
const WARMUP_WINDOW: Duration = Duration::from_millis(100);

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    /// Number of measurement samples per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Builder: sets the number of measurement samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Builder: accepted for criterion compatibility (this harness warms up
    /// adaptively, so the duration is not used).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Builder: accepted for criterion compatibility (this harness calibrates
    /// its measurement window adaptively, so the duration is not used).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Runs a benchmark parameterised by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finishes the group (markers only; measurements are printed eagerly).
    pub fn finish(self) {}
}

/// A benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Mean nanoseconds per iteration of each sample.
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Measures the mean time of `routine` over calibrated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch size until one batch takes ≥ ~1/8 of the
        // per-sample budget, so cheap routines are timed over many iterations.
        let per_sample = MEASURE_WINDOW.div_f64(self.samples as f64);
        let mut warmup_spent = Duration::ZERO;
        while warmup_spent
            < WARMUP_WINDOW
                .div_f64(self.samples as f64)
                .max(Duration::from_micros(200))
        {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            warmup_spent += elapsed;
            if elapsed < per_sample / 8 && self.iters_per_sample < u64::MAX / 2 {
                self.iters_per_sample *= 2;
            } else {
                break;
            }
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / self.iters_per_sample as f64;
            self.sample_ns.push(ns);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: samples.max(1),
        sample_ns: Vec::new(),
    };
    f(&mut bencher);
    if bencher.sample_ns.is_empty() {
        println!("{id:<50} (no measurement: Bencher::iter never called)");
        return;
    }
    let n = bencher.sample_ns.len() as f64;
    let mean = bencher.sample_ns.iter().sum::<f64>() / n;
    let min = bencher
        .sample_ns
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = bencher.sample_ns.iter().cloned().fold(0.0_f64, f64::max);
    println!(
        "{id:<50} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring `criterion_group!`
/// (both the plain list form and the `name`/`config`/`targets` form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
