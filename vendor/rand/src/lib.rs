//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! Implements the slice of the rand API the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::shuffle` — on top of a xoshiro256++ generator seeded via
//! splitmix64.  The streams are deterministic per seed (which is all the
//! reproduction protocol requires) but do not match upstream `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the (excluded) end point.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty inclusive range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

/// The user-facing random-sampling interface (blanket-implemented for every
/// [`RngCore`], mirroring rand 0.8).
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-sampled type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (fast, 256-bit state,
    /// passes BigCrush), seeded through splitmix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// Exposes the raw xoshiro256++ state, so callers can checkpoint the
        /// stream position (the optimizer's snapshot/resume seam).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position captured by
        /// [`StdRng::state`].  The caller is responsible for supplying a state
        /// that came from a real generator (an all-zero state is a fixed
        /// point and is rejected by substituting the seed-0 stream).
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return <StdRng as SeedableRng>::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the only `SliceRandom` method the workspace uses).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v), "{v}");
        }
        let tiny = rng.gen_range(f64::MIN_POSITIVE..1.0);
        assert!((f64::MIN_POSITIVE..1.0).contains(&tiny));
    }

    #[test]
    fn integer_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }
}
