//! Offline stand-in for `serde_derive`.
//!
//! The workspace vendors its (tiny) dependency surface so it builds with no
//! network access.  Nothing in the workspace actually serializes values — the
//! `#[derive(Serialize, Deserialize)]` attributes only need to produce valid
//! marker-trait impls, which is exactly what this proc macro does.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the type a derive is attached to.
///
/// Walks the token stream past attributes and visibility until it sees the
/// `struct` or `enum` keyword; the next identifier is the type name.  Generic
/// types are not supported (the workspace has none).
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if matches!(tokens.next(), Some(TokenTree::Punct(p)) if p.as_char() == '<')
                        {
                            panic!("the vendored serde_derive does not support generic types");
                        }
                        return name.to_string();
                    }
                    other => panic!("expected a type name after `{word}`, found {other:?}"),
                }
            }
        }
    }
    panic!("derive input contained no struct or enum");
}

/// No-op `Serialize` derive: emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// No-op `Deserialize` derive: emits `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
