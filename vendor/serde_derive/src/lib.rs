//! Offline stand-in for `serde_derive`.
//!
//! Generates real `Serialize` / `Deserialize` impls for the vendored serde's
//! `Value` data model by parsing the derive input token stream by hand (no
//! `syn`/`quote`, so the crate builds with no network access).  Supported
//! shapes — which cover everything the workspace derives on — are
//! non-generic named-field structs, tuple structs, unit structs, and enums
//! whose variants are unit, tuple, or struct-like.
//!
//! Encoding (matching serde's externally-tagged default):
//!
//! * named struct  → `Map { field: value, ... }` (declaration order)
//! * tuple struct  → `Seq [ value, ... ]`
//! * unit struct   → `Null`
//! * unit variant  → `Str("Variant")`
//! * tuple variant → `Map { "Variant": Seq [...] }`
//! * struct variant→ `Map { "Variant": Map {...} }`
//!
//! Only field *names* are needed for code generation: the deserialize side
//! builds a struct literal whose field types drive inference through
//! `serde::from_field`, so the macro never has to understand Rust types —
//! it only tracks `<>` nesting well enough to find field-separating commas.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Input {
    UnitStruct {
        name: String,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips `#[...]` attribute sequences (doc comments included).
fn skip_attributes(iter: &mut TokenIter) {
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        iter.next(); // the bracketed attribute body
    }
}

/// Skips `pub` / `pub(crate)` / `pub(super)` visibility.
fn skip_visibility(iter: &mut TokenIter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

/// Consumes tokens up to and including the next comma at angle-bracket depth
/// zero.  Returns `false` when the iterator is exhausted first.  Handles `->`
/// (function-pointer return types) so its `>` does not close a generic.
fn consume_until_comma(iter: &mut TokenIter) -> bool {
    let mut depth: i64 = 0;
    let mut prev_dash = false;
    for tt in iter.by_ref() {
        let mut dash = false;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                ',' if depth == 0 => return true,
                '<' => depth += 1,
                '>' if !prev_dash => depth -= 1,
                '-' => dash = true,
                _ => {}
            }
        }
        prev_dash = dash;
    }
    false
}

/// Field names of a named-field body (struct or struct-like enum variant).
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut iter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(name)) => fields.push(name.to_string()),
            None => break,
            other => panic!("expected a field name, found {other:?}"),
        }
        if !consume_until_comma(&mut iter) {
            break;
        }
    }
    fields
}

/// Number of fields in a tuple body (struct or tuple enum variant).
fn tuple_arity(body: TokenStream) -> usize {
    let mut iter = body.into_iter().peekable();
    let mut arity = 0;
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        arity += 1;
        if !consume_until_comma(&mut iter) {
            break;
        }
    }
    arity
}

/// Variants of an enum body.
fn enum_variants(body: TokenStream) -> Vec<Variant> {
    let mut iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(name)) => name.to_string(),
            None => break,
            other => panic!("expected a variant name, found {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                iter.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Consume the separating comma (and any explicit discriminant).
        if !consume_until_comma(&mut iter) {
            break;
        }
    }
    variants
}

/// Parses the derive input into one of the supported shapes.
fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // attribute body
            }
            Some(TokenTree::Ident(ident)) => {
                let word = ident.to_string();
                if word != "struct" && word != "enum" {
                    continue; // visibility or other modifier
                }
                let name = match iter.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("expected a type name after `{word}`, found {other:?}"),
                };
                if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                    panic!("the vendored serde_derive does not support generic types");
                }
                if word == "enum" {
                    return match iter.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            Input::Enum {
                                name,
                                variants: enum_variants(g.stream()),
                            }
                        }
                        other => panic!("expected an enum body, found {other:?}"),
                    };
                }
                return match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Input::NamedStruct {
                            name,
                            fields: named_fields(g.stream()),
                        }
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Input::TupleStruct {
                            name,
                            arity: tuple_arity(g.stream()),
                        }
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input::UnitStruct { name },
                    other => panic!("expected a struct body, found {other:?}"),
                };
            }
            Some(_) => {}
            None => panic!("derive input contained no struct or enum"),
        }
    }
}

fn serialize_body(input: &Input) -> String {
    match input {
        Input::UnitStruct { .. } => "::serde::Value::Null".to_string(),
        Input::TupleStruct { arity, .. } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Input::NamedStruct { fields, .. } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string())"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binders: Vec<String> =
                                (0..*arity).map(|i| format!("f{i}")).collect();
                            let values: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Seq(vec![{vals}]))])",
                                binds = binders.join(", "),
                                vals = values.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(vec![{vals}]))])",
                                binds = fields.join(", "),
                                vals = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    }
}

fn deserialize_body(input: &Input) -> String {
    match input {
        Input::UnitStruct { name } => format!(
            "match value {{ \
               ::serde::Value::Null => Ok({name}), \
               _ => Err(::serde::DeError::expected(\"null for unit struct {name}\")), \
             }}"
        ),
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_seq().ok_or_else(|| \
                     ::serde::DeError::expected(\"sequence for tuple struct {name}\"))?; \
                 if items.len() != {arity} {{ \
                     return Err(::serde::DeError::new(format!( \
                         \"expected {arity} elements for {name}, got {{}}\", items.len()))); \
                 }} \
                 Ok({name}({fields}))",
                fields = items.join(", ")
            )
        }
        Input::NamedStruct { name, fields } => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(entries, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "let entries = value.as_map().ok_or_else(|| \
                     ::serde::DeError::expected(\"map for struct {name}\"))?; \
                 Ok({name} {{ {fields} }})",
                fields = items.join(", ")
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vname}\" => Ok({name}::{vname})", vname = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ \
                                     let items = _payload.as_seq().ok_or_else(|| \
                                         ::serde::DeError::expected(\"sequence for variant {name}::{vname}\"))?; \
                                     if items.len() != {arity} {{ \
                                         return Err(::serde::DeError::new(format!( \
                                             \"expected {arity} elements for {name}::{vname}, got {{}}\", items.len()))); \
                                     }} \
                                     Ok({name}::{vname}({fields})) \
                                 }}",
                                fields = items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::from_field(fields, \"{f}\", \"{name}::{vname}\")?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ \
                                     let fields = _payload.as_map().ok_or_else(|| \
                                         ::serde::DeError::expected(\"map for variant {name}::{vname}\"))?; \
                                     Ok({name}::{vname} {{ {inner} }}) \
                                 }}",
                                inner = items.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(tag) = value {{ \
                     return match tag.as_str() {{ \
                         {unit_arms} \
                         other => Err(::serde::DeError::new(format!( \
                             \"unknown unit variant `{{other}}` of {name}\"))), \
                     }}; \
                 }} \
                 let entries = value.as_map().ok_or_else(|| \
                     ::serde::DeError::expected(\"string or map for enum {name}\"))?; \
                 if entries.len() != 1 {{ \
                     return Err(::serde::DeError::expected(\"single-entry map for enum {name}\")); \
                 }} \
                 let (tag, _payload) = &entries[0]; \
                 match tag.as_str() {{ \
                     {data_arms} \
                     other => Err(::serde::DeError::new(format!( \
                         \"unknown variant `{{other}}` of {name}\"))), \
                 }}",
                unit_arms = unit_arms
                    .iter()
                    .map(|a| format!("{a},"))
                    .collect::<String>(),
                data_arms = data_arms
                    .iter()
                    .map(|a| format!("{a},"))
                    .collect::<String>(),
            )
        }
    }
}

fn input_name(input: &Input) -> &str {
    match input {
        Input::UnitStruct { name }
        | Input::TupleStruct { name, .. }
        | Input::NamedStruct { name, .. }
        | Input::Enum { name, .. } => name,
    }
}

/// `Serialize` derive: emits a real `to_value` implementation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = input_name(&parsed);
    let body = serialize_body(&parsed);
    format!(
        "#[automatically_derived] \
         impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// `Deserialize` derive: emits a real `from_value` implementation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = input_name(&parsed);
    let body = deserialize_body(&parsed);
    format!(
        "#[automatically_derived] \
         impl<'de> ::serde::Deserialize<'de> for {name} {{ \
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
