//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations; no code path serializes a value.  This crate provides the two
//! traits as empty markers and re-exports the no-op derive macros, so the
//! annotated code compiles unchanged with no network access.  Swapping in the
//! real serde later is a one-line change in the workspace manifest.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
