//! Offline stand-in for `serde` — now a real (minimal) serializer.
//!
//! Earlier revisions of this vendor crate provided `Serialize` /
//! `Deserialize` as empty marker traits because nothing in the workspace
//! serialized a value.  The Bayesian-optimization loop's checkpoint/resume
//! seam changed that: optimizer snapshots must round-trip **bit-exactly**
//! through a byte format.  This crate therefore implements a small,
//! self-describing data model:
//!
//! * [`Value`] — a JSON-shaped tree (null / bool / integers / f64 / string /
//!   sequence / ordered map);
//! * [`Serialize`] — `fn to_value(&self) -> Value`;
//! * [`Deserialize`] — `fn from_value(&Value) -> Result<Self, DeError>`
//!   (the `'de` lifetime parameter is kept for signature compatibility with
//!   the real serde; nothing borrows from the input);
//! * [`json`] — a JSON writer/parser for [`Value`] whose `f64` encoding uses
//!   Rust's shortest-round-trip formatting, so every finite float
//!   deserializes to exactly the bits that were serialized (non-finite
//!   values are encoded as the strings `"NaN"` / `"inf"` / `"-inf"`).
//!
//! The `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! vendored `serde_derive`) generate real impls for non-generic structs and
//! enums: named-field structs map to [`Value::Map`], tuple structs to
//! [`Value::Seq`], unit enum variants to [`Value::Str`], and data-carrying
//! variants to a single-entry map keyed by the variant name (serde's
//! externally-tagged representation).
//!
//! Swapping in the real serde remains possible but is no longer a pure
//! manifest change: the checkpoint code calls `to_value`/`from_value`
//! directly and would need a thin adapter over `serde_json::Value`.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree (the subset of the serde data model the
/// workspace needs, shaped like JSON).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (`Option::None`, unit structs).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (non-negative integers normalise to [`Value::U64`]).
    I64(i64),
    /// A double-precision float (NaN/±inf are representable; the JSON layer
    /// encodes them as strings).
    F64(f64),
    /// A UTF-8 string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map lookup by key (linear scan; maps here are tiny field lists).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Borrow as a map entry list.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow as a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the shape a
/// [`Deserialize`] impl expects.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a free-form message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Creates an "expected X" error.
    pub fn expected(what: &str) -> Self {
        DeError::new(format!("expected {what}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialization to the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
///
/// The `'de` lifetime parameter exists for signature compatibility with the
/// real serde (`impl<'de> Deserialize<'de> for T`); implementations never
/// borrow from the input.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Reads a struct field out of a map entry list (the helper generated
/// `Deserialize` impls call).
pub fn from_field<'de, T: Deserialize<'de>>(
    entries: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    let value = entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{key}` of struct {ty}")))?;
    T::from_value(value).map_err(|e| DeError::new(format!("field `{key}` of {ty}: {e}")))
}

/// Serializes a value to a JSON string (convenience over [`json::to_string`]).
pub fn to_json_string<T: Serialize + ?Sized>(value: &T) -> String {
    json::to_string(&value.to_value())
}

/// Deserializes a value from a JSON string.
pub fn from_json_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, DeError> {
    let value = json::from_str(s).map_err(|e| DeError::new(format!("invalid JSON: {e}")))?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[allow(unused_comparisons)]
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match *value {
                    Value::U64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::new(format!("{v} out of range for {}", stringify!($t)))),
                    Value::I64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::new(format!("{v} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::F64(v) => Ok(v),
            Value::U64(v) => Ok(v as f64),
            Value::I64(v) => Ok(v as f64),
            _ => Err(DeError::expected("f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($len:literal: $($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_seq()
                    .ok_or_else(|| DeError::expected("tuple sequence"))?;
                if items.len() != $len {
                    return Err(DeError::new(format!(
                        "expected tuple of {} elements, got {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (1: A.0);
    (2: A.0, B.1);
    (3: A.0, B.1, C.2);
    (4: A.0, B.1, C.2, D.3);
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

pub mod json;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(vec![1.0f64, 2.0], 3usize)];
        let rt: Vec<(Vec<f64>, usize)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(rt, v);
        let o: Option<f64> = None;
        assert_eq!(o.to_value(), Value::Null);
        let rt: Option<f64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(rt, None);
        let arr = [1u64, 2, 3, 4];
        let rt: [u64; 4] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(rt, arr);
    }

    #[test]
    fn negative_integers_normalise() {
        assert_eq!(3i64.to_value(), Value::U64(3));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(i64::from_value(&Value::U64(3)).unwrap(), 3);
    }

    #[test]
    fn shape_mismatches_are_errors() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(<[u64; 2]>::from_value(&vec![1u64].to_value()).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
        let err = from_field::<u64>(&[], "missing", "T").unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }
}
