//! JSON encoding of [`Value`](crate::Value) trees.
//!
//! The encoder is tuned for the optimizer's checkpoint format rather than
//! interchange with arbitrary JSON consumers:
//!
//! * finite `f64`s print with Rust's shortest-round-trip formatting (the
//!   `{}` float formatter), which guarantees `parse::<f64>()` returns the
//!   identical bits — the property the snapshot/resume bit-identity tests
//!   rely on.  A fractional marker (`.0`) is appended when the shortest form
//!   looks like an integer so the parser can reconstruct the [`Value::F64`]
//!   variant (not just the bits);
//! * non-finite floats are encoded as the *strings* `"NaN"`, `"inf"` and
//!   `"-inf"` — standard JSON has no spelling for them, and quoting keeps
//!   bare NaN/inf tokens out of emitted artifacts;
//! * map key order is preserved, so equal values encode to equal strings.

use crate::Value;

/// Error (message plus byte offset) from [`from_str`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Serializes a value tree to a compact JSON string.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => {
            out.push_str(&v.to_string());
        }
        Value::I64(v) => {
            out.push_str(&v.to_string());
        }
        Value::F64(v) => write_f64(*v, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "\"inf\"" } else { "\"-inf\"" });
    } else {
        let s = format!("{v}");
        out.push_str(&s);
        // `{}` prints e.g. `1` for 1.0_f64; mark the value as fractional so
        // the parser rebuilds Value::F64 rather than Value::U64.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON string into a value tree.
///
/// Numbers without a fraction/exponent parse as [`Value::U64`] /
/// [`Value::I64`]; numbers with one parse as [`Value::F64`].  The strings
/// `"NaN"`, `"inf"` and `"-inf"` parse as [`Value::Str`] — converting them
/// back to non-finite floats is the job of `f64`'s `Deserialize` caller
/// context (the checkpoint layer stores only finite floats, so it never
/// needs to).
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn parse_seq(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in sequence")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in map")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this
                            // checkpoint format; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape character")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    fractional = true;
                    self.pos += 1;
                }
                b'+' | b'-' if fractional => self.pos += 1,
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if fractional {
            let v: f64 = text
                .parse()
                .map_err(|_| self.error("invalid float literal"))?;
            Ok(Value::F64(v))
        } else if text.starts_with('-') {
            let v: i64 = text
                .parse()
                .map_err(|_| self.error("invalid integer literal"))?;
            Ok(Value::I64(v))
        } else {
            let v: u64 = text
                .parse()
                .map_err(|_| self.error("invalid integer literal"))?;
            Ok(Value::U64(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        from_str(&to_string(v)).expect("round trip parses")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::U64(0),
            Value::U64(u64::MAX),
            Value::I64(-1),
            Value::I64(i64::MIN),
            Value::Str(String::new()),
            Value::Str("hello \"quoted\" \\ line\nend\tтест".into()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        let cases = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            1.5,
            0.1,
            1e-308,
            f64::MIN_POSITIVE,
            5e-324, // subnormal
            f64::MAX,
            std::f64::consts::PI,
            1.0 / 3.0,
            6.02214076e23,
        ];
        for &v in &cases {
            let rt = round_trip(&Value::F64(v));
            match rt {
                Value::F64(w) => assert_eq!(w.to_bits(), v.to_bits(), "{v:?}"),
                other => panic!("expected F64 back for {v:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn non_finite_floats_encode_as_strings() {
        assert_eq!(to_string(&Value::F64(f64::NAN)), "\"NaN\"");
        assert_eq!(to_string(&Value::F64(f64::INFINITY)), "\"inf\"");
        assert_eq!(to_string(&Value::F64(f64::NEG_INFINITY)), "\"-inf\"");
    }

    #[test]
    fn containers_round_trip() {
        let v = Value::Map(vec![
            ("empty_seq".into(), Value::Seq(vec![])),
            ("empty_map".into(), Value::Map(vec![])),
            (
                "nested".into(),
                Value::Seq(vec![
                    Value::U64(1),
                    Value::F64(2.5),
                    Value::Map(vec![("k".into(), Value::Null)]),
                ]),
            ),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn key_order_is_preserved() {
        let v = Value::Map(vec![
            ("z".into(), Value::U64(1)),
            ("a".into(), Value::U64(2)),
        ]);
        assert_eq!(to_string(&v), r#"{"z":1,"a":2}"#);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = from_str(" { \"a\" : [ 1 , \"\\u0041\\n\" ] } ").unwrap();
        assert_eq!(
            v,
            Value::Map(vec![(
                "a".into(),
                Value::Seq(vec![Value::U64(1), Value::Str("A\n".into())])
            )])
        );
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "{\"a\"}", "nul", "1 2", "\"abc", "[01a]"] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }
}
