//! The supervised multi-session service loop.
//!
//! # Execution model
//!
//! A [`BoService`] advances every admitted session through its
//! [`BayesOpt`] loop one *step job* at a time on a bounded
//! [`nnbo_pool::WorkerPool`].  Each job performs exactly one unit of
//! session work — the space-filling initial design on the first job, one
//! model-guided iteration after that — then persists the resulting
//! checkpoint through the [`SessionStore`] and re-enqueues the session's
//! next job.  Sessions therefore interleave fairly on a fixed number of
//! worker threads, and a session is only ever touched by one job at a time.
//!
//! # Supervision tree
//!
//! ```text
//! BoService
//! ├─ WorkerPool supervisor      (nnbo-pool: respawns crashed/recycled workers)
//! │   ├─ worker 0 … worker N-1  (pinned threads; steal step jobs + batch tasks)
//! │   └─ [watchdogs]            (sacrificial deadline threads, abandonable)
//! └─ sessions                   (one step-job chain each)
//!     ├─ Active                 → stepping, checkpointed after every job
//!     ├─ Parked                 → checkpointed, shed under overload
//!     ├─ Completed              → result available
//!     └─ Quarantined            → panicked; last checkpoint still recoverable
//! ```
//!
//! Every step job body runs under `catch_unwind`: a panic (a crashing
//! surrogate, a poisoned evaluation) quarantines *only the panicking
//! session* — the payload is recorded, the session's in-memory state is
//! discarded (its last persisted checkpoint remains authoritative), the
//! worker that ran the job is recycled for a pristine stack, and every
//! other session keeps stepping.
//!
//! # Shedding policy
//!
//! Admission is bounded by [`ServeConfig::max_sessions`].  When a submit
//! (or recover) arrives at capacity, the service sheds load gracefully: the
//! *oldest idle* active session — smallest admission sequence number, not
//! currently inside a step — is parked.  Parking is free of data loss by
//! construction: a session is checkpointed after every completed job, so
//! the parked session's durable state is exactly its progress.  When no
//! session is idle, the submit is rejected with [`ServeError::Overloaded`]
//! — the explicit backpressure signal.  [`BoService::resume_parked`]
//! re-admits a parked session under the same admission rule.
//!
//! # Crash behaviour
//!
//! [`BoService::kill`] trips a process-death simulation: in-flight jobs
//! stop before persisting, queued jobs drop on the floor, and nothing else
//! runs.  Because checkpoints are written *after* every completed step with
//! [`SessionStore`]'s write-then-rename protocol, a kill at any instant
//! loses at most each session's single in-flight step; recovering the
//! sessions into a fresh service ([`BoService::recover`]) resumes them
//! bit-identically from the last completed step.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use nnbo_core::{
    BayesOpt, BoSnapshot, BoState, Evaluation, OptimizationResult, Problem, RecoveryLog,
    SurrogateTrainer,
};
use nnbo_pool::{PoolStats, WorkerPool};
use serde::{Deserialize, Serialize};

use crate::deadline::DeadlineProblem;
use crate::error::ServeError;
use crate::shard::ShardHealth;
use crate::store::{SessionStore, SnapshotStore};

/// Service construction knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Maximum number of concurrently *active* sessions (admission
    /// capacity); submits past it shed an idle session or are rejected.
    pub max_sessions: usize,
    /// Wall-clock budget for each evaluation attempt inside a step; an
    /// overrun yields `EvalOutcome::Timeout` into the session's failure
    /// policy.  `None` disables deadline enforcement.
    pub step_deadline: Option<Duration>,
    /// `Some(n)`: the service runs on its own private pool with `n`
    /// workers (used by tests that assert exact supervision counters).
    /// `None`: the process-wide [`WorkerPool::global`] serves the jobs.
    pub workers: Option<usize>,
    /// Fail-point for chaos tests: once this many step jobs have
    /// *computed*, the kill switch trips before the triggering job
    /// persists — deterministically simulating process death mid-step.
    pub kill_after_steps: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 8,
            step_deadline: None,
            workers: None,
            kill_after_steps: None,
        }
    }
}

/// Where a session is in its service lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Stepping (or queued to step).
    Active,
    /// Shed under overload; durable at its last checkpoint, resumable with
    /// [`BoService::resume_parked`].
    Parked,
    /// Ran its full evaluation budget; result available.
    Completed,
    /// A step panicked (or could not persist); only its last checkpoint
    /// survives.
    Quarantined,
}

impl SessionStatus {
    fn describe(self) -> &'static str {
        match self {
            SessionStatus::Active => "active",
            SessionStatus::Parked => "parked",
            SessionStatus::Completed => "completed",
            SessionStatus::Quarantined => "quarantined",
        }
    }
}

/// Counters describing everything the service has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Sessions admitted through [`BoService::submit`].
    pub sessions_submitted: usize,
    /// Sessions admitted through [`BoService::recover`].
    pub sessions_recovered: usize,
    /// Sessions that ran their full budget.
    pub sessions_completed: usize,
    /// Sessions quarantined (panic, step error, or persist failure).
    pub sessions_quarantined: usize,
    /// Step jobs that panicked (each quarantined its session and recycled
    /// its worker).
    pub session_panics: usize,
    /// Step jobs that failed with an optimization error.
    pub step_errors: usize,
    /// Step jobs whose checkpoint could not be persisted.
    pub persist_failures: usize,
    /// Sessions parked by the shedding policy.
    pub sessions_parked: usize,
    /// Parked sessions re-admitted.
    pub sessions_unparked: usize,
    /// Submits rejected with [`ServeError::Overloaded`].
    pub overload_rejections: usize,
    /// Step jobs that computed a step (persisted or not).
    pub steps_completed: usize,
    /// Step jobs whose checkpoint reached the store.
    pub steps_persisted: usize,
    /// Computed steps dropped by the kill switch before persisting.
    pub steps_lost_to_kill: usize,
    /// Recoveries that had to fall back to the backup generation.
    pub recovered_from_backup: usize,
    /// Recoveries that detected (and survived) a corrupt primary.
    pub corruption_detected: usize,
    /// Sessions parked because a persist hit a `Down` shard (distinct from
    /// shed parks: the in-memory state is intact, only durability waits).
    pub shard_parks: usize,
    /// Admissions rejected because the session's shard was `Down`.
    pub shard_rejections: usize,
}

struct StatCounters {
    sessions_submitted: AtomicUsize,
    sessions_recovered: AtomicUsize,
    sessions_completed: AtomicUsize,
    sessions_quarantined: AtomicUsize,
    session_panics: AtomicUsize,
    step_errors: AtomicUsize,
    persist_failures: AtomicUsize,
    sessions_parked: AtomicUsize,
    sessions_unparked: AtomicUsize,
    overload_rejections: AtomicUsize,
    steps_completed: AtomicUsize,
    steps_persisted: AtomicUsize,
    steps_lost_to_kill: AtomicUsize,
    recovered_from_backup: AtomicUsize,
    corruption_detected: AtomicUsize,
    shard_parks: AtomicUsize,
    shard_rejections: AtomicUsize,
}

impl StatCounters {
    fn new() -> Self {
        StatCounters {
            sessions_submitted: AtomicUsize::new(0),
            sessions_recovered: AtomicUsize::new(0),
            sessions_completed: AtomicUsize::new(0),
            sessions_quarantined: AtomicUsize::new(0),
            session_panics: AtomicUsize::new(0),
            step_errors: AtomicUsize::new(0),
            persist_failures: AtomicUsize::new(0),
            sessions_parked: AtomicUsize::new(0),
            sessions_unparked: AtomicUsize::new(0),
            overload_rejections: AtomicUsize::new(0),
            steps_completed: AtomicUsize::new(0),
            steps_persisted: AtomicUsize::new(0),
            steps_lost_to_kill: AtomicUsize::new(0),
            recovered_from_backup: AtomicUsize::new(0),
            corruption_detected: AtomicUsize::new(0),
            shard_parks: AtomicUsize::new(0),
            shard_rejections: AtomicUsize::new(0),
        }
    }

    fn snapshot(&self) -> ServeStats {
        let get = |c: &AtomicUsize| c.load(Ordering::Relaxed);
        ServeStats {
            sessions_submitted: get(&self.sessions_submitted),
            sessions_recovered: get(&self.sessions_recovered),
            sessions_completed: get(&self.sessions_completed),
            sessions_quarantined: get(&self.sessions_quarantined),
            session_panics: get(&self.session_panics),
            step_errors: get(&self.step_errors),
            persist_failures: get(&self.persist_failures),
            sessions_parked: get(&self.sessions_parked),
            sessions_unparked: get(&self.sessions_unparked),
            overload_rejections: get(&self.overload_rejections),
            steps_completed: get(&self.steps_completed),
            steps_persisted: get(&self.steps_persisted),
            steps_lost_to_kill: get(&self.steps_lost_to_kill),
            recovered_from_backup: get(&self.recovered_from_backup),
            corruption_detected: get(&self.corruption_detected),
            shard_parks: get(&self.shard_parks),
            shard_rejections: get(&self.shard_rejections),
        }
    }
}

/// The pool the service runs on: the process-wide singleton, or a private
/// pool owned by (and torn down with) the service.
enum PoolRef {
    Global,
    Private(WorkerPool),
}

impl PoolRef {
    fn get(&self) -> &WorkerPool {
        match self {
            PoolRef::Global => WorkerPool::global(),
            PoolRef::Private(pool) => pool,
        }
    }
}

/// Per-session bookkeeping behind the session's own mutex.
struct SessionState<M> {
    status: SessionStatus,
    bo: Option<BoState<M>>,
    result: Option<OptimizationResult>,
    panic: Option<String>,
}

struct Session<T: SurrogateTrainer> {
    id: String,
    /// Admission order; the shedding policy parks the smallest.
    seq: usize,
    driver: BayesOpt<T>,
    problem: Arc<dyn Problem + Send + Sync>,
    deadline: Option<Arc<DeadlineProblem>>,
    state: Mutex<SessionState<T::Model>>,
    /// `true` only while a job is inside this session's step body — the
    /// shedding policy's definition of "not idle".
    stepping: AtomicBool,
}

impl<T: SurrogateTrainer> Session<T> {
    /// Locks the session state, recovering from mutex poisoning: a panic
    /// inside a step quarantines the session through its status (and drops
    /// its in-memory state), so the poison flag itself carries no extra
    /// information.
    fn lock_state(&self) -> MutexGuard<'_, SessionState<T::Model>> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The problem reference a step should evaluate against (the
    /// deadline-wrapped view when a deadline is configured).
    fn problem_view(&self) -> &dyn Problem {
        match &self.deadline {
            Some(d) => d.as_ref(),
            None => self.problem.as_ref(),
        }
    }
}

struct ServeInner<T: SurrogateTrainer, S: SnapshotStore> {
    store: S,
    config: ServeConfig,
    pool: PoolRef,
    registry: Mutex<HashMap<String, Arc<Session<T>>>>,
    change_cv: Condvar,
    killed: AtomicBool,
    in_flight: AtomicUsize,
    next_seq: AtomicUsize,
    stats: StatCounters,
    latencies_ms: Mutex<Vec<f64>>,
}

impl<T: SurrogateTrainer, S: SnapshotStore> ServeInner<T, S> {
    fn pool(&self) -> &WorkerPool {
        self.pool.get()
    }

    fn lock_registry(&self) -> MutexGuard<'_, HashMap<String, Arc<Session<T>>>> {
        match self.registry.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Wakes everyone blocked on service state (drain, tests).
    fn note_change(&self) {
        let _guard = self.lock_registry();
        self.change_cv.notify_all();
    }
}

/// The supervised multi-session Bayesian-optimization service.  See the
/// module docs for the execution, supervision, shedding, and crash models.
///
/// Generic over its persistence backend: the default [`SessionStore`] is
/// one directory; [`crate::ShardedStore`] adds rendezvous-routed shards
/// with retry and per-shard degradation, which the service's admission and
/// persist paths respect (see [`ServeError::ShardUnavailable`]).
pub struct BoService<T: SurrogateTrainer, S: SnapshotStore = SessionStore> {
    inner: Arc<ServeInner<T, S>>,
}

impl<T, S> BoService<T, S>
where
    T: SurrogateTrainer + 'static,
    T::Model: Serialize + for<'de> Deserialize<'de> + 'static,
    S: SnapshotStore + 'static,
{
    /// Creates a service persisting through `store`.
    pub fn new(store: S, config: ServeConfig) -> Self {
        let pool = match config.workers {
            Some(n) => PoolRef::Private(WorkerPool::new(n.max(1))),
            None => PoolRef::Global,
        };
        BoService {
            inner: Arc::new(ServeInner {
                store,
                config,
                pool,
                registry: Mutex::new(HashMap::new()),
                change_cv: Condvar::new(),
                killed: AtomicBool::new(false),
                in_flight: AtomicUsize::new(0),
                next_seq: AtomicUsize::new(0),
                stats: StatCounters::new(),
                latencies_ms: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The store this service persists through.
    pub fn store(&self) -> &S {
        &self.inner.store
    }

    /// Admits a fresh session and starts stepping it.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidSessionId`] for unsafe ids,
    /// [`ServeError::SessionBusy`] when the id is already registered,
    /// [`ServeError::Overloaded`] when the service is at capacity with no
    /// idle session to park, and [`ServeError::ServiceKilled`] after
    /// [`BoService::kill`].
    pub fn submit(
        &self,
        id: &str,
        driver: BayesOpt<T>,
        problem: Arc<dyn Problem + Send + Sync>,
    ) -> Result<(), ServeError> {
        let session = self.admit(id, driver, problem, None)?;
        self.inner
            .stats
            .sessions_submitted
            .fetch_add(1, Ordering::Relaxed);
        spawn_step_job(&self.inner, &session);
        Ok(())
    }

    /// Recovers a session from its last intact checkpoint in the store and
    /// resumes stepping it bit-identically.  Returns the number of
    /// evaluations the checkpoint already contained.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionNotFound`] when the store has no generation
    /// for `id`, [`ServeError::CorruptSnapshot`] when no generation
    /// verifies, [`ServeError::Bo`] when the checkpoint does not match
    /// `driver`'s configuration, plus every [`BoService::submit`] error.
    pub fn recover(
        &self,
        id: &str,
        driver: BayesOpt<T>,
        problem: Arc<dyn Problem + Send + Sync>,
    ) -> Result<usize, ServeError> {
        // Scrub the session's generations first, so recovery after a torn
        // write or dropped rename reads the repaired store rather than
        // tripping over the debris.  What the scrub healed still counts as
        // provenance: a promoted backup IS a recovery from backup.
        let repaired = self.inner.store.repair_session(id)?;
        if repaired.action == crate::scrub::ScrubAction::PromotedBackup {
            self.inner
                .stats
                .recovered_from_backup
                .fetch_add(1, Ordering::Relaxed);
        }
        if repaired.latest_was_corrupt {
            self.inner
                .stats
                .corruption_detected
                .fetch_add(1, Ordering::Relaxed);
        }
        let loaded = self
            .inner
            .store
            .load(id)?
            .ok_or_else(|| ServeError::SessionNotFound {
                session: id.to_string(),
            })?;
        if loaded.recovered_from_backup {
            self.inner
                .stats
                .recovered_from_backup
                .fetch_add(1, Ordering::Relaxed);
        }
        if loaded.corruption.is_some() {
            self.inner
                .stats
                .corruption_detected
                .fetch_add(1, Ordering::Relaxed);
        }
        let snapshot = BoSnapshot::from_json(&loaded.snapshot_json)?;
        let state = driver.resume(&snapshot)?;
        let evaluations = state.evaluations().len();
        let session = self.admit(id, driver, problem, Some(state))?;
        self.inner
            .stats
            .sessions_recovered
            .fetch_add(1, Ordering::Relaxed);
        spawn_step_job(&self.inner, &session);
        Ok(evaluations)
    }

    /// Registers a session under the admission policy.
    fn admit(
        &self,
        id: &str,
        driver: BayesOpt<T>,
        problem: Arc<dyn Problem + Send + Sync>,
        resumed: Option<BoState<T::Model>>,
    ) -> Result<Arc<Session<T>>, ServeError> {
        SessionStore::validate_id(id)?;
        if self.inner.killed.load(Ordering::SeqCst) {
            return Err(ServeError::ServiceKilled);
        }
        // Admission respects shard health: a session routed to a Down
        // shard cannot checkpoint, so it is rejected up-front instead of
        // admitted into guaranteed persist failures.
        if self.inner.store.health_for(id) == ShardHealth::Down {
            self.inner
                .stats
                .shard_rejections
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::ShardUnavailable {
                shard: self.inner.store.placement(id).unwrap_or_default(),
                session: id.to_string(),
            });
        }
        let deadline = self
            .inner
            .config
            .step_deadline
            .map(|budget| Arc::new(DeadlineProblem::new(Arc::clone(&problem), budget)));
        let mut registry = self.inner.lock_registry();
        if let Some(existing) = registry.get(id) {
            let status = existing.lock_state().status;
            return Err(ServeError::SessionBusy {
                session: id.to_string(),
                status: status.describe().to_string(),
            });
        }
        self.make_room(&registry)?;
        let session = Arc::new(Session {
            id: id.to_string(),
            seq: self.inner.next_seq.fetch_add(1, Ordering::Relaxed),
            driver,
            problem,
            deadline,
            state: Mutex::new(SessionState {
                status: SessionStatus::Active,
                bo: resumed,
                result: None,
                panic: None,
            }),
            stepping: AtomicBool::new(false),
        });
        registry.insert(id.to_string(), Arc::clone(&session));
        Ok(session)
    }

    /// Enforces the capacity bound, parking the oldest idle session when
    /// the service is full.
    fn make_room(&self, registry: &HashMap<String, Arc<Session<T>>>) -> Result<(), ServeError> {
        let capacity = self.inner.config.max_sessions.max(1);
        let active: Vec<&Arc<Session<T>>> = registry
            .values()
            .filter(|s| {
                // A racing step may hold the state lock; such a session is
                // busy by definition, and counting it active keeps the
                // bound conservative.
                s.state
                    .try_lock()
                    .map(|g| g.status == SessionStatus::Active)
                    .unwrap_or(true)
            })
            .collect();
        if active.len() < capacity {
            return Ok(());
        }
        // Shed: the oldest session not currently inside a step body.
        let victim = active
            .iter()
            .filter(|s| !s.stepping.load(Ordering::SeqCst))
            .min_by_key(|s| s.seq);
        match victim {
            Some(victim) => {
                if let Ok(mut st) = victim.state.try_lock() {
                    if st.status == SessionStatus::Active {
                        st.status = SessionStatus::Parked;
                        self.inner
                            .stats
                            .sessions_parked
                            .fetch_add(1, Ordering::Relaxed);
                        return Ok(());
                    }
                }
                self.inner
                    .stats
                    .overload_rejections
                    .fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded { capacity })
            }
            None => {
                self.inner
                    .stats
                    .overload_rejections
                    .fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded { capacity })
            }
        }
    }

    /// Re-admits a parked session (under the same admission policy) and
    /// resumes stepping it.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionNotFound`], [`ServeError::SessionBusy`] when
    /// the session is not parked, [`ServeError::Overloaded`], and
    /// [`ServeError::ServiceKilled`].
    pub fn resume_parked(&self, id: &str) -> Result<(), ServeError> {
        if self.inner.killed.load(Ordering::SeqCst) {
            return Err(ServeError::ServiceKilled);
        }
        let session = {
            let registry = self.inner.lock_registry();
            let session = registry
                .get(id)
                .cloned()
                .ok_or_else(|| ServeError::SessionNotFound {
                    session: id.to_string(),
                })?;
            {
                let st = session.lock_state();
                if st.status != SessionStatus::Parked {
                    return Err(ServeError::SessionBusy {
                        session: id.to_string(),
                        status: st.status.describe().to_string(),
                    });
                }
            }
            self.make_room(&registry)?;
            session.lock_state().status = SessionStatus::Active;
            session
        };
        self.inner
            .stats
            .sessions_unparked
            .fetch_add(1, Ordering::Relaxed);
        spawn_step_job(&self.inner, &session);
        Ok(())
    }

    /// Trips the kill switch: queued and in-flight jobs stop without
    /// persisting, simulating abrupt process death (see the module docs).
    pub fn kill(&self) {
        self.inner.killed.store(true, Ordering::SeqCst);
        self.inner.note_change();
    }

    /// Blocks until no step job is queued or running.  After a drain on a
    /// live service every session is `Completed`, `Parked`, or
    /// `Quarantined`; after a kill it is simply quiescent.
    pub fn drain(&self) {
        let mut registry = self.inner.lock_registry();
        while self.inner.in_flight.load(Ordering::SeqCst) != 0 {
            registry = match self.inner.change_cv.wait(registry) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// The session's lifecycle status.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionNotFound`].
    pub fn status(&self, id: &str) -> Result<SessionStatus, ServeError> {
        Ok(self.session(id)?.lock_state().status)
    }

    /// The result of a completed session.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionNotFound`], [`ServeError::SessionPanicked`]
    /// for a quarantined session, and [`ServeError::SessionBusy`] while
    /// the session is still running.
    pub fn result(&self, id: &str) -> Result<OptimizationResult, ServeError> {
        let session = self.session(id)?;
        let st = session.lock_state();
        match st.status {
            SessionStatus::Completed => Ok(st
                .result
                .clone()
                .expect("completed session always stores its result")),
            SessionStatus::Quarantined => Err(ServeError::SessionPanicked {
                session: id.to_string(),
                payload: st.panic.clone().unwrap_or_default(),
            }),
            status => Err(ServeError::SessionBusy {
                session: id.to_string(),
                status: status.describe().to_string(),
            }),
        }
    }

    /// The evaluations a session has accumulated so far (empty before its
    /// initial design lands, or after a quarantine discarded the in-memory
    /// state).
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionNotFound`].
    pub fn history(&self, id: &str) -> Result<Vec<(Vec<f64>, Evaluation)>, ServeError> {
        let session = self.session(id)?;
        let st = session.lock_state();
        if let Some(result) = &st.result {
            return Ok(result.evaluations().to_vec());
        }
        Ok(st
            .bo
            .as_ref()
            .map(|b| b.evaluations().to_vec())
            .unwrap_or_default())
    }

    /// The session's recovery log so far (timeouts, retries, imputations).
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionNotFound`].
    pub fn recovery_log(&self, id: &str) -> Result<RecoveryLog, ServeError> {
        let session = self.session(id)?;
        let st = session.lock_state();
        if let Some(result) = &st.result {
            return Ok(result.recovery().clone());
        }
        Ok(st
            .bo
            .as_ref()
            .map(|b| b.recovery().clone())
            .unwrap_or_default())
    }

    /// Quarantined sessions with their rendered panic payloads.
    pub fn quarantined(&self) -> Vec<(String, String)> {
        let registry = self.inner.lock_registry();
        let mut out: Vec<(String, String)> = registry
            .values()
            .filter_map(|s| {
                let st = s.lock_state();
                (st.status == SessionStatus::Quarantined)
                    .then(|| (s.id.clone(), st.panic.clone().unwrap_or_default()))
            })
            .collect();
        out.sort();
        out
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServeStats {
        self.inner.stats.snapshot()
    }

    /// Counters of the pool this service runs on (process-wide values for
    /// the global pool).
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.pool().stats()
    }

    /// A percentile (0–100) of the observed step-job latencies, in
    /// milliseconds; `None` before any step completed.
    pub fn step_latency_ms(&self, percentile: f64) -> Option<f64> {
        let samples = match self.inner.latencies_ms.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        percentile_of(&samples, percentile)
    }

    fn session(&self, id: &str) -> Result<Arc<Session<T>>, ServeError> {
        self.inner
            .lock_registry()
            .get(id)
            .cloned()
            .ok_or_else(|| ServeError::SessionNotFound {
                session: id.to_string(),
            })
    }
}

/// A percentile (0–100) by nearest-rank interpolation over a copy of
/// `samples`.
pub fn percentile_of(samples: &[f64], percentile: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
    let rank = (percentile.clamp(0.0, 100.0) / 100.0) * ((sorted.len() - 1) as f64);
    Some(sorted[rank.round() as usize])
}

/// Enqueues the session's next step job, keeping the invariant that an
/// active session always has exactly one job queued or running.
fn spawn_step_job<T, S>(inner: &Arc<ServeInner<T, S>>, session: &Arc<Session<T>>)
where
    T: SurrogateTrainer + 'static,
    T::Model: Serialize + for<'de> Deserialize<'de> + 'static,
    S: SnapshotStore + 'static,
{
    inner.in_flight.fetch_add(1, Ordering::SeqCst);
    let inner_job = Arc::clone(inner);
    let session_job = Arc::clone(session);
    inner.pool().spawn(move || {
        step_job(&inner_job, &session_job);
        inner_job.in_flight.fetch_sub(1, Ordering::SeqCst);
        inner_job.note_change();
    });
}

/// One unit of session work: start or step, checkpoint, re-enqueue.  Never
/// unwinds — panics quarantine the session and recycle the worker.
fn step_job<T, S>(inner: &Arc<ServeInner<T, S>>, session: &Arc<Session<T>>)
where
    T: SurrogateTrainer + 'static,
    T::Model: Serialize + for<'de> Deserialize<'de> + 'static,
    S: SnapshotStore + 'static,
{
    if inner.killed.load(Ordering::SeqCst) {
        return;
    }
    if session.lock_state().status != SessionStatus::Active {
        return;
    }
    session.stepping.store(true, Ordering::SeqCst);
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut st = session.lock_state();
        let problem = session.problem_view();
        if st.bo.is_none() {
            st.bo = Some(session.driver.start(problem)?);
        }
        let bo = st.bo.as_mut().expect("state initialised above");
        let more = session.driver.step(problem, bo)?;
        Ok::<_, nnbo_core::BoError>((more, session.driver.snapshot(bo).to_json()))
    }));
    session.stepping.store(false, Ordering::SeqCst);
    match outcome {
        Err(payload) => {
            inner.stats.session_panics.fetch_add(1, Ordering::Relaxed);
            quarantine(inner, session, render_panic(payload.as_ref()));
            // A pristine stack for whoever steps next on this worker.
            inner.pool().recycle_current_worker();
        }
        Ok(Err(bo_err)) => {
            inner.stats.step_errors.fetch_add(1, Ordering::Relaxed);
            quarantine(inner, session, format!("step failed: {bo_err}"));
        }
        Ok(Ok((more, snapshot_json))) => {
            let computed = inner.stats.steps_completed.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(fail_at) = inner.config.kill_after_steps {
                if computed >= fail_at {
                    inner.killed.store(true, Ordering::SeqCst);
                }
            }
            if inner.killed.load(Ordering::SeqCst) {
                // Process death between compute and persist: this step is
                // the (at most one per session) lost iteration.
                inner
                    .stats
                    .steps_lost_to_kill
                    .fetch_add(1, Ordering::Relaxed);
                inner.note_change();
                return;
            }
            if let Err(e) = inner.store.persist(&session.id, &snapshot_json) {
                if matches!(e, ServeError::ShardUnavailable { .. }) {
                    // The session's shard went Down mid-run.  Its in-memory
                    // state is intact and its durable state is the last
                    // acked checkpoint, so park it instead of quarantining:
                    // once a scrub revives the shard, `resume_parked`
                    // continues the run and the next persist catches up.
                    inner.stats.shard_parks.fetch_add(1, Ordering::Relaxed);
                    session.lock_state().status = SessionStatus::Parked;
                    inner.note_change();
                    return;
                }
                inner.stats.persist_failures.fetch_add(1, Ordering::Relaxed);
                quarantine(inner, session, format!("checkpoint persist failed: {e}"));
                return;
            }
            inner.stats.steps_persisted.fetch_add(1, Ordering::Relaxed);
            {
                let mut samples = match inner.latencies_ms.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                samples.push(started.elapsed().as_secs_f64() * 1e3);
            }
            if more {
                spawn_step_job(inner, session);
            } else {
                let mut st = session.lock_state();
                let bo = st.bo.take().expect("state present at completion");
                st.result = Some(session.driver.finish(bo));
                st.status = SessionStatus::Completed;
                drop(st);
                inner
                    .stats
                    .sessions_completed
                    .fetch_add(1, Ordering::Relaxed);
            }
            inner.note_change();
        }
    }
}

/// Marks a session quarantined, discarding its (suspect) in-memory state;
/// the last persisted checkpoint stays authoritative.
fn quarantine<T: SurrogateTrainer, S: SnapshotStore>(
    inner: &ServeInner<T, S>,
    session: &Session<T>,
    reason: String,
) {
    let mut st = session.lock_state();
    st.bo = None;
    st.status = SessionStatus::Quarantined;
    st.panic = Some(reason);
    drop(st);
    inner
        .stats
        .sessions_quarantined
        .fetch_add(1, Ordering::Relaxed);
    inner.note_change();
}

/// Renders a panic payload to text (the common `&str` / `String` payloads,
/// with a fallback for exotic ones).
fn render_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate_by_nearest_rank() {
        assert_eq!(percentile_of(&[], 99.0), None);
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_of(&xs, 0.0), Some(1.0));
        assert_eq!(percentile_of(&xs, 100.0), Some(100.0));
        assert_eq!(percentile_of(&xs, 50.0), Some(51.0));
        let p99 = percentile_of(&xs, 99.0).unwrap();
        assert!((99.0..=100.0).contains(&p99));
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = ServeConfig::default();
        assert_eq!(c.max_sessions, 8);
        assert!(c.step_deadline.is_none());
        assert!(c.workers.is_none());
        assert!(c.kill_after_steps.is_none());
    }
}
