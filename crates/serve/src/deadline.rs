//! Per-evaluation deadline enforcement.
//!
//! A [`DeadlineProblem`] wraps any [`Problem`] and bounds each evaluation
//! attempt by a wall-clock budget: an attempt that overruns yields
//! [`EvalOutcome::Timeout`] *immediately*, which the optimization loop's
//! `FailurePolicy` (retry → impute) absorbs like any other evaluation
//! failure.  This is how a served session with a step deadline keeps its
//! latency bound even when the underlying simulator hangs.
//!
//! The overrunning evaluation itself cannot be cancelled (there is no safe
//! way to kill a thread mid-computation), so it is abandoned on a dedicated
//! watchdog thread that exits on its own once the evaluation returns.  This
//! is deliberately *not* a pool worker: a pool worker must never be
//! abandoned, and an evaluation that can be orphaned therefore runs on a
//! sacrificial thread instead — the one justified thread spawn outside
//! `nnbo-pool` in this workspace.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use nnbo_core::{EvalOutcome, Evaluation, Problem};

/// A [`Problem`] decorator that bounds every evaluation attempt by a
/// wall-clock deadline (see the module docs).
pub struct DeadlineProblem {
    inner: Arc<dyn Problem + Send + Sync>,
    deadline: Duration,
    timeouts: AtomicUsize,
}

impl DeadlineProblem {
    /// Wraps `inner` so each evaluation attempt observes `deadline`.
    pub fn new(inner: Arc<dyn Problem + Send + Sync>, deadline: Duration) -> Self {
        DeadlineProblem {
            inner,
            deadline,
            timeouts: AtomicUsize::new(0),
        }
    }

    /// Number of evaluation attempts this wrapper has timed out so far.
    pub fn timeouts(&self) -> usize {
        self.timeouts.load(Ordering::Relaxed)
    }
}

impl Problem for DeadlineProblem {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        self.inner.evaluate(x)
    }

    fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
        let (tx, rx) = mpsc::channel();
        let inner = Arc::clone(&self.inner);
        let x_owned = x.to_vec();
        let spawned = std::thread::Builder::new()
            .name("nnbo-serve-eval".to_string())
            .spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| inner.try_evaluate(&x_owned)));
                // The receiver may have timed out and gone away; a dead
                // channel just means the result is discarded.
                let _ = tx.send(outcome);
            });
        if spawned.is_err() {
            // Cannot enforce the deadline without a watchdog thread; run
            // inline rather than failing the evaluation outright.
            return self.inner.try_evaluate(x);
        }
        match rx.recv_timeout(self.deadline) {
            Ok(Ok(outcome)) => outcome,
            Ok(Err(payload)) => resume_unwind(payload),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                EvalOutcome::Timeout
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                EvalOutcome::Failed("evaluation thread died without reporting".to_string())
            }
        }
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SlowAt {
        trigger: f64,
        sleep: Duration,
    }

    impl Problem for SlowAt {
        fn dim(&self) -> usize {
            1
        }
        fn num_constraints(&self) -> usize {
            0
        }
        fn evaluate(&self, x: &[f64]) -> Evaluation {
            if (x[0] - self.trigger).abs() < 1e-9 {
                std::thread::sleep(self.sleep);
            }
            Evaluation::unconstrained(x[0])
        }
    }

    #[test]
    fn fast_evaluations_pass_through_unchanged() {
        let p = DeadlineProblem::new(
            Arc::new(SlowAt {
                trigger: 0.5,
                sleep: Duration::from_secs(5),
            }),
            Duration::from_secs(30),
        );
        let out = p.try_evaluate(&[0.25]);
        assert_eq!(out.ok().unwrap().objective, 0.25);
        assert_eq!(p.timeouts(), 0);
    }

    #[test]
    fn overrunning_evaluation_times_out_immediately() {
        let p = DeadlineProblem::new(
            Arc::new(SlowAt {
                trigger: 0.5,
                sleep: Duration::from_secs(30),
            }),
            Duration::from_millis(50),
        );
        let started = std::time::Instant::now();
        let out = p.try_evaluate(&[0.5]);
        assert_eq!(out, EvalOutcome::Timeout);
        assert!(started.elapsed() < Duration::from_secs(10));
        assert_eq!(p.timeouts(), 1);
    }

    struct Panicker;
    impl Problem for Panicker {
        fn dim(&self) -> usize {
            1
        }
        fn num_constraints(&self) -> usize {
            0
        }
        fn evaluate(&self, _x: &[f64]) -> Evaluation {
            panic!("simulator crashed hard")
        }
    }

    #[test]
    fn evaluation_panics_propagate_to_the_caller() {
        let p = DeadlineProblem::new(Arc::new(Panicker), Duration::from_secs(30));
        let caught = catch_unwind(AssertUnwindSafe(|| p.try_evaluate(&[0.1])));
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("simulator crashed hard"));
    }
}
