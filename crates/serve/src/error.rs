//! Typed error surface of the serving layer.

use std::error::Error;
use std::fmt;

use nnbo_core::BoError;

/// Error produced by the serving layer.
///
/// Every fallible entry point of [`crate::SessionStore`] and
/// [`crate::BoService`] returns this type; nothing in the crate panics on
/// bad input, full queues, or damaged files.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A filesystem operation of the session store failed.
    Store {
        /// Path the operation touched.
        path: String,
        /// Underlying I/O reason.
        reason: String,
    },
    /// Every on-disk generation of a session's snapshot failed verification
    /// (torn write, truncation, or bit rot in both `latest` and `prev`).
    CorruptSnapshot {
        /// Session whose snapshot is unreadable.
        session: String,
        /// What the verifier found, per generation tried.
        details: String,
    },
    /// Admission control rejected the request: the service is at capacity
    /// and no idle session could be parked to make room.  This is the
    /// explicit backpressure signal — callers should retry later or drain.
    Overloaded {
        /// The configured session capacity that was hit.
        capacity: usize,
    },
    /// The named session is not registered with this service.
    SessionNotFound {
        /// The unknown session id.
        session: String,
    },
    /// A session id contains characters that are unsafe as a file stem
    /// (allowed: ASCII alphanumerics, `.`, `_`, `-`).
    InvalidSessionId {
        /// The rejected id.
        session: String,
    },
    /// The session was quarantined after a panic inside one of its steps;
    /// its last persisted state is still recoverable from the store.
    SessionPanicked {
        /// The quarantined session id.
        session: String,
        /// The panic payload, rendered to text.
        payload: String,
    },
    /// The operation requires a state the session is not in (e.g. asking
    /// for the result of a session that has not completed).
    SessionBusy {
        /// The session id.
        session: String,
        /// The session's actual status.
        status: String,
    },
    /// The shard a session routes to is `Down`: enough consecutive
    /// operations exhausted their retries that the sharded store stopped
    /// sending it traffic.  Only sessions on that shard are affected; the
    /// rest of the store keeps serving.  A successful scrub pass revives
    /// the shard.
    ShardUnavailable {
        /// The down shard's name.
        shard: String,
        /// The session whose operation was rejected.
        session: String,
    },
    /// The service's kill switch has been tripped: it no longer accepts or
    /// advances sessions (recover into a fresh service instead).
    ServiceKilled,
    /// The optimization loop itself failed (invalid config, snapshot
    /// mismatch on resume, violated invariant).
    Bo(BoError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Store { path, reason } => {
                write!(f, "session store I/O failed at {path}: {reason}")
            }
            ServeError::CorruptSnapshot { session, details } => {
                write!(f, "no intact snapshot for session {session}: {details}")
            }
            ServeError::Overloaded { capacity } => {
                write!(
                    f,
                    "service at capacity ({capacity} sessions) with no idle session to park"
                )
            }
            ServeError::SessionNotFound { session } => write!(f, "unknown session {session}"),
            ServeError::InvalidSessionId { session } => {
                write!(
                    f,
                    "invalid session id {session:?} (allowed: ASCII alphanumerics, '.', '_', '-')"
                )
            }
            ServeError::SessionPanicked { session, payload } => {
                write!(
                    f,
                    "session {session} was quarantined after a panic: {payload}"
                )
            }
            ServeError::SessionBusy { session, status } => {
                write!(f, "session {session} is {status}")
            }
            ServeError::ShardUnavailable { shard, session } => {
                write!(
                    f,
                    "shard {shard} is down; session {session} is unavailable until a scrub revives it"
                )
            }
            ServeError::ServiceKilled => write!(f, "service kill switch is tripped"),
            ServeError::Bo(e) => write!(f, "optimization error: {e}"),
        }
    }
}

impl Error for ServeError {}

impl From<BoError> for ServeError {
    fn from(e: BoError) -> Self {
        ServeError::Bo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ServeError::Overloaded { capacity: 4 };
        assert!(e.to_string().contains("capacity (4"));
        let e = ServeError::SessionPanicked {
            session: "s1".into(),
            payload: "boom".into(),
        };
        assert!(e.to_string().contains("s1"));
        assert!(e.to_string().contains("boom"));
        let e: ServeError = BoError::Internal {
            details: "x".into(),
        }
        .into();
        assert!(matches!(e, ServeError::Bo(_)));
    }
}
