//! Crash-safe persistence for session checkpoints.
//!
//! # Durability contract
//!
//! [`SessionStore::persist`] makes one completed step durable per call, and
//! guarantees that **a crash at any instant leaves at least one intact,
//! verifiable snapshot on disk** (losing at most the single step being
//! persisted).  The sequence is the classic write-then-rename dance:
//!
//! 1. the framed snapshot is written to `<id>.session.tmp` and fsynced;
//! 2. the current `<id>.session` (if any) is renamed to `<id>.session.prev`;
//! 3. the tmp file is renamed over `<id>.session`.
//!
//! Renames within one directory are atomic on POSIX filesystems, so every
//! crash point leaves either the new `latest`, or an intact `prev` with a
//! possibly-missing/possibly-torn `latest` — never zero intact generations.
//!
//! # Torn-write detection
//!
//! Snapshots are framed with a one-line header carrying a magic string, a
//! format version, the payload byte length, and an FNV-1a 64-bit checksum of
//! the payload:
//!
//! ```text
//! nnbo-session v1 <len> <checksum-hex>
//! <payload JSON>
//! ```
//!
//! [`SessionStore::load`] verifies the frame before returning: a truncated
//! file fails the length check, and any single-bit flip fails the checksum
//! (each FNV-1a step — xor with a byte, multiply by an odd prime — is
//! injective on the 64-bit state, so two equal-length payloads differing
//! anywhere hash differently).  A damaged `latest` falls back to `prev`
//! with the corruption recorded in [`LoadedSession`]; a wrong resume is
//! never returned.
//!
//! # Fault model
//!
//! Every filesystem touch goes through an injectable [`StoreIo`] backend
//! (see the [`crate::io`] module), and the store's behaviour under each
//! disk-fault class is part of the durability contract:
//!
//! * **Transient faults (`EIO`, `ENOSPC`)** — `persist` returns
//!   [`ServeError::Store`] with the previously persisted generations
//!   untouched.  These are *retryable*: the sharded layer
//!   ([`crate::ShardedStore`]) retries them with bounded decorrelated-jitter
//!   backoff before reporting failure.
//! * **Torn writes** — a crash mid-`write` leaves a short `.tmp` file; the
//!   durable generations are untouched because the tmp file is renamed into
//!   place only after its fsync succeeded.  [`SessionStore::scrub_session`]
//!   removes the stray tmp on the next start.
//! * **Dropped renames / lost fsyncs** — a crash before the rename (or its
//!   durability barrier) reached the platter loses only the step being
//!   persisted: `persist` never acknowledges success before `write`,
//!   `sync_file`, both renames *and* the directory fsync all returned —
//!   a failed directory fsync is surfaced as [`ServeError::Store`], not
//!   swallowed, so an acknowledged step is durable on every path.
//! * **Data loss** — only a fault (or bit rot) that damages *both* the
//!   `latest` and `prev` generations of a session loses data, and it is
//!   reported as [`ServeError::CorruptSnapshot`], never resumed from.
//!
//! [`SessionStore::scrub_session`] is the self-healing pass over this
//! model: it deletes stray `.tmp` files, promotes an intact `prev` over a
//! corrupt-or-missing `latest` (making the fallback [`load`] would take
//! durable on disk), and reports what it found.  `load` before and after a
//! scrub returns byte-identical payloads.
//!
//! [`load`]: SessionStore::load

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::ServeError;
use crate::io::{StdIo, StoreIo};
use crate::scrub::{ScrubAction, ScrubReport, SessionScrub};
use crate::shard::ShardHealth;

const MAGIC: &str = "nnbo-session";
const FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit hash (the frame checksum).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A snapshot read back from disk, with provenance: whether the primary
/// generation was damaged and the verified bytes came from the backup.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedSession {
    /// The verified snapshot payload (the JSON given to `persist`).
    pub snapshot_json: String,
    /// `true` when `latest` was unreadable and `prev` supplied the payload.
    pub recovered_from_backup: bool,
    /// What the verifier found wrong with `latest`, when anything.
    pub corruption: Option<String>,
}

/// The storage surface [`crate::BoService`] persists through: one
/// directory ([`SessionStore`]) or many health-tracked shards
/// ([`crate::ShardedStore`]).
pub trait SnapshotStore: Send + Sync {
    /// Persists one snapshot payload durably.
    fn persist(&self, id: &str, snapshot_json: &str) -> Result<(), ServeError>;
    /// Loads the most recent intact snapshot for `id` (`None` = unknown).
    fn load(&self, id: &str) -> Result<Option<LoadedSession>, ServeError>;
    /// Session ids with at least one on-disk generation, sorted.
    fn list(&self) -> Result<Vec<String>, ServeError>;
    /// Removes every generation of `id`.
    fn remove(&self, id: &str) -> Result<(), ServeError>;
    /// Health of the storage serving `id` (always `Healthy` for an
    /// unsharded store; per-shard for [`crate::ShardedStore`]).
    fn health_for(&self, id: &str) -> ShardHealth;
    /// The shard name `id` routes to (`None` when the store is unsharded).
    fn placement(&self, _id: &str) -> Option<String> {
        None
    }
    /// Self-heals `id`'s on-disk generations (stray tmp removal, backup
    /// promotion) before a recovery reads them, reporting what it found.
    fn repair_session(&self, id: &str) -> Result<SessionScrub, ServeError>;
}

/// Crash-safe, per-session snapshot storage in one directory.
///
/// See the module docs for the durability contract and the fault model.
#[derive(Debug, Clone)]
pub struct SessionStore {
    dir: PathBuf,
    io: Arc<dyn StoreIo>,
}

impl SessionStore {
    /// Opens (creating if needed) a store rooted at `dir` on the real
    /// filesystem backend.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, ServeError> {
        SessionStore::open_with(dir, Arc::new(StdIo))
    }

    /// Opens a store over an explicit I/O backend (the seam the
    /// fault-injection suites use; production code wants
    /// [`SessionStore::open`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when the directory cannot be created.
    pub fn open_with(dir: impl AsRef<Path>, io: Arc<dyn StoreIo>) -> Result<Self, ServeError> {
        let dir = dir.as_ref().to_path_buf();
        io.create_dir_all(&dir).map_err(|e| ServeError::Store {
            path: dir.display().to_string(),
            reason: e.to_string(),
        })?;
        Ok(SessionStore { dir, io })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Validates a session id for use as a file stem.
    pub fn validate_id(id: &str) -> Result<(), ServeError> {
        let ok = !id.is_empty()
            && id.len() <= 128
            && id
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
            && !id.starts_with('.');
        if ok {
            Ok(())
        } else {
            Err(ServeError::InvalidSessionId {
                session: id.to_string(),
            })
        }
    }

    fn latest_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.session"))
    }

    fn prev_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.session.prev"))
    }

    fn tmp_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.session.tmp"))
    }

    /// Persists one snapshot payload durably (see the module docs).
    ///
    /// Success is acknowledged only after the framed bytes, both renames,
    /// *and* the directory fsync (the renames' durability barrier) all
    /// completed — so an acknowledged step survives a crash at any later
    /// instant.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidSessionId`] for unsafe ids and
    /// [`ServeError::Store`] when a write, sync, or rename fails; on error
    /// the previously persisted generations are untouched.
    pub fn persist(&self, id: &str, snapshot_json: &str) -> Result<(), ServeError> {
        Self::validate_id(id)?;
        let payload = snapshot_json.as_bytes();
        let frame = format!(
            "{MAGIC} v{FORMAT_VERSION} {} {:016x}\n{snapshot_json}\n",
            payload.len(),
            fnv1a64(payload)
        );
        let tmp = self.tmp_path(id);
        let io_err = io_err();
        self.io
            .write(&tmp, frame.as_bytes())
            .map_err(|e| io_err(&tmp, e))?;
        self.io.sync_file(&tmp).map_err(|e| io_err(&tmp, e))?;
        let latest = self.latest_path(id);
        if self.io.exists(&latest).map_err(|e| io_err(&latest, e))? {
            let prev = self.prev_path(id);
            self.io
                .rename(&latest, &prev)
                .map_err(|e| io_err(&latest, e))?;
        }
        self.io
            .rename(&tmp, &latest)
            .map_err(|e| io_err(&latest, e))?;
        // The renames' durability barrier.  A failure here means the step
        // may not survive a crash, so it is a persist failure — reporting
        // success for a possibly-lost rename would break the "acknowledged
        // ⇒ durable" contract.
        self.io
            .sync_dir(&self.dir)
            .map_err(|e| io_err(&self.dir, e))?;
        Ok(())
    }

    /// Loads the most recent intact snapshot for `id`.
    ///
    /// Returns `Ok(None)` when no generation exists at all (an unknown
    /// session, not an error).
    ///
    /// # Errors
    ///
    /// [`ServeError::CorruptSnapshot`] when generations exist but none
    /// verifies, [`ServeError::Store`] for I/O failures other than
    /// not-found, and [`ServeError::InvalidSessionId`] for unsafe ids.
    pub fn load(&self, id: &str) -> Result<Option<LoadedSession>, ServeError> {
        Self::validate_id(id)?;
        let latest = match self.read_generation(&self.latest_path(id))? {
            Generation::Ok(json) => {
                return Ok(Some(LoadedSession {
                    snapshot_json: json,
                    recovered_from_backup: false,
                    corruption: None,
                }));
            }
            other => other,
        };
        let prev = match self.read_generation(&self.prev_path(id))? {
            Generation::Ok(json) => {
                return Ok(Some(LoadedSession {
                    snapshot_json: json,
                    recovered_from_backup: true,
                    corruption: match &latest {
                        Generation::Corrupt(why) => Some(why.clone()),
                        Generation::Missing => None,
                        Generation::Ok(_) => unreachable!(),
                    },
                }));
            }
            other => other,
        };
        match (latest, prev) {
            (Generation::Missing, Generation::Missing) => Ok(None),
            (l, p) => Err(ServeError::CorruptSnapshot {
                session: id.to_string(),
                details: format!("latest: {}; prev: {}", l.describe(), p.describe()),
            }),
        }
    }

    /// Session ids with at least one on-disk generation, sorted.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when the directory cannot be read.
    pub fn list(&self) -> Result<Vec<String>, ServeError> {
        let names = self.io.list(&self.dir).map_err(|e| ServeError::Store {
            path: self.dir.display().to_string(),
            reason: e.to_string(),
        })?;
        let mut ids: Vec<String> = names
            .iter()
            .filter_map(|name| {
                name.strip_suffix(".session")
                    .or_else(|| name.strip_suffix(".session.prev"))
                    .map(str::to_string)
            })
            .collect();
        ids.sort();
        ids.dedup();
        Ok(ids)
    }

    /// Removes every generation of `id` (missing files are fine).
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when an existing file cannot be removed.
    pub fn remove(&self, id: &str) -> Result<(), ServeError> {
        Self::validate_id(id)?;
        let io_err = io_err();
        for path in [self.latest_path(id), self.prev_path(id), self.tmp_path(id)] {
            self.io.remove_file(&path).map_err(|e| io_err(&path, e))?;
        }
        Ok(())
    }

    /// Self-heals the on-disk generations of one session (see the module
    /// docs' fault model): removes a stray `.tmp`, promotes an intact
    /// `prev` over a corrupt-or-missing `latest`, and deletes a corrupt
    /// `prev` shadowed by an intact `latest`.  [`SessionStore::load`]
    /// returns byte-identical payloads before and after.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidSessionId`] for unsafe ids and
    /// [`ServeError::Store`] for I/O failures during the repair.
    pub fn scrub_session(&self, id: &str) -> Result<SessionScrub, ServeError> {
        Self::validate_id(id)?;
        let io_err = io_err();
        let tmp = self.tmp_path(id);
        let mut scrub = SessionScrub::default();
        if self.io.exists(&tmp).map_err(|e| io_err(&tmp, e))? {
            self.io.remove_file(&tmp).map_err(|e| io_err(&tmp, e))?;
            scrub.tmp_removed = true;
        }
        let latest_path = self.latest_path(id);
        let prev_path = self.prev_path(id);
        let latest = self.read_generation(&latest_path)?;
        let prev = self.read_generation(&prev_path)?;
        scrub.latest_was_corrupt = matches!(latest, Generation::Corrupt(_));
        scrub.action = match (latest, prev) {
            (Generation::Ok(_), prev) => {
                if matches!(prev, Generation::Corrupt(_)) {
                    self.io
                        .remove_file(&prev_path)
                        .map_err(|e| io_err(&prev_path, e))?;
                    scrub.stale_backup_removed = true;
                }
                ScrubAction::Intact
            }
            (latest, Generation::Ok(_)) => {
                if !matches!(latest, Generation::Missing) {
                    self.io
                        .remove_file(&latest_path)
                        .map_err(|e| io_err(&latest_path, e))?;
                }
                self.io
                    .rename(&prev_path, &latest_path)
                    .map_err(|e| io_err(&prev_path, e))?;
                self.io
                    .sync_dir(&self.dir)
                    .map_err(|e| io_err(&self.dir, e))?;
                ScrubAction::PromotedBackup
            }
            (Generation::Missing, Generation::Missing) => ScrubAction::Missing,
            _ => ScrubAction::Unrecoverable,
        };
        Ok(scrub)
    }

    /// Scrubs every session in the directory (including sessions that left
    /// only a stray `.tmp` behind), accumulating into `report`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when the directory walk or a repair fails.
    pub fn scrub_into(&self, report: &mut ScrubReport) -> Result<(), ServeError> {
        let names = self.io.list(&self.dir).map_err(|e| ServeError::Store {
            path: self.dir.display().to_string(),
            reason: e.to_string(),
        })?;
        let mut ids: Vec<String> = names
            .iter()
            .filter_map(|name| {
                name.strip_suffix(".session.tmp")
                    .or_else(|| name.strip_suffix(".session.prev"))
                    .or_else(|| name.strip_suffix(".session"))
                    .map(str::to_string)
            })
            .collect();
        ids.sort();
        ids.dedup();
        for id in ids {
            report.record(&id, self.scrub_session(&id)?);
        }
        Ok(())
    }

    /// Scrubs every session in the directory and reports what was healed.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when the directory walk or a repair fails.
    pub fn scrub(&self) -> Result<ScrubReport, ServeError> {
        let mut report = ScrubReport::default();
        self.scrub_into(&mut report)?;
        report.shards_scrubbed = 1;
        Ok(report)
    }

    /// Reads and verifies one generation file.
    fn read_generation(&self, path: &Path) -> Result<Generation, ServeError> {
        let bytes = match self.io.read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Generation::Missing),
            Err(e) => {
                return Err(ServeError::Store {
                    path: path.display().to_string(),
                    reason: e.to_string(),
                });
            }
        };
        Ok(verify_frame(&bytes))
    }
}

impl SnapshotStore for SessionStore {
    fn persist(&self, id: &str, snapshot_json: &str) -> Result<(), ServeError> {
        SessionStore::persist(self, id, snapshot_json)
    }

    fn load(&self, id: &str) -> Result<Option<LoadedSession>, ServeError> {
        SessionStore::load(self, id)
    }

    fn list(&self) -> Result<Vec<String>, ServeError> {
        SessionStore::list(self)
    }

    fn remove(&self, id: &str) -> Result<(), ServeError> {
        SessionStore::remove(self, id)
    }

    fn health_for(&self, _id: &str) -> ShardHealth {
        ShardHealth::Healthy
    }

    fn repair_session(&self, id: &str) -> Result<SessionScrub, ServeError> {
        self.scrub_session(id)
    }
}

/// The standard `ServeError::Store` constructor from a path and an
/// `io::Error`.
fn io_err() -> impl Fn(&Path, std::io::Error) -> ServeError {
    |path, e| ServeError::Store {
        path: path.display().to_string(),
        reason: e.to_string(),
    }
}

/// Outcome of reading one on-disk generation.
enum Generation {
    Ok(String),
    Missing,
    Corrupt(String),
}

impl Generation {
    fn describe(&self) -> String {
        match self {
            Generation::Ok(_) => "intact".to_string(),
            Generation::Missing => "missing".to_string(),
            Generation::Corrupt(why) => why.clone(),
        }
    }
}

/// Verifies a framed snapshot file (see the module docs for the format).
fn verify_frame(bytes: &[u8]) -> Generation {
    let corrupt = |why: &str| Generation::Corrupt(why.to_string());
    let Some(newline) = bytes.iter().position(|&b| b == b'\n') else {
        return corrupt("no header line");
    };
    let Ok(header) = std::str::from_utf8(&bytes[..newline]) else {
        return corrupt("header is not UTF-8");
    };
    let mut fields = header.split(' ');
    if fields.next() != Some(MAGIC) {
        return corrupt("bad magic");
    }
    match fields.next() {
        Some(v) if v == format!("v{FORMAT_VERSION}") => {}
        Some(v) => return Generation::Corrupt(format!("unsupported format version {v:?}")),
        None => return corrupt("missing format version"),
    }
    let Some(len) = fields.next().and_then(parse_strict_decimal) else {
        return corrupt("bad length field");
    };
    let Some(checksum) = fields.next().and_then(parse_strict_hex64) else {
        return corrupt("bad checksum field");
    };
    if fields.next().is_some() {
        return corrupt("trailing header fields");
    }
    let body = &bytes[newline + 1..];
    // The frame ends with exactly one trailing newline after the payload.
    if body.len() != len + 1 || body[len] != b'\n' {
        return Generation::Corrupt(format!(
            "payload length {} does not match header {len} (torn write)",
            body.len().saturating_sub(1)
        ));
    }
    let payload = &body[..len];
    let actual = fnv1a64(payload);
    if actual != checksum {
        return Generation::Corrupt(format!(
            "checksum mismatch (header {checksum:016x}, payload {actual:016x})"
        ));
    }
    match std::str::from_utf8(payload) {
        Ok(s) => Generation::Ok(s.to_string()),
        Err(_) => corrupt("payload is not UTF-8"),
    }
}

/// Strict decimal parse: ASCII digits only — unlike `str::parse`, no sign
/// or whitespace tolerance, so every single-bit flip of a digit changes the
/// parsed value or fails.
fn parse_strict_decimal(field: &str) -> Option<usize> {
    if field.is_empty() || !field.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    field.parse::<usize>().ok()
}

/// Strict checksum parse: exactly 16 lowercase hex chars — `from_str_radix`
/// would also accept uppercase, making an ASCII case flip (bit 5 of a hex
/// letter) semantically invisible.
fn parse_strict_hex64(field: &str) -> Option<u64> {
    if field.len() != 16
        || !field
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(field, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch_dir(tag: &str) -> PathBuf {
        static UNIQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("nnbo-serve-store-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persist_then_load_round_trips() {
        let store = SessionStore::open(scratch_dir("roundtrip")).unwrap();
        store.persist("s1", "{\"x\":1}").unwrap();
        let loaded = store.load("s1").unwrap().unwrap();
        assert_eq!(loaded.snapshot_json, "{\"x\":1}");
        assert!(!loaded.recovered_from_backup);
        assert!(loaded.corruption.is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn unknown_session_loads_as_none() {
        let store = SessionStore::open(scratch_dir("none")).unwrap();
        assert_eq!(store.load("nope").unwrap(), None);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncated_latest_falls_back_to_prev() {
        let store = SessionStore::open(scratch_dir("trunc")).unwrap();
        store.persist("s", "first").unwrap();
        store.persist("s", "second").unwrap();
        let latest = store.latest_path("s");
        let bytes = fs::read(&latest).unwrap();
        fs::write(&latest, &bytes[..bytes.len() - 3]).unwrap();
        let loaded = store.load("s").unwrap().unwrap();
        assert_eq!(loaded.snapshot_json, "first");
        assert!(loaded.recovered_from_backup);
        assert!(loaded.corruption.unwrap().contains("torn write"));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn bit_flip_in_payload_is_detected() {
        let store = SessionStore::open(scratch_dir("flip")).unwrap();
        store.persist("s", "first-generation").unwrap();
        store.persist("s", "second-generation").unwrap();
        let latest = store.latest_path("s");
        let mut bytes = fs::read(&latest).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[header_end + 3] ^= 0x10;
        fs::write(&latest, &bytes).unwrap();
        let loaded = store.load("s").unwrap().unwrap();
        assert_eq!(loaded.snapshot_json, "first-generation");
        assert!(loaded.recovered_from_backup);
        assert!(loaded.corruption.unwrap().contains("checksum mismatch"));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn both_generations_damaged_is_an_error_not_a_wrong_resume() {
        let store = SessionStore::open(scratch_dir("both")).unwrap();
        store.persist("s", "first").unwrap();
        store.persist("s", "second").unwrap();
        fs::write(store.latest_path("s"), b"garbage").unwrap();
        fs::write(store.prev_path("s"), b"also garbage").unwrap();
        let err = store.load("s").unwrap_err();
        assert!(matches!(err, ServeError::CorruptSnapshot { .. }));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn list_and_remove() {
        let store = SessionStore::open(scratch_dir("list")).unwrap();
        store.persist("b", "1").unwrap();
        store.persist("a", "1").unwrap();
        store.persist("a", "2").unwrap();
        assert_eq!(
            store.list().unwrap(),
            vec!["a".to_string(), "b".to_string()]
        );
        store.remove("a").unwrap();
        assert_eq!(store.list().unwrap(), vec!["b".to_string()]);
        assert_eq!(store.load("a").unwrap(), None);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn unsafe_ids_are_rejected() {
        let store = SessionStore::open(scratch_dir("ids")).unwrap();
        for bad in ["", "a/b", "../x", ".hidden", "a b", "x\n"] {
            assert!(
                matches!(
                    store.persist(bad, "{}"),
                    Err(ServeError::InvalidSessionId { .. })
                ),
                "id {bad:?} should be rejected"
            );
        }
        assert!(SessionStore::validate_id("ok-id_1.v2").is_ok());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
