//! Crash-safe persistence for session checkpoints.
//!
//! # Durability contract
//!
//! [`SessionStore::persist`] makes one completed step durable per call, and
//! guarantees that **a crash at any instant leaves at least one intact,
//! verifiable snapshot on disk** (losing at most the single step being
//! persisted).  The sequence is the classic write-then-rename dance:
//!
//! 1. the framed snapshot is written to `<id>.session.tmp` and fsynced;
//! 2. the current `<id>.session` (if any) is renamed to `<id>.session.prev`;
//! 3. the tmp file is renamed over `<id>.session`.
//!
//! Renames within one directory are atomic on POSIX filesystems, so every
//! crash point leaves either the new `latest`, or an intact `prev` with a
//! possibly-missing/possibly-torn `latest` — never zero intact generations.
//!
//! # Torn-write detection
//!
//! Snapshots are framed with a one-line header carrying a magic string, a
//! format version, the payload byte length, and an FNV-1a 64-bit checksum of
//! the payload:
//!
//! ```text
//! nnbo-session v1 <len> <checksum-hex>
//! <payload JSON>
//! ```
//!
//! [`SessionStore::load`] verifies the frame before returning: a truncated
//! file fails the length check, and any single-bit flip fails the checksum
//! (each FNV-1a step — xor with a byte, multiply by an odd prime — is
//! injective on the 64-bit state, so two equal-length payloads differing
//! anywhere hash differently).  A damaged `latest` falls back to `prev`
//! with the corruption recorded in [`LoadedSession`]; a wrong resume is
//! never returned.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::ServeError;

const MAGIC: &str = "nnbo-session";
const FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit hash (the frame checksum).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A snapshot read back from disk, with provenance: whether the primary
/// generation was damaged and the verified bytes came from the backup.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedSession {
    /// The verified snapshot payload (the JSON given to `persist`).
    pub snapshot_json: String,
    /// `true` when `latest` was unreadable and `prev` supplied the payload.
    pub recovered_from_backup: bool,
    /// What the verifier found wrong with `latest`, when anything.
    pub corruption: Option<String>,
}

/// Crash-safe, per-session snapshot storage in one directory.
///
/// See the module docs for the durability contract.
#[derive(Debug, Clone)]
pub struct SessionStore {
    dir: PathBuf,
}

impl SessionStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, ServeError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| ServeError::Store {
            path: dir.display().to_string(),
            reason: e.to_string(),
        })?;
        Ok(SessionStore { dir })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Validates a session id for use as a file stem.
    pub fn validate_id(id: &str) -> Result<(), ServeError> {
        let ok = !id.is_empty()
            && id.len() <= 128
            && id
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
            && !id.starts_with('.');
        if ok {
            Ok(())
        } else {
            Err(ServeError::InvalidSessionId {
                session: id.to_string(),
            })
        }
    }

    fn latest_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.session"))
    }

    fn prev_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.session.prev"))
    }

    fn tmp_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.session.tmp"))
    }

    /// Persists one snapshot payload durably (see the module docs).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidSessionId`] for unsafe ids and
    /// [`ServeError::Store`] when a write, sync, or rename fails; on error
    /// the previously persisted generations are untouched.
    pub fn persist(&self, id: &str, snapshot_json: &str) -> Result<(), ServeError> {
        Self::validate_id(id)?;
        let payload = snapshot_json.as_bytes();
        let frame = format!(
            "{MAGIC} v{FORMAT_VERSION} {} {:016x}\n{snapshot_json}\n",
            payload.len(),
            fnv1a64(payload)
        );
        let tmp = self.tmp_path(id);
        let io_err = |path: &Path, e: std::io::Error| ServeError::Store {
            path: path.display().to_string(),
            reason: e.to_string(),
        };
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            f.write_all(frame.as_bytes()).map_err(|e| io_err(&tmp, e))?;
            f.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        let latest = self.latest_path(id);
        if latest.exists() {
            let prev = self.prev_path(id);
            fs::rename(&latest, &prev).map_err(|e| io_err(&latest, e))?;
        }
        fs::rename(&tmp, &latest).map_err(|e| io_err(&latest, e))?;
        // Make the renames themselves durable where the platform allows it;
        // a failure here only delays durability, it cannot tear a file.
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Loads the most recent intact snapshot for `id`.
    ///
    /// Returns `Ok(None)` when no generation exists at all (an unknown
    /// session, not an error).
    ///
    /// # Errors
    ///
    /// [`ServeError::CorruptSnapshot`] when generations exist but none
    /// verifies, [`ServeError::Store`] for I/O failures other than
    /// not-found, and [`ServeError::InvalidSessionId`] for unsafe ids.
    pub fn load(&self, id: &str) -> Result<Option<LoadedSession>, ServeError> {
        Self::validate_id(id)?;
        let latest = match self.read_generation(&self.latest_path(id))? {
            Generation::Ok(json) => {
                return Ok(Some(LoadedSession {
                    snapshot_json: json,
                    recovered_from_backup: false,
                    corruption: None,
                }));
            }
            other => other,
        };
        let prev = match self.read_generation(&self.prev_path(id))? {
            Generation::Ok(json) => {
                return Ok(Some(LoadedSession {
                    snapshot_json: json,
                    recovered_from_backup: true,
                    corruption: match &latest {
                        Generation::Corrupt(why) => Some(why.clone()),
                        Generation::Missing => None,
                        Generation::Ok(_) => unreachable!(),
                    },
                }));
            }
            other => other,
        };
        match (latest, prev) {
            (Generation::Missing, Generation::Missing) => Ok(None),
            (l, p) => Err(ServeError::CorruptSnapshot {
                session: id.to_string(),
                details: format!("latest: {}; prev: {}", l.describe(), p.describe()),
            }),
        }
    }

    /// Session ids with at least one on-disk generation, sorted.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when the directory cannot be read.
    pub fn list(&self) -> Result<Vec<String>, ServeError> {
        let entries = fs::read_dir(&self.dir).map_err(|e| ServeError::Store {
            path: self.dir.display().to_string(),
            reason: e.to_string(),
        })?;
        let mut ids: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_suffix(".session")
                    .or_else(|| name.strip_suffix(".session.prev"))
                    .map(str::to_string)
            })
            .collect();
        ids.sort();
        ids.dedup();
        Ok(ids)
    }

    /// Removes every generation of `id` (missing files are fine).
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when an existing file cannot be removed.
    pub fn remove(&self, id: &str) -> Result<(), ServeError> {
        Self::validate_id(id)?;
        for path in [self.latest_path(id), self.prev_path(id), self.tmp_path(id)] {
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(ServeError::Store {
                        path: path.display().to_string(),
                        reason: e.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Reads and verifies one generation file.
    fn read_generation(&self, path: &Path) -> Result<Generation, ServeError> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Generation::Missing),
            Err(e) => {
                return Err(ServeError::Store {
                    path: path.display().to_string(),
                    reason: e.to_string(),
                });
            }
        };
        Ok(verify_frame(&bytes))
    }
}

/// Outcome of reading one on-disk generation.
enum Generation {
    Ok(String),
    Missing,
    Corrupt(String),
}

impl Generation {
    fn describe(&self) -> String {
        match self {
            Generation::Ok(_) => "intact".to_string(),
            Generation::Missing => "missing".to_string(),
            Generation::Corrupt(why) => why.clone(),
        }
    }
}

/// Verifies a framed snapshot file (see the module docs for the format).
fn verify_frame(bytes: &[u8]) -> Generation {
    let corrupt = |why: &str| Generation::Corrupt(why.to_string());
    let Some(newline) = bytes.iter().position(|&b| b == b'\n') else {
        return corrupt("no header line");
    };
    let Ok(header) = std::str::from_utf8(&bytes[..newline]) else {
        return corrupt("header is not UTF-8");
    };
    let mut fields = header.split(' ');
    if fields.next() != Some(MAGIC) {
        return corrupt("bad magic");
    }
    match fields.next() {
        Some(v) if v == format!("v{FORMAT_VERSION}") => {}
        Some(v) => return Generation::Corrupt(format!("unsupported format version {v:?}")),
        None => return corrupt("missing format version"),
    }
    let Some(len) = fields.next().and_then(parse_strict_decimal) else {
        return corrupt("bad length field");
    };
    let Some(checksum) = fields.next().and_then(parse_strict_hex64) else {
        return corrupt("bad checksum field");
    };
    if fields.next().is_some() {
        return corrupt("trailing header fields");
    }
    let body = &bytes[newline + 1..];
    // The frame ends with exactly one trailing newline after the payload.
    if body.len() != len + 1 || body[len] != b'\n' {
        return Generation::Corrupt(format!(
            "payload length {} does not match header {len} (torn write)",
            body.len().saturating_sub(1)
        ));
    }
    let payload = &body[..len];
    let actual = fnv1a64(payload);
    if actual != checksum {
        return Generation::Corrupt(format!(
            "checksum mismatch (header {checksum:016x}, payload {actual:016x})"
        ));
    }
    match std::str::from_utf8(payload) {
        Ok(s) => Generation::Ok(s.to_string()),
        Err(_) => corrupt("payload is not UTF-8"),
    }
}

/// Strict decimal parse: ASCII digits only — unlike `str::parse`, no sign
/// or whitespace tolerance, so every single-bit flip of a digit changes the
/// parsed value or fails.
fn parse_strict_decimal(field: &str) -> Option<usize> {
    if field.is_empty() || !field.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    field.parse::<usize>().ok()
}

/// Strict checksum parse: exactly 16 lowercase hex chars — `from_str_radix`
/// would also accept uppercase, making an ASCII case flip (bit 5 of a hex
/// letter) semantically invisible.
fn parse_strict_hex64(field: &str) -> Option<u64> {
    if field.len() != 16
        || !field
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(field, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        static UNIQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("nnbo-serve-store-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persist_then_load_round_trips() {
        let store = SessionStore::open(scratch_dir("roundtrip")).unwrap();
        store.persist("s1", "{\"x\":1}").unwrap();
        let loaded = store.load("s1").unwrap().unwrap();
        assert_eq!(loaded.snapshot_json, "{\"x\":1}");
        assert!(!loaded.recovered_from_backup);
        assert!(loaded.corruption.is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn unknown_session_loads_as_none() {
        let store = SessionStore::open(scratch_dir("none")).unwrap();
        assert_eq!(store.load("nope").unwrap(), None);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncated_latest_falls_back_to_prev() {
        let store = SessionStore::open(scratch_dir("trunc")).unwrap();
        store.persist("s", "first").unwrap();
        store.persist("s", "second").unwrap();
        let latest = store.latest_path("s");
        let bytes = fs::read(&latest).unwrap();
        fs::write(&latest, &bytes[..bytes.len() - 3]).unwrap();
        let loaded = store.load("s").unwrap().unwrap();
        assert_eq!(loaded.snapshot_json, "first");
        assert!(loaded.recovered_from_backup);
        assert!(loaded.corruption.unwrap().contains("torn write"));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn bit_flip_in_payload_is_detected() {
        let store = SessionStore::open(scratch_dir("flip")).unwrap();
        store.persist("s", "first-generation").unwrap();
        store.persist("s", "second-generation").unwrap();
        let latest = store.latest_path("s");
        let mut bytes = fs::read(&latest).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[header_end + 3] ^= 0x10;
        fs::write(&latest, &bytes).unwrap();
        let loaded = store.load("s").unwrap().unwrap();
        assert_eq!(loaded.snapshot_json, "first-generation");
        assert!(loaded.recovered_from_backup);
        assert!(loaded.corruption.unwrap().contains("checksum mismatch"));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn both_generations_damaged_is_an_error_not_a_wrong_resume() {
        let store = SessionStore::open(scratch_dir("both")).unwrap();
        store.persist("s", "first").unwrap();
        store.persist("s", "second").unwrap();
        fs::write(store.latest_path("s"), b"garbage").unwrap();
        fs::write(store.prev_path("s"), b"also garbage").unwrap();
        let err = store.load("s").unwrap_err();
        assert!(matches!(err, ServeError::CorruptSnapshot { .. }));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn list_and_remove() {
        let store = SessionStore::open(scratch_dir("list")).unwrap();
        store.persist("b", "1").unwrap();
        store.persist("a", "1").unwrap();
        store.persist("a", "2").unwrap();
        assert_eq!(
            store.list().unwrap(),
            vec!["a".to_string(), "b".to_string()]
        );
        store.remove("a").unwrap();
        assert_eq!(store.list().unwrap(), vec!["b".to_string()]);
        assert_eq!(store.load("a").unwrap(), None);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn unsafe_ids_are_rejected() {
        let store = SessionStore::open(scratch_dir("ids")).unwrap();
        for bad in ["", "a/b", "../x", ".hidden", "a b", "x\n"] {
            assert!(
                matches!(
                    store.persist(bad, "{}"),
                    Err(ServeError::InvalidSessionId { .. })
                ),
                "id {bad:?} should be rejected"
            );
        }
        assert!(SessionStore::validate_id("ok-id_1.v2").is_ok());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
