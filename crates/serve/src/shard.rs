//! Sharded, self-healing session store.
//!
//! [`ShardedStore`] spreads sessions across K directory shards.  Routing is
//! deterministic rendezvous (highest-random-weight) hashing over the shard
//! *names*: each `(session id, shard name)` pair gets an FNV-1a score and
//! the highest score wins.  Adding or removing a shard therefore only moves
//! the sessions whose winning shard changed — every other id keeps routing
//! to the same directory, which is what makes shard-set changes safe for a
//! store that holds live state.
//!
//! # Health and degradation
//!
//! Each shard carries a health state:
//!
//! * [`ShardHealth::Healthy`] — last operation succeeded.
//! * [`ShardHealth::Degraded`] — at least one operation exhausted its
//!   retries recently; the shard still serves traffic.
//! * [`ShardHealth::Down`] — `down_after` consecutive operations exhausted
//!   their retries.  The shard's sessions are rejected up-front with
//!   [`ServeError::ShardUnavailable`] (no disk touch), while every other
//!   shard keeps serving.  A [`ShardedStore::scrub`] pass probes `Down`
//!   shards and revives the ones that answer.
//!
//! Only [`ServeError::Store`] (the transient-I/O class: EIO, ENOSPC,
//! interrupted syncs) is retried and counts against health.  Logical
//! errors — `CorruptSnapshot`, `InvalidSessionId` — pass straight through:
//! retrying cannot fix them and they say nothing about the disk.
//!
//! Retries back off with decorrelated jitter
//! (`sleep = min(cap, uniform(base, prev * 3))`), seeded so test runs are
//! reproducible.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ServeError;
use crate::io::{StdIo, StoreIo};
use crate::scrub::ScrubReport;
use crate::store::{fnv1a64, LoadedSession, SessionStore, SnapshotStore};

/// Health of one directory shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardHealth {
    /// Last operation on the shard succeeded.
    #[default]
    Healthy,
    /// Recent operations exhausted retries; the shard still serves.
    Degraded,
    /// Consecutive failures crossed `down_after`; the shard's sessions are
    /// rejected without touching disk until a scrub revives it.
    Down,
}

/// Bounded-retry policy with decorrelated-jitter backoff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retry).
    pub max_attempts: u32,
    /// Backoff lower bound in milliseconds (0 disables sleeping).
    pub base_backoff_ms: u64,
    /// Backoff cap in milliseconds.
    pub max_backoff_ms: u64,
    /// Seed for the jitter stream, so backoff sequences replay.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_ms: 1,
            max_backoff_ms: 20,
            seed: 0x5eed_cafe,
        }
    }
}

impl RetryPolicy {
    /// A policy that retries without sleeping — for tests, where injected
    /// faults are deterministic and waiting buys nothing.
    #[must_use]
    pub fn no_backoff(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            seed: 0x5eed_cafe,
        }
    }
}

/// Configuration for [`ShardedStore::open_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardConfig {
    /// Shard names; each becomes a subdirectory of the store root and an
    /// input to rendezvous routing.  Order does not affect routing.
    pub shards: Vec<String>,
    /// Retry/backoff policy for transient store faults.
    pub retry: RetryPolicy,
    /// Consecutive retry-exhausted failures before a shard goes `Down`.
    pub down_after: u32,
}

impl ShardConfig {
    /// `k` shards named `shard-00` … `shard-NN` with default retry policy.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            shards: (0..k).map(|i| format!("shard-{i:02}")).collect(),
            retry: RetryPolicy::default(),
            down_after: 3,
        }
    }

    /// Replaces the retry policy (builder style).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the `Down` threshold (builder style).
    #[must_use]
    pub fn with_down_after(mut self, down_after: u32) -> Self {
        self.down_after = down_after.max(1);
        self
    }
}

/// Counters describing retry/degradation activity since open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStoreStats {
    /// Operations that succeeded only after at least one retry.
    pub retried_ok: u64,
    /// Individual retry attempts performed.
    pub retries: u64,
    /// Operations that exhausted every attempt.
    pub exhausted: u64,
    /// Operations rejected up-front because the shard was `Down`.
    pub rejected_down: u64,
    /// Shard transitions into `Down`.
    pub shard_downs: u64,
    /// `Down` shards revived by a scrub probe.
    pub shard_revivals: u64,
}

#[derive(Default)]
struct StatCells {
    retried_ok: AtomicU64,
    retries: AtomicU64,
    exhausted: AtomicU64,
    rejected_down: AtomicU64,
    shard_downs: AtomicU64,
    shard_revivals: AtomicU64,
}

#[derive(Default)]
struct HealthState {
    health: ShardHealth,
    consecutive_failures: u32,
}

struct Shard {
    name: String,
    store: SessionStore,
    health: Mutex<HealthState>,
}

/// K directory shards behind rendezvous routing, bounded retries, and
/// shard-level degradation.  See the module docs for the full contract.
pub struct ShardedStore {
    root: PathBuf,
    shards: Vec<Shard>,
    retry: RetryPolicy,
    down_after: u32,
    jitter: Mutex<StdRng>,
    stats: StatCells,
}

impl ShardedStore {
    /// Opens (creating if needed) every shard under `root` with the real
    /// filesystem backend.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when a shard directory cannot be created.
    pub fn open(root: impl AsRef<Path>, config: ShardConfig) -> Result<Self, ServeError> {
        Self::open_with(root, config, |_| Arc::new(StdIo))
    }

    /// Opens the store with a caller-chosen I/O backend per shard — the
    /// fault-injection seam ([`crate::io::FaultIo`] for targeted shards,
    /// [`StdIo`] for the rest).
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when a shard directory cannot be created.
    pub fn open_with<F>(
        root: impl AsRef<Path>,
        config: ShardConfig,
        mut backend: F,
    ) -> Result<Self, ServeError>
    where
        F: FnMut(&str) -> Arc<dyn StoreIo>,
    {
        assert!(!config.shards.is_empty(), "ShardedStore needs >= 1 shard");
        let root = root.as_ref().to_path_buf();
        let mut shards = Vec::with_capacity(config.shards.len());
        for name in &config.shards {
            let dir = root.join(name);
            let store = SessionStore::open_with(&dir, backend(name))?;
            shards.push(Shard {
                name: name.clone(),
                store,
                health: Mutex::new(HealthState::default()),
            });
        }
        let seed = config.retry.seed;
        Ok(Self {
            root,
            shards,
            retry: config.retry,
            down_after: config.down_after.max(1),
            jitter: Mutex::new(StdRng::seed_from_u64(seed)),
            stats: StatCells::default(),
        })
    }

    /// The store root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Shard names in configuration order.
    #[must_use]
    pub fn shard_names(&self) -> Vec<&str> {
        self.shards.iter().map(|s| s.name.as_str()).collect()
    }

    /// The shard name `id` routes to (rendezvous hash — deterministic and
    /// independent of shard order).
    #[must_use]
    pub fn shard_for(&self, id: &str) -> &str {
        &self.shards[self.route(id)].name
    }

    /// Current health of the named shard, if it exists.
    #[must_use]
    pub fn shard_health(&self, name: &str) -> Option<ShardHealth> {
        self.shards
            .iter()
            .find(|s| s.name == name)
            .map(|s| recover_lock(&s.health).health)
    }

    /// Snapshot of the retry/degradation counters.
    #[must_use]
    pub fn stats(&self) -> ShardStoreStats {
        ShardStoreStats {
            retried_ok: self.stats.retried_ok.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            exhausted: self.stats.exhausted.load(Ordering::Relaxed),
            rejected_down: self.stats.rejected_down.load(Ordering::Relaxed),
            shard_downs: self.stats.shard_downs.load(Ordering::Relaxed),
            shard_revivals: self.stats.shard_revivals.load(Ordering::Relaxed),
        }
    }

    /// Rendezvous winner: max over shards of `fnv1a64(id ‖ 0xff ‖ name)`.
    fn route(&self, id: &str) -> usize {
        let mut best = 0usize;
        let mut best_score = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            let score = rendezvous_score(id, &shard.name);
            if i == 0 || score > best_score {
                best = i;
                best_score = score;
            }
        }
        best
    }

    /// Runs `op` against `shard` with `Down` short-circuit, bounded retry
    /// on transient store faults, and health bookkeeping.
    fn with_retry<T>(
        &self,
        shard: &Shard,
        session: &str,
        op: impl Fn(&SessionStore) -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        if recover_lock(&shard.health).health == ShardHealth::Down {
            self.stats.rejected_down.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::ShardUnavailable {
                shard: shard.name.clone(),
                session: session.to_string(),
            });
        }
        let mut prev_backoff = self.retry.base_backoff_ms;
        let mut last_err = None;
        for attempt in 0..self.retry.max_attempts.max(1) {
            match op(&shard.store) {
                Ok(v) => {
                    if attempt > 0 {
                        self.stats.retried_ok.fetch_add(1, Ordering::Relaxed);
                    }
                    let mut health = recover_lock(&shard.health);
                    health.consecutive_failures = 0;
                    health.health = ShardHealth::Healthy;
                    return Ok(v);
                }
                // Only the transient-I/O class retries; logical errors
                // (corruption, bad ids) pass through untouched.
                Err(e @ ServeError::Store { .. }) => {
                    last_err = Some(e);
                    if attempt + 1 < self.retry.max_attempts.max(1) {
                        self.stats.retries.fetch_add(1, Ordering::Relaxed);
                        prev_backoff = self.backoff(prev_backoff);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        self.stats.exhausted.fetch_add(1, Ordering::Relaxed);
        let went_down = {
            let mut health = recover_lock(&shard.health);
            health.consecutive_failures += 1;
            health.health = if health.consecutive_failures >= self.down_after {
                ShardHealth::Down
            } else {
                ShardHealth::Degraded
            };
            health.health == ShardHealth::Down
        };
        if went_down {
            self.stats.shard_downs.fetch_add(1, Ordering::Relaxed);
        }
        Err(last_err.expect("retry loop ran at least once"))
    }

    /// One decorrelated-jitter sleep; returns the drawn backoff so the next
    /// draw widens from it.
    fn backoff(&self, prev_ms: u64) -> u64 {
        let base = self.retry.base_backoff_ms;
        if base == 0 || self.retry.max_backoff_ms == 0 {
            return 0;
        }
        let hi = prev_ms.saturating_mul(3).max(base);
        let drawn = recover_lock(&self.jitter).gen_range(base..=hi);
        let sleep_ms = drawn.min(self.retry.max_backoff_ms);
        std::thread::sleep(Duration::from_millis(sleep_ms));
        sleep_ms
    }

    /// Scrubs every shard: repairs session generations, probes `Down`
    /// shards, and revives the ones that answer.  Healthy-shard scrub
    /// failures mark the shard like any other exhausted operation instead
    /// of aborting the pass, so one bad disk cannot block repairing the
    /// rest.
    ///
    /// # Errors
    ///
    /// Currently infallible (per-shard failures are folded into the report
    /// and shard health); the `Result` keeps the seam for walk-level
    /// failures.
    pub fn scrub(&self) -> Result<ScrubReport, ServeError> {
        let mut report = ScrubReport::default();
        for shard in &self.shards {
            let was_down = recover_lock(&shard.health).health == ShardHealth::Down;
            if was_down {
                // Probe directly — the Down short-circuit in with_retry
                // would otherwise make revival impossible.
                if shard.store.list().is_err() {
                    report.shards_still_down += 1;
                    continue;
                }
                let mut health = recover_lock(&shard.health);
                health.consecutive_failures = 0;
                health.health = ShardHealth::Healthy;
                drop(health);
                self.stats.shard_revivals.fetch_add(1, Ordering::Relaxed);
                report.shards_revived += 1;
            }
            match shard.store.scrub_into(&mut report) {
                Ok(()) => report.shards_scrubbed += 1,
                Err(_) => {
                    let mut health = recover_lock(&shard.health);
                    health.consecutive_failures += 1;
                    health.health = if health.consecutive_failures >= self.down_after {
                        ShardHealth::Down
                    } else {
                        ShardHealth::Degraded
                    };
                    if health.health == ShardHealth::Down {
                        self.stats.shard_downs.fetch_add(1, Ordering::Relaxed);
                        report.shards_still_down += 1;
                    }
                }
            }
        }
        Ok(report)
    }
}

impl SnapshotStore for ShardedStore {
    fn persist(&self, id: &str, snapshot_json: &str) -> Result<(), ServeError> {
        let shard = &self.shards[self.route(id)];
        self.with_retry(shard, id, |store| store.persist(id, snapshot_json))
    }

    fn load(&self, id: &str) -> Result<Option<LoadedSession>, ServeError> {
        let shard = &self.shards[self.route(id)];
        self.with_retry(shard, id, |store| store.load(id))
    }

    /// Union of session ids across shards.  `Down` shards — and shards
    /// whose listing exhausts its retries — are skipped so the rest of the
    /// fleet stays listable; their sessions simply don't appear until the
    /// shard recovers.
    fn list(&self) -> Result<Vec<String>, ServeError> {
        let mut ids = Vec::new();
        for shard in &self.shards {
            match self.with_retry(shard, "*", SessionStore::list) {
                Ok(mut shard_ids) => ids.append(&mut shard_ids),
                Err(ServeError::ShardUnavailable { .. } | ServeError::Store { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        ids.sort();
        ids.dedup();
        Ok(ids)
    }

    fn remove(&self, id: &str) -> Result<(), ServeError> {
        let shard = &self.shards[self.route(id)];
        self.with_retry(shard, id, |store| store.remove(id))
    }

    fn health_for(&self, id: &str) -> ShardHealth {
        recover_lock(&self.shards[self.route(id)].health).health
    }

    fn placement(&self, id: &str) -> Option<String> {
        Some(self.shards[self.route(id)].name.clone())
    }

    fn repair_session(&self, id: &str) -> Result<crate::scrub::SessionScrub, ServeError> {
        let shard = &self.shards[self.route(id)];
        self.with_retry(shard, id, |store| store.scrub_session(id))
    }
}

/// Rendezvous score for one `(session id, shard name)` pair.
fn rendezvous_score(id: &str, shard: &str) -> u64 {
    let mut key = Vec::with_capacity(id.len() + 1 + shard.len());
    key.extend_from_slice(id.as_bytes());
    key.push(0xff);
    key.extend_from_slice(shard.as_bytes());
    fnv1a64(&key)
}

/// Locks a mutex, recovering the inner value if a holder panicked — shard
/// health metadata stays usable even after a poisoned lock.
fn recover_lock<T>(lock: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultIo, FaultKind, FaultPlan, ScriptedFault};

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nnbo-shard-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn routing_is_deterministic_and_order_independent() {
        let root = temp_root("route");
        let store = ShardedStore::open(&root, ShardConfig::new(4)).unwrap();
        let mut reversed = ShardConfig::new(4);
        reversed.shards.reverse();
        let store_rev = ShardedStore::open(root.join("rev"), reversed).unwrap();
        for i in 0..64 {
            let id = format!("sess-{i}");
            assert_eq!(store.shard_for(&id), store.shard_for(&id));
            assert_eq!(store.shard_for(&id), store_rev.shard_for(&id));
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn routing_spreads_sessions_across_shards() {
        let root = temp_root("spread");
        let store = ShardedStore::open(&root, ShardConfig::new(4)).unwrap();
        let mut hit = std::collections::HashSet::new();
        for i in 0..64 {
            hit.insert(store.shard_for(&format!("sess-{i}")).to_string());
        }
        assert_eq!(hit.len(), 4, "64 ids should touch all 4 shards");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_sessions() {
        let root = temp_root("stable");
        let full = ShardedStore::open(&root, ShardConfig::new(4)).unwrap();
        let mut smaller_cfg = ShardConfig::new(4);
        let removed = smaller_cfg.shards.pop().unwrap();
        let smaller = ShardedStore::open(root.join("small"), smaller_cfg).unwrap();
        for i in 0..128 {
            let id = format!("sess-{i}");
            let before = full.shard_for(&id);
            if before == removed {
                assert_ne!(smaller.shard_for(&id), removed);
            } else {
                assert_eq!(smaller.shard_for(&id), before);
            }
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn transient_fault_is_retried_and_health_recovers() {
        let root = temp_root("retry");
        let cfg = ShardConfig::new(1).with_retry(RetryPolicy::no_backoff(3));
        let store = ShardedStore::open_with(&root, cfg, |_| {
            Arc::new(FaultIo::new(FaultPlan::one(0, FaultKind::TransientEio)))
        })
        .unwrap();
        store.persist("s", "{\"x\":1}").unwrap();
        assert_eq!(store.shard_health("shard-00"), Some(ShardHealth::Healthy));
        let stats = store.stats();
        assert_eq!(stats.retried_ok, 1);
        assert!(stats.retries >= 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn down_shard_rejects_only_its_own_sessions() {
        let root = temp_root("down");
        let cfg = ShardConfig::new(2)
            .with_retry(RetryPolicy::no_backoff(1))
            .with_down_after(1);
        // Crash shard-00 permanently; shard-01 stays real.
        let store = ShardedStore::open_with(&root, cfg, |name| {
            if name == "shard-00" {
                Arc::new(FaultIo::new(FaultPlan::one(0, FaultKind::TornWrite)))
            } else {
                Arc::new(StdIo)
            }
        })
        .unwrap();
        let (mut on_bad, mut on_good) = (None, None);
        for i in 0..64 {
            let id = format!("sess-{i}");
            match store.shard_for(&id) {
                "shard-00" if on_bad.is_none() => on_bad = Some(id),
                "shard-01" if on_good.is_none() => on_good = Some(id),
                _ => {}
            }
        }
        let (bad, good) = (on_bad.unwrap(), on_good.unwrap());
        // First touch crashes the shard's backend and downs the shard.
        assert!(matches!(
            store.persist(&bad, "{}"),
            Err(ServeError::Store { .. })
        ));
        assert_eq!(store.shard_health("shard-00"), Some(ShardHealth::Down));
        // Its sessions now reject without disk I/O …
        assert!(matches!(
            store.persist(&bad, "{}"),
            Err(ServeError::ShardUnavailable { .. })
        ));
        // … while the other shard keeps serving.
        store.persist(&good, "{\"ok\":true}").unwrap();
        assert!(store.load(&good).unwrap().is_some());
        assert!(store.stats().rejected_down >= 1);
        assert_eq!(store.stats().shard_downs, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn scrub_revives_a_down_shard_whose_disk_recovered() {
        let root = temp_root("revive");
        let cfg = ShardConfig::new(1)
            .with_retry(RetryPolicy::no_backoff(1))
            .with_down_after(1);
        // One transient fault is enough to down the shard (no retries),
        // but the underlying disk is fine afterwards.
        let store = ShardedStore::open_with(&root, cfg, |_| {
            Arc::new(FaultIo::new(FaultPlan::one(0, FaultKind::TransientEio)))
        })
        .unwrap();
        assert!(store.persist("s", "{}").is_err());
        assert_eq!(store.shard_health("shard-00"), Some(ShardHealth::Down));
        let report = store.scrub().unwrap();
        assert_eq!(report.shards_revived, 1);
        assert_eq!(store.shard_health("shard-00"), Some(ShardHealth::Healthy));
        store.persist("s", "{\"x\":2}").unwrap();
        assert_eq!(store.stats().shard_revivals, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn backoff_is_bounded_and_seed_deterministic() {
        let root = temp_root("jitter");
        let retry = RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 1,
            max_backoff_ms: 2,
            seed: 7,
        };
        let cfg = ShardConfig::new(1).with_retry(retry);
        let store = ShardedStore::open_with(&root, cfg, |_| {
            Arc::new(FaultIo::new(FaultPlan::scripted(vec![
                ScriptedFault {
                    at_op: 0,
                    kind: FaultKind::TransientEio,
                },
                ScriptedFault {
                    at_op: 1,
                    kind: FaultKind::Enospc,
                },
            ])))
        })
        .unwrap();
        let start = std::time::Instant::now();
        store.persist("s", "{}").unwrap();
        // 2 retries, each capped at 2ms: well under a second even on CI.
        assert!(start.elapsed() < Duration::from_secs(1));
        assert_eq!(store.stats().retries, 2);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
