//! `nnbo-serve` — a supervised, crash-safe, multi-session serving layer for
//! the Bayesian-optimization loop of `nnbo-core`.
//!
//! The paper's optimizer is built to sit in front of expensive, flaky
//! simulators for hours; this crate supplies the operational shell such a
//! deployment needs:
//!
//! * **One parallelism mechanism.**  Every session steps as a detached job
//!   on the process-wide [`nnbo_pool::WorkerPool`] (or a service-private
//!   pool), the same pool the linear-algebra and ensemble fan-outs run
//!   their scoped batches on.  No per-call thread spawning anywhere in the
//!   serving path — the only sacrificial threads are the deadline
//!   watchdogs, which must be abandonable by design (see
//!   [`DeadlineProblem`]).
//!
//! * **Panic isolation and supervision.**  A panic inside one session's
//!   step quarantines that session alone; its panic payload is recorded,
//!   the worker that ran it is recycled onto a fresh thread by the pool's
//!   supervisor (within a restart budget), and every other session keeps
//!   stepping.  See the supervision tree in the [`service`] module docs.
//!
//! * **Crash-safe persistence.**  Every completed step is checkpointed
//!   through [`SessionStore`] with an atomic write-then-rename protocol
//!   and checksum framing, so a `kill -9` at any instant loses at most the
//!   in-flight step and torn or bit-rotted files are *detected*, never
//!   resumed from.  Recovery is bit-identical: a restored session produces
//!   exactly the evaluations the uninterrupted run would have.  The full
//!   durability contract is in the [`store`] module docs.
//!
//! * **Deadlines and load shedding.**  A configurable per-evaluation
//!   deadline turns hung simulators into `EvalOutcome::Timeout`, which the
//!   loop's failure policy absorbs; admission control bounds the number of
//!   live sessions, parking the oldest idle session (checkpoint intact)
//!   under overload and rejecting with [`ServeError::Overloaded`] — the
//!   explicit backpressure signal — when nothing can be shed.
//!
//! The happy path:
//!
//! ```
//! use std::sync::Arc;
//! use nnbo_core::{BayesOpt, BoConfig, problems::ConstrainedBranin};
//! use nnbo_serve::{BoService, ServeConfig, SessionStore, SessionStatus};
//!
//! let dir = std::env::temp_dir().join(format!("nnbo-serve-doc-{}", std::process::id()));
//! let store = SessionStore::open(&dir).unwrap();
//! let service = BoService::new(store, ServeConfig::default());
//!
//! let config = BoConfig::fast(4, 8).with_seed(7);
//! service
//!     .submit("branin-7", BayesOpt::neural(config), Arc::new(ConstrainedBranin))
//!     .unwrap();
//! service.drain();
//!
//! assert_eq!(service.status("branin-7").unwrap(), SessionStatus::Completed);
//! let result = service.result("branin-7").unwrap();
//! assert_eq!(result.num_evaluations(), 8);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![warn(missing_docs)]

mod error;

pub mod deadline;
pub mod service;
pub mod store;

pub use deadline::DeadlineProblem;
pub use error::ServeError;
pub use service::{percentile_of, BoService, ServeConfig, ServeStats, SessionStatus};
pub use store::{fnv1a64, LoadedSession, SessionStore};
