//! `nnbo-serve` — a supervised, crash-safe, multi-session serving layer for
//! the Bayesian-optimization loop of `nnbo-core`.
//!
//! The paper's optimizer is built to sit in front of expensive, flaky
//! simulators for hours; this crate supplies the operational shell such a
//! deployment needs:
//!
//! * **One parallelism mechanism.**  Every session steps as a detached job
//!   on the process-wide [`nnbo_pool::WorkerPool`] (or a service-private
//!   pool), the same pool the linear-algebra and ensemble fan-outs run
//!   their scoped batches on.  No per-call thread spawning anywhere in the
//!   serving path — the only sacrificial threads are the deadline
//!   watchdogs, which must be abandonable by design (see
//!   [`DeadlineProblem`]).
//!
//! * **Panic isolation and supervision.**  A panic inside one session's
//!   step quarantines that session alone; its panic payload is recorded,
//!   the worker that ran it is recycled onto a fresh thread by the pool's
//!   supervisor (within a restart budget), and every other session keeps
//!   stepping.  See the supervision tree in the [`service`] module docs.
//!
//! * **Crash-safe persistence.**  Every completed step is checkpointed
//!   through [`SessionStore`] with an atomic write-then-rename protocol
//!   and checksum framing, so a `kill -9` at any instant loses at most the
//!   in-flight step and torn or bit-rotted files are *detected*, never
//!   resumed from.  Recovery is bit-identical: a restored session produces
//!   exactly the evaluations the uninterrupted run would have.  The full
//!   durability contract is in the [`store`] module docs.
//!
//! * **Deadlines and load shedding.**  A configurable per-evaluation
//!   deadline turns hung simulators into `EvalOutcome::Timeout`, which the
//!   loop's failure policy absorbs; admission control bounds the number of
//!   live sessions, parking the oldest idle session (checkpoint intact)
//!   under overload and rejecting with [`ServeError::Overloaded`] — the
//!   explicit backpressure signal — when nothing can be shed.
//!
//! * **Sharding, fault injection, and scrub.**  Every filesystem touch of
//!   the store goes through the [`io::StoreIo`] seam, so the same
//!   persistence code runs against the real disk ([`io::StdIo`]) or a
//!   deterministic fault injector ([`io::FaultIo`]) scripting EIO, ENOSPC,
//!   torn writes, dropped renames, and lost fsyncs.  [`ShardedStore`]
//!   spreads sessions across K directory shards with rendezvous-hash
//!   routing, retries transient faults with decorrelated-jitter backoff,
//!   and degrades per shard: a `Down` shard rejects only its own sessions
//!   with [`ServeError::ShardUnavailable`] while the rest keep serving.
//!   A [`ShardedStore::scrub`] pass walks the shards, repairs session
//!   generations (promoting intact backups over corrupt or missing
//!   `latest` files), revives recovered shards, and reports a typed
//!   [`ScrubReport`]; [`BoService::recover`] runs the per-session repair
//!   before loading, so a restart after any fault sequence converges to a
//!   consistent store.  The fault model — which faults are retried, which
//!   degrade a shard, and which lose data — is documented in the [`store`]
//!   module.
//!
//! The happy path:
//!
//! ```
//! use std::sync::Arc;
//! use nnbo_core::{BayesOpt, BoConfig, problems::ConstrainedBranin};
//! use nnbo_serve::{BoService, ServeConfig, SessionStore, SessionStatus};
//!
//! let dir = std::env::temp_dir().join(format!("nnbo-serve-doc-{}", std::process::id()));
//! let store = SessionStore::open(&dir).unwrap();
//! let service = BoService::new(store, ServeConfig::default());
//!
//! let config = BoConfig::fast(4, 8).with_seed(7);
//! service
//!     .submit("branin-7", BayesOpt::neural(config), Arc::new(ConstrainedBranin))
//!     .unwrap();
//! service.drain();
//!
//! assert_eq!(service.status("branin-7").unwrap(), SessionStatus::Completed);
//! let result = service.result("branin-7").unwrap();
//! assert_eq!(result.num_evaluations(), 8);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![warn(missing_docs)]

mod error;

pub mod deadline;
pub mod io;
pub mod scrub;
pub mod service;
pub mod shard;
pub mod store;

pub use deadline::DeadlineProblem;
pub use error::ServeError;
pub use io::{FaultIo, FaultKind, FaultPlan, StdIo, StoreIo};
pub use scrub::{ScrubAction, ScrubReport, SessionScrub};
pub use service::{percentile_of, BoService, ServeConfig, ServeStats, SessionStatus};
pub use shard::{RetryPolicy, ShardConfig, ShardHealth, ShardedStore};
pub use store::{fnv1a64, LoadedSession, SessionStore, SnapshotStore};
