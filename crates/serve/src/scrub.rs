//! Store scrub/repair reporting.
//!
//! A scrub pass ([`crate::store::SessionStore::scrub`] for one directory,
//! [`crate::shard::ShardedStore::scrub`] across every shard) walks the
//! on-disk sessions, verifies checksum framing, and self-heals what it can:
//! stray `.session.tmp` files from torn writes are deleted, an intact
//! `.session.prev` backup is promoted over a corrupt or missing `latest`,
//! and a corrupt backup shadowed by an intact `latest` is dropped.  The
//! pass never changes what [`crate::store::SessionStore::load`] returns —
//! it only makes the already-winning generation the durable one — so
//! recovery after a scrub replays bit-identically to recovery before it.

/// What a scrub pass decided about one session's generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScrubAction {
    /// `latest` verified; nothing needed promoting.
    #[default]
    Intact,
    /// `latest` was corrupt or missing and the intact `prev` backup was
    /// renamed into its place.
    PromotedBackup,
    /// No generation of the session exists (e.g. only a stray tmp file was
    /// left behind by a first-write crash).
    Missing,
    /// Every present generation failed checksum verification; the session's
    /// durable state is lost and `recover` will surface `CorruptSnapshot`.
    Unrecoverable,
}

/// The per-session outcome of [`crate::store::SessionStore::scrub_session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionScrub {
    /// What happened to the session's generations.
    pub action: ScrubAction,
    /// A stray `.session.tmp` from an interrupted write was deleted.
    pub tmp_removed: bool,
    /// A corrupt `.session.prev` shadowed by an intact `latest` was deleted.
    pub stale_backup_removed: bool,
    /// The `latest` generation failed checksum verification (as opposed to
    /// being merely absent) — true bit rot or a torn rename, not just a
    /// crash between the two renames.
    pub latest_was_corrupt: bool,
}

/// Aggregate outcome of a scrub pass over one or more shards.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Sessions whose generations were examined.
    pub sessions_checked: usize,
    /// Sessions whose `latest` generation verified as-is.
    pub intact: usize,
    /// Sessions healed by promoting the `.prev` backup generation.
    pub backups_promoted: usize,
    /// Stray `.session.tmp` files removed.
    pub tmp_removed: usize,
    /// Corrupt `.session.prev` backups removed from behind an intact latest.
    pub stale_backups_removed: usize,
    /// Sessions left with only a stray artifact and no recoverable state.
    pub missing: usize,
    /// Sessions where every generation failed verification.
    pub unrecoverable: Vec<String>,
    /// Shard directories walked by the pass.
    pub shards_scrubbed: usize,
    /// Shards that were `Down` before the pass and passed the health probe.
    pub shards_revived: usize,
    /// Shards that were `Down` before the pass and failed the health probe.
    pub shards_still_down: usize,
}

impl ScrubReport {
    /// Folds one session's scrub outcome into the aggregate.
    pub fn record(&mut self, id: &str, scrub: SessionScrub) {
        self.sessions_checked += 1;
        if scrub.tmp_removed {
            self.tmp_removed += 1;
        }
        if scrub.stale_backup_removed {
            self.stale_backups_removed += 1;
        }
        match scrub.action {
            ScrubAction::Intact => self.intact += 1,
            ScrubAction::PromotedBackup => self.backups_promoted += 1,
            ScrubAction::Missing => self.missing += 1,
            ScrubAction::Unrecoverable => self.unrecoverable.push(id.to_string()),
        }
    }

    /// True when no session lost data and no shard stayed down.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.unrecoverable.is_empty() && self.shards_still_down == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tallies_each_action() {
        let mut report = ScrubReport::default();
        report.record("a", SessionScrub::default());
        report.record(
            "b",
            SessionScrub {
                action: ScrubAction::PromotedBackup,
                tmp_removed: true,
                ..SessionScrub::default()
            },
        );
        report.record(
            "c",
            SessionScrub {
                action: ScrubAction::Unrecoverable,
                stale_backup_removed: true,
                ..SessionScrub::default()
            },
        );
        report.record(
            "d",
            SessionScrub {
                action: ScrubAction::Missing,
                ..SessionScrub::default()
            },
        );
        assert_eq!(report.sessions_checked, 4);
        assert_eq!(report.intact, 1);
        assert_eq!(report.backups_promoted, 1);
        assert_eq!(report.tmp_removed, 1);
        assert_eq!(report.stale_backups_removed, 1);
        assert_eq!(report.missing, 1);
        assert_eq!(report.unrecoverable, vec!["c".to_string()]);
        assert!(!report.is_clean());
    }

    #[test]
    fn clean_report_has_no_losses() {
        let mut report = ScrubReport::default();
        report.record("a", SessionScrub::default());
        report.shards_scrubbed = 2;
        assert!(report.is_clean());
        report.shards_still_down = 1;
        assert!(!report.is_clean());
    }
}
