//! Injectable filesystem backend for the session store.
//!
//! Every byte the persistence layer moves goes through the [`StoreIo`]
//! trait: the production backend ([`StdIo`]) forwards to `std::fs`, and the
//! deterministic fault backend ([`FaultIo`]) replays a scripted
//! [`FaultPlan`] against a real directory — so the durability claims of
//! [`crate::SessionStore`] and [`crate::ShardedStore`] can be *proved*
//! against ENOSPC, transient EIO, torn writes, dropped renames, and lost
//! fsyncs instead of merely asserted.
//!
//! # The fault model
//!
//! A [`FaultPlan`] is a list of scripted faults, each firing on the first
//! I/O operation whose class matches at or after a scripted operation
//! index (operations are counted per backend instance, in call order):
//!
//! | fault                        | class      | effect |
//! |------------------------------|------------|--------|
//! | [`FaultKind::TransientEio`]  | any op     | the op fails once with `EIO`; a retry of the same logical op succeeds |
//! | [`FaultKind::Enospc`]        | any op     | the op fails once with `ENOSPC` (space freed elsewhere lets a retry through) |
//! | [`FaultKind::TornWrite`]     | `write`    | only a prefix of the bytes reaches the file, then the **process dies** |
//! | [`FaultKind::DropRename`]    | `rename`   | the rename never reaches the platter, then the **process dies** |
//! | [`FaultKind::LostFsync`]     | `sync_file`| the file's unsynced writes are rolled back to the pre-write bytes, then the **process dies** |
//!
//! "The process dies" means the backend enters a crashed state in which
//! every further operation fails: the bytes left in the directory are
//! exactly the surviving byte state a real crash at that instant could
//! leave behind.  Tests then reopen the *same directory* with [`StdIo`]
//! (the restarted process) and assert recovery converges — see
//! `tests/store_faults.rs`.
//!
//! Lost fsyncs are modeled with pre-images: [`FaultIo`] snapshots a file's
//! bytes before every `write` and discards the snapshot when `sync_file`
//! succeeds; a `LostFsync` fault restores the pre-image instead, which is
//! what the disk would hold had the write never become durable.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Abstraction over every filesystem touch the persistence layer makes.
///
/// Implementations must be deterministic given the same call sequence (the
/// fault backend's whole purpose) and safe to share across threads.
pub trait StoreIo: fmt::Debug + Send + Sync {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Creates (or truncates) `path` with exactly `bytes` as content.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flushes `path`'s data and metadata to stable storage.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` onto `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Makes preceding renames in `dir` durable where the platform can.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Reads `path` in full.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// File names (not paths) of `dir`'s entries.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Removes `path`; removing a missing file is an `Ok` no-op.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Whether `path` currently exists.
    fn exists(&self, path: &Path) -> io::Result<bool>;
}

/// The production backend: direct `std::fs` calls.
#[derive(Debug, Clone, Default)]
pub struct StdIo;

impl StoreIo for StdIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directories can be opened read-only for fsync on POSIX; platforms
        // where that fails only lose the rename durability *barrier*, never
        // file integrity — but the failure is surfaced, not swallowed.
        fs::File::open(dir)?.sync_all()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Ok(name) = entry?.file_name().into_string() {
                names.push(name);
            }
        }
        Ok(names)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match fs::remove_file(path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    fn exists(&self, path: &Path) -> io::Result<bool> {
        Ok(path.exists())
    }
}

/// The disk faults [`FaultIo`] can inject (see the module docs for the
/// exact semantics of each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// One transient `EIO` on the next operation of any class.
    TransientEio,
    /// One `ENOSPC` on the next operation of any class.
    Enospc,
    /// The next `write` stores only a prefix, then the process dies.
    TornWrite,
    /// The next `rename` is silently lost, then the process dies.
    DropRename,
    /// The next `sync_file` rolls its file back to the pre-write bytes,
    /// then the process dies.
    LostFsync,
}

impl FaultKind {
    /// All injectable kinds, in a fixed order (the seeded plan generator
    /// and the exhaustive matrix tests index into this).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TransientEio,
        FaultKind::Enospc,
        FaultKind::TornWrite,
        FaultKind::DropRename,
        FaultKind::LostFsync,
    ];

    /// Whether the fault leaves the simulated process dead afterwards.
    pub fn is_crash(self) -> bool {
        matches!(
            self,
            FaultKind::TornWrite | FaultKind::DropRename | FaultKind::LostFsync
        )
    }

    /// Whether an operation of the given class can host this fault.
    fn matches(self, class: OpClass) -> bool {
        match self {
            FaultKind::TransientEio | FaultKind::Enospc => true,
            FaultKind::TornWrite => class == OpClass::Write,
            FaultKind::DropRename => class == OpClass::Rename,
            FaultKind::LostFsync => class == OpClass::SyncFile,
        }
    }
}

/// One scheduled fault: fires on the first operation of a matching class
/// whose index (0-based, per backend) is `>= at_op`, at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Earliest operation index the fault may fire at.
    pub at_op: usize,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic schedule of disk faults for one [`FaultIo`] backend.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults (order is irrelevant; each fires at most once).
    pub faults: Vec<ScriptedFault>,
}

impl FaultPlan {
    /// A plan with no faults (every operation succeeds).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A hand-scripted plan.
    pub fn scripted(faults: Vec<ScriptedFault>) -> Self {
        FaultPlan { faults }
    }

    /// A plan with a single fault (the common test case).
    pub fn one(at_op: usize, kind: FaultKind) -> Self {
        FaultPlan {
            faults: vec![ScriptedFault { at_op, kind }],
        }
    }

    /// A seeded random plan: up to `max_faults` faults with operation
    /// indices below `op_horizon`.  The same seed always yields the same
    /// plan, so a failing case reproduces from its seed alone.
    pub fn seeded(seed: u64, op_horizon: usize, max_faults: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = if max_faults == 0 {
            0
        } else {
            rng.gen_range(0..(max_faults + 1))
        };
        let faults = (0..n)
            .map(|_| ScriptedFault {
                at_op: rng.gen_range(0..op_horizon.max(1)),
                kind: FaultKind::ALL[rng.gen_range(0..FaultKind::ALL.len())],
            })
            .collect();
        FaultPlan { faults }
    }
}

/// What a [`FaultIo`] backend has injected so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultIoStats {
    /// Operations observed (counted whether or not they were faulted).
    pub ops: usize,
    /// Faults injected, by any kind.
    pub injected: usize,
    /// Transient faults injected (`EIO` / `ENOSPC`).
    pub transient_injected: usize,
    /// Crash faults injected (torn write / dropped rename / lost fsync).
    pub crash_injected: usize,
    /// Operations refused because the simulated process had already died.
    pub post_crash_rejections: usize,
}

/// Operation classes the fault matcher distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Write,
    SyncFile,
    Rename,
    Other,
}

/// Mutable scripting state behind one mutex (op counter, pending faults,
/// crash flag, pre-images).
struct FaultState {
    pending: Vec<ScriptedFault>,
    next_op: usize,
    crashed: bool,
    /// `path → bytes before the most recent unsynced write` (`None` when
    /// the file did not exist).  Entries drop when `sync_file` succeeds.
    pre_images: HashMap<PathBuf, Option<Vec<u8>>>,
    stats: FaultIoStats,
}

/// A [`StoreIo`] backend over a real directory that deterministically
/// injects the faults of a [`FaultPlan`].  See the module docs for the
/// fault model and the crash-state semantics.
pub struct FaultIo {
    inner: StdIo,
    state: Mutex<FaultState>,
    /// Copy of `stats.injected` readable without the state lock (tests
    /// poll it while the store is mid-operation).
    injected: AtomicUsize,
}

impl fmt::Debug for FaultIo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultIo")
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish()
    }
}

impl FaultIo {
    /// A backend that will replay `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultIo {
            inner: StdIo,
            state: Mutex::new(FaultState {
                pending: plan.faults,
                next_op: 0,
                crashed: false,
                pre_images: HashMap::new(),
                stats: FaultIoStats::default(),
            }),
            injected: AtomicUsize::new(0),
        }
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultIoStats {
        self.lock().stats
    }

    /// Whether a crash fault has fired (the simulated process is dead; all
    /// further operations fail).
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Counts one operation and returns the fault scheduled for it, if any.
    fn admit(&self, class: OpClass) -> Result<Option<FaultKind>, io::Error> {
        let mut st = self.lock();
        if st.crashed {
            st.stats.post_crash_rejections += 1;
            return Err(io::Error::other(
                "simulated process death: I/O after a crash fault",
            ));
        }
        let op = st.next_op;
        st.next_op += 1;
        st.stats.ops += 1;
        let hit = st
            .pending
            .iter()
            .position(|f| f.at_op <= op && f.kind.matches(class));
        let Some(i) = hit else { return Ok(None) };
        let fault = st.pending.remove(i);
        st.stats.injected += 1;
        if fault.kind.is_crash() {
            st.stats.crash_injected += 1;
            st.crashed = true;
        } else {
            st.stats.transient_injected += 1;
        }
        self.injected.store(st.stats.injected, Ordering::Relaxed);
        Ok(Some(fault.kind))
    }

    fn transient(kind: FaultKind) -> io::Error {
        match kind {
            // EIO / ENOSPC by OS error code, so the error text and kind are
            // exactly what the real syscall would produce.
            FaultKind::TransientEio => io::Error::from_raw_os_error(5),
            FaultKind::Enospc => io::Error::from_raw_os_error(28),
            _ => unreachable!("crash faults never build a transient error"),
        }
    }
}

impl StoreIo for FaultIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        // Directory creation happens once at open and is not a scripted
        // op; a crashed backend still refuses it.
        if self.lock().crashed {
            return Err(io::Error::other("simulated process death"));
        }
        self.inner.create_dir_all(dir)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let fault = self.admit(OpClass::Write)?;
        match fault {
            None => {
                // Record the pre-image before the bytes change, so a later
                // LostFsync can roll this write back.
                let prior = self.inner.read(path).ok();
                self.lock().pre_images.insert(path.to_path_buf(), prior);
                self.inner.write(path, bytes)
            }
            Some(k @ (FaultKind::TransientEio | FaultKind::Enospc)) => Err(Self::transient(k)),
            Some(FaultKind::TornWrite) => {
                // Half the frame reaches the platter, then the process dies.
                let keep = bytes.len() / 2;
                let _ = self.inner.write(path, &bytes[..keep]);
                Err(io::Error::other(
                    "simulated crash: torn write (prefix persisted)",
                ))
            }
            Some(k) => unreachable!("{k:?} does not match the write class"),
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let fault = self.admit(OpClass::SyncFile)?;
        match fault {
            None => {
                // The write below this sync is durable now.
                self.lock().pre_images.remove(path);
                self.inner.sync_file(path)
            }
            Some(k @ (FaultKind::TransientEio | FaultKind::Enospc)) => Err(Self::transient(k)),
            Some(FaultKind::LostFsync) => {
                // The unsynced write never reaches the platter: restore the
                // pre-write bytes, then die.
                let pre = self.lock().pre_images.remove(path);
                match pre {
                    Some(Some(bytes)) => {
                        let _ = self.inner.write(path, &bytes);
                    }
                    Some(None) => {
                        let _ = self.inner.remove_file(path);
                    }
                    None => {}
                }
                Err(io::Error::other(
                    "simulated crash: fsync lost (write rolled back)",
                ))
            }
            Some(k) => unreachable!("{k:?} does not match the sync class"),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let fault = self.admit(OpClass::Rename)?;
        match fault {
            None => {
                // The rename moves `from`'s unsynced pre-image with it.
                let mut st = self.lock();
                if let Some(pre) = st.pre_images.remove(from) {
                    st.pre_images.insert(to.to_path_buf(), pre);
                }
                drop(st);
                self.inner.rename(from, to)
            }
            Some(k @ (FaultKind::TransientEio | FaultKind::Enospc)) => Err(Self::transient(k)),
            Some(FaultKind::DropRename) => Err(io::Error::other(
                "simulated crash: rename never reached the platter",
            )),
            Some(k) => unreachable!("{k:?} does not match the rename class"),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.admit(OpClass::Other)? {
            None => self.inner.sync_dir(dir),
            Some(k) => Err(Self::transient(k)),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.admit(OpClass::Other)? {
            None => self.inner.read(path),
            Some(k) => Err(Self::transient(k)),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        match self.admit(OpClass::Other)? {
            None => self.inner.list(dir),
            Some(k) => Err(Self::transient(k)),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.admit(OpClass::Other)? {
            None => self.inner.remove_file(path),
            Some(k) => Err(Self::transient(k)),
        }
    }

    fn exists(&self, path: &Path) -> io::Result<bool> {
        // Metadata probes are not scripted ops, but a dead process cannot
        // perform them either.
        if self.lock().crashed {
            return Err(io::Error::other("simulated process death"));
        }
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        static UNIQ: AtomicUsize = AtomicUsize::new(0);
        let n = UNIQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("nnbo-io-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_io_round_trips_and_tolerates_missing_removals() {
        let dir = scratch("std");
        let io = StdIo;
        let p = dir.join("f");
        io.write(&p, b"abc").unwrap();
        io.sync_file(&p).unwrap();
        assert_eq!(io.read(&p).unwrap(), b"abc");
        assert!(io.exists(&p).unwrap());
        let q = dir.join("g");
        io.rename(&p, &q).unwrap();
        io.sync_dir(&dir).unwrap();
        assert_eq!(io.list(&dir).unwrap(), vec!["g".to_string()]);
        io.remove_file(&q).unwrap();
        io.remove_file(&q).unwrap(); // missing is fine
        assert!(!io.exists(&q).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_faults_fail_once_then_clear() {
        let dir = scratch("transient");
        let io = FaultIo::new(FaultPlan::scripted(vec![
            ScriptedFault {
                at_op: 0,
                kind: FaultKind::TransientEio,
            },
            ScriptedFault {
                at_op: 1,
                kind: FaultKind::Enospc,
            },
        ]));
        let p = dir.join("f");
        let e = io.write(&p, b"x").unwrap_err();
        assert_eq!(e.raw_os_error(), Some(5));
        let e = io.write(&p, b"x").unwrap_err();
        assert_eq!(e.raw_os_error(), Some(28));
        io.write(&p, b"x").unwrap();
        assert_eq!(io.stats().transient_injected, 2);
        assert!(!io.crashed());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_keeps_a_prefix_and_kills_the_process() {
        let dir = scratch("torn");
        let io = FaultIo::new(FaultPlan::scripted(vec![ScriptedFault {
            at_op: 0,
            kind: FaultKind::TornWrite,
        }]));
        let p = dir.join("f");
        assert!(io.write(&p, b"0123456789").is_err());
        assert!(io.crashed());
        assert!(io.read(&p).is_err(), "post-crash I/O must fail");
        // The surviving byte state shows the tear.
        assert_eq!(fs::read(&p).unwrap(), b"01234");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lost_fsync_rolls_the_write_back() {
        let dir = scratch("fsync");
        let p = dir.join("f");
        fs::write(&p, b"old").unwrap();
        let io = FaultIo::new(FaultPlan::scripted(vec![ScriptedFault {
            at_op: 0,
            kind: FaultKind::LostFsync,
        }]));
        io.write(&p, b"new-bytes").unwrap();
        assert!(io.sync_file(&p).is_err());
        assert!(io.crashed());
        assert_eq!(fs::read(&p).unwrap(), b"old", "pre-image restored");

        // A brand-new file rolls back to nonexistence.
        let dir2 = scratch("fsync-new");
        let q = dir2.join("g");
        let io = FaultIo::new(FaultPlan::scripted(vec![ScriptedFault {
            at_op: 0,
            kind: FaultKind::LostFsync,
        }]));
        io.write(&q, b"never-durable").unwrap();
        assert!(io.sync_file(&q).is_err());
        assert!(!q.exists());
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }

    #[test]
    fn dropped_rename_leaves_the_old_name() {
        let dir = scratch("rename");
        let p = dir.join("a");
        fs::write(&p, b"payload").unwrap();
        let io = FaultIo::new(FaultPlan::scripted(vec![ScriptedFault {
            at_op: 0,
            kind: FaultKind::DropRename,
        }]));
        assert!(io.rename(&p, &dir.join("b")).is_err());
        assert!(io.crashed());
        assert!(p.exists(), "the rename never happened");
        assert!(!dir.join("b").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faults_wait_for_a_matching_op_class() {
        let dir = scratch("class");
        // A DropRename scheduled at op 0 must not fire on writes/syncs; it
        // fires on the first rename, whatever its index.
        let io = FaultIo::new(FaultPlan::scripted(vec![ScriptedFault {
            at_op: 0,
            kind: FaultKind::DropRename,
        }]));
        let p = dir.join("f");
        io.write(&p, b"x").unwrap();
        io.sync_file(&p).unwrap();
        assert!(io.rename(&p, &dir.join("g")).is_err());
        assert_eq!(io.stats().crash_injected, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = FaultPlan::seeded(42, 64, 4);
        let b = FaultPlan::seeded(42, 64, 4);
        assert_eq!(a, b);
        assert!(a.faults.len() <= 4);
        for f in &a.faults {
            assert!(f.at_op < 64);
        }
        let c = FaultPlan::seeded(43, 64, 4);
        // Different seeds almost surely differ; this seed pair does.
        assert_ne!(a, c);
        assert!(FaultPlan::seeded(7, 64, 0).faults.is_empty());
    }
}
