//! Property-based fault-matrix suite for the injectable-I/O store layer.
//!
//! Random [`FaultPlan`]s (operation index × fault kind × shard) drive the
//! store through EIO, ENOSPC, torn writes, dropped renames, and lost
//! fsyncs, and three invariants must hold for *every* sequence:
//!
//! 1. **At most the in-flight iteration is lost**: a restarted process
//!    loads exactly the last acknowledged payload (or nothing when no
//!    persist was ever acknowledged) — never an older one, never damaged
//!    bytes.
//! 2. **Scrub is replay-neutral**: `scrub()` after any fault sequence
//!    changes nothing about what `load` returns — it only removes debris
//!    and makes the winning generation durable — so recovery replays
//!    bit-identically before and after.
//! 3. **Rendezvous routing is stable**: the same id routes to the same
//!    shard under shard-set changes, except for sessions whose shard was
//!    removed.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nnbo_serve::{
    FaultIo, FaultKind, FaultPlan, RetryPolicy, SessionStore, ShardConfig, ShardedStore,
    SnapshotStore, StdIo,
};
use proptest::prelude::*;

fn scratch_dir(tag: &str) -> PathBuf {
    static UNIQ: AtomicUsize = AtomicUsize::new(0);
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "nnbo-store-faults-{tag}-{}-{n}",
        std::process::id()
    ))
}

/// Strategy: a fault plan of up to three faults over the first `horizon`
/// operations, spanning every fault kind.
fn fault_plan(horizon: usize) -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec((0usize..horizon, 0usize..FaultKind::ALL.len()), 0..3).prop_map(|pairs| {
        FaultPlan::scripted(
            pairs
                .into_iter()
                .map(|(at_op, kind)| nnbo_serve::io::ScriptedFault {
                    at_op,
                    kind: FaultKind::ALL[kind],
                })
                .collect(),
        )
    })
}

/// Drives `count` persists through a faulted backend; returns the payloads
/// and the index of the last acknowledged one.
fn run_faulted_sequence(
    dir: &PathBuf,
    plan: FaultPlan,
    count: usize,
) -> (Vec<String>, Option<usize>) {
    let store = SessionStore::open_with(dir, Arc::new(FaultIo::new(plan))).expect("store opens");
    let payloads: Vec<String> = (0..count)
        .map(|i| format!("{{\"iter\":{i},\"best\":{}}}", i * 3 + 1))
        .collect();
    let mut last_ok = None;
    for (i, p) in payloads.iter().enumerate() {
        if store.persist("s", p).is_ok() {
            last_ok = Some(i);
        }
    }
    (payloads, last_ok)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: whatever the fault sequence did, the surviving bytes
    /// resolve to an *attempted* payload no older than the last
    /// acknowledged one.  (A persist whose trailing dir-fsync faulted may
    /// land durably yet report failure — at-least-once, like a timed-out
    /// write that committed — so "newer than acked" is legal; "older than
    /// acked" or fabricated bytes never are.)
    #[test]
    fn no_fault_sequence_loses_more_than_the_in_flight_iteration(
        plan in fault_plan(40),
        count in 1usize..8,
    ) {
        let dir = scratch_dir("loss");
        let (payloads, last_ok) = run_faulted_sequence(&dir, plan, count);
        // The restarted process: same directory, clean backend.
        let survivor = SessionStore::open(&dir).expect("reopen");
        let loaded = survivor.load("s").expect("surviving generations verify");
        match loaded {
            Some(l) => {
                let floor = last_ok.unwrap_or(0);
                prop_assert!(
                    payloads[floor..].contains(&l.snapshot_json),
                    "resumed {:?}, older than ack #{:?} (or fabricated)",
                    l.snapshot_json,
                    last_ok
                );
            }
            None => prop_assert!(
                last_ok.is_none(),
                "ack #{:?} vanished from the store",
                last_ok
            ),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Invariant 2: scrub() never changes what recovery reads — it only
    /// deletes debris and promotes the already-winning generation.
    #[test]
    fn scrub_after_any_fault_sequence_replays_bit_identically(
        plan in fault_plan(40),
        count in 1usize..8,
    ) {
        let dir = scratch_dir("scrub");
        let _ = run_faulted_sequence(&dir, plan, count);
        let survivor = SessionStore::open(&dir).expect("reopen");
        let before = survivor
            .load("s")
            .expect("surviving generations verify")
            .map(|l| l.snapshot_json);
        let report = survivor.scrub().expect("scrub walks the directory");
        prop_assert!(report.unrecoverable.is_empty(), "injected faults never corrupt acked state");
        let after = survivor
            .load("s")
            .expect("post-scrub load verifies")
            .map(|l| l.snapshot_json);
        prop_assert_eq!(before, after);
        // Debris is gone: a second scrub finds nothing to do.
        let second = survivor.scrub().expect("second scrub");
        prop_assert_eq!(second.tmp_removed, 0);
        prop_assert_eq!(second.backups_promoted, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Invariant 3: removing one shard only remaps that shard's sessions.
    #[test]
    fn rendezvous_routing_is_stable_under_shard_removal(
        id_nums in prop::collection::vec(0u64..1_000_000_000, 1..40),
        k in 2usize..6,
        removed_ix in 0usize..6,
    ) {
        let ids: Vec<String> = id_nums.iter().map(|n| format!("sess-{n:x}")).collect();
        let root = scratch_dir("route");
        let full_cfg = ShardConfig::new(k);
        let removed = full_cfg.shards[removed_ix % k].clone();
        let mut small_cfg = full_cfg.clone();
        small_cfg.shards.retain(|s| *s != removed);
        let full = ShardedStore::open(root.join("full"), full_cfg).expect("open full");
        let small = ShardedStore::open(root.join("small"), small_cfg).expect("open small");
        for id in &ids {
            let before = full.shard_for(id);
            let after = small.shard_for(id);
            if before == removed {
                prop_assert_ne!(after, &removed);
            } else {
                prop_assert_eq!(after, before);
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// End-to-end matrix over seeded plans and shards: one shard takes random
/// faults while the others run clean.  Non-targeted shards must serve
/// untouched, and after a scrub every acknowledged payload must load back.
#[test]
fn seeded_fault_matrix_over_shards_keeps_acked_state_and_healthy_shards() {
    for seed in 0..24u64 {
        let root = scratch_dir(&format!("matrix-{seed}"));
        let target = (seed as usize) % 3;
        let cfg = ShardConfig::new(3).with_retry(RetryPolicy::no_backoff(2));
        let shard_names: Vec<String> = cfg.shards.clone();
        let faulted_name = shard_names[target].clone();
        let store = ShardedStore::open_with(&root, cfg, |name| {
            if name == faulted_name {
                Arc::new(FaultIo::new(FaultPlan::seeded(seed, 30, 3)))
            } else {
                Arc::new(StdIo)
            }
        })
        .expect("sharded store opens");

        let mut acked: Vec<(String, String)> = Vec::new();
        for i in 0..12 {
            let id = format!("sess-{seed}-{i}");
            let payload = format!("{{\"seed\":{seed},\"i\":{i}}}");
            let on_faulted_shard = store.shard_for(&id) == faulted_name;
            match store.persist(&id, &payload) {
                Ok(()) => acked.push((id, payload)),
                Err(e) => assert!(
                    on_faulted_shard,
                    "seed {seed}: non-targeted shard failed a persist: {e}"
                ),
            }
        }

        // The restarted process: all shards clean, scrub, then recover.
        let clean = ShardedStore::open(&root, ShardConfig::new(3)).expect("reopen");
        let report = clean.scrub().expect("scrub");
        assert!(
            report.unrecoverable.is_empty(),
            "seed {seed}: scrub lost acked state: {report:?}"
        );
        for (id, payload) in &acked {
            let loaded = clean
                .load(id)
                .unwrap_or_else(|e| panic!("seed {seed}: acked {id} failed to load: {e}"))
                .unwrap_or_else(|| panic!("seed {seed}: acked {id} vanished"));
            assert_eq!(&loaded.snapshot_json, payload, "seed {seed}: {id}");
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
