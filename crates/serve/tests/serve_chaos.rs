//! Chaos suite for the serving layer: scripted worker panics, step
//! timeouts, store corruption, overload shedding, and kill-and-restart
//! recovery — each asserting *exact* recovery counters and bit-identical
//! surviving sessions.
//!
//! Every service here runs on a private worker pool so the supervision
//! counters (worker restarts, panics) are exact rather than shared with
//! other tests in the process.  CI runs this suite under both the
//! vectorised and the `NNBO_PORTABLE_KERNELS=1` dispatch paths.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use nnbo_core::problems::{ConstrainedBranin, CornerContext, CornerSweep, PvtCorner, Testbench};
use nnbo_core::{
    BayesOpt, BoConfig, BoError, EvalOutcome, Evaluation, Prediction, Problem, SurrogateModel,
    SurrogateTrainer, SweepProblem,
};
use nnbo_serve::{BoService, ServeConfig, ServeError, SessionStatus, SessionStore};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A deliberately trivial surrogate (predicts the training mean) so chaos
/// runs are fast and fully deterministic; the loop machinery it drives is
/// exactly the one the neural ensemble uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct MeanModel {
    mean: f64,
    var: f64,
}

impl SurrogateModel for MeanModel {
    fn predict(&self, _x: &[f64]) -> Prediction {
        Prediction::new(self.mean, self.var)
    }
}

#[derive(Debug, Clone)]
struct MeanTrainer;

impl SurrogateTrainer for MeanTrainer {
    type Model = MeanModel;

    fn fit(&self, _xs: &[Vec<f64>], ys: &[f64], _rng: &mut StdRng) -> Result<MeanModel, String> {
        if ys.is_empty() {
            return Err("no data".to_string());
        }
        let n = ys.len() as f64;
        let mean = ys.iter().sum::<f64>() / n;
        let var = ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / n;
        Ok(MeanModel {
            mean,
            var: var.max(1e-6),
        })
    }
}

fn driver(seed: u64) -> BayesOpt<MeanTrainer> {
    BayesOpt::with_trainer(BoConfig::fast(4, 10).with_seed(seed), MeanTrainer)
}

/// The evaluations the same driver produces without any service around it.
fn sequential_reference(seed: u64) -> Vec<(Vec<f64>, Evaluation)> {
    driver(seed)
        .run(&ConstrainedBranin)
        .expect("reference run succeeds")
        .evaluations()
        .to_vec()
}

fn scratch_store(tag: &str) -> SessionStore {
    static UNIQ: AtomicUsize = AtomicUsize::new(0);
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("nnbo-serve-chaos-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SessionStore::open(dir).expect("scratch store opens")
}

/// Panics on one scripted `try_evaluate` call (per-instance counter).
struct PanicAt {
    inner: ConstrainedBranin,
    at: usize,
    calls: AtomicUsize,
}

impl PanicAt {
    fn new(at: usize) -> Self {
        PanicAt {
            inner: ConstrainedBranin,
            at,
            calls: AtomicUsize::new(0),
        }
    }
}

impl Problem for PanicAt {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        self.inner.evaluate(x)
    }
    fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
        if self.calls.fetch_add(1, Ordering::SeqCst) == self.at {
            panic!("chaos: scripted simulator crash at call {}", self.at);
        }
        self.inner.try_evaluate(x)
    }
}

/// Sleeps well past any deadline on one scripted call.
struct HangAt {
    inner: ConstrainedBranin,
    at: usize,
    calls: AtomicUsize,
}

impl Problem for HangAt {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        self.inner.evaluate(x)
    }
    fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
        if self.calls.fetch_add(1, Ordering::SeqCst) == self.at {
            std::thread::sleep(Duration::from_secs(60));
        }
        self.inner.try_evaluate(x)
    }
}

/// Blocks its first `try_evaluate` until the test opens the gate, and
/// reports when the evaluation has been entered (so tests can wait for the
/// worker to be provably busy).
struct GatedProblem {
    inner: ConstrainedBranin,
    gate: Mutex<bool>,
    opened: Condvar,
    entered: AtomicBool,
    calls: AtomicUsize,
}

impl GatedProblem {
    fn new() -> Self {
        GatedProblem {
            inner: ConstrainedBranin,
            gate: Mutex::new(false),
            opened: Condvar::new(),
            entered: AtomicBool::new(false),
            calls: AtomicUsize::new(0),
        }
    }

    fn open(&self) {
        *self.gate.lock().unwrap() = true;
        self.opened.notify_all();
    }

    fn wait_entered(&self) {
        while !self.entered.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Problem for GatedProblem {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        self.inner.evaluate(x)
    }
    fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
        if self.calls.fetch_add(1, Ordering::SeqCst) == 0 {
            self.entered.store(true, Ordering::SeqCst);
            let mut open = self.gate.lock().unwrap();
            while !*open {
                open = self.opened.wait(open).unwrap();
            }
        }
        self.inner.try_evaluate(x)
    }
}

/// Step jobs a `fast(4, 10)` session needs: one start+step job, then one
/// job per remaining iteration, then the budget-exhausted finishing job.
const JOBS_PER_SESSION: usize = 10 - 4 + 1;

#[test]
fn sessions_complete_and_match_the_sequential_loop_bit_identically() {
    let service: BoService<MeanTrainer> = BoService::new(
        scratch_store("baseline"),
        ServeConfig {
            workers: Some(3),
            ..ServeConfig::default()
        },
    );
    let seeds = [11u64, 22, 33, 44];
    for seed in seeds {
        service
            .submit(
                &format!("s{seed}"),
                driver(seed),
                Arc::new(ConstrainedBranin),
            )
            .unwrap();
    }
    service.drain();

    for seed in seeds {
        let id = format!("s{seed}");
        assert_eq!(service.status(&id).unwrap(), SessionStatus::Completed);
        assert_eq!(
            service.history(&id).unwrap(),
            sequential_reference(seed),
            "served session {id} diverged from the sequential loop"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.sessions_submitted, 4);
    assert_eq!(stats.sessions_completed, 4);
    assert_eq!(stats.sessions_quarantined, 0);
    assert_eq!(stats.steps_completed, 4 * JOBS_PER_SESSION);
    assert_eq!(stats.steps_persisted, 4 * JOBS_PER_SESSION);
    assert!(service.step_latency_ms(99.0).unwrap() > 0.0);
    let _ = std::fs::remove_dir_all(service.store().dir());
}

#[test]
fn a_panicking_session_is_quarantined_alone_and_its_worker_recycled() {
    let service: BoService<MeanTrainer> = BoService::new(
        scratch_store("panic"),
        ServeConfig {
            workers: Some(2),
            ..ServeConfig::default()
        },
    );
    service
        .submit("healthy-1", driver(1), Arc::new(ConstrainedBranin))
        .unwrap();
    // Crashes during the 7th evaluation — mid way through the model-guided
    // phase, after several checkpoints have landed.
    service
        .submit("doomed", driver(2), Arc::new(PanicAt::new(6)))
        .unwrap();
    service
        .submit("healthy-2", driver(3), Arc::new(ConstrainedBranin))
        .unwrap();
    service.drain();

    // Exactly one quarantine, with the payload preserved.
    let quarantined = service.quarantined();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].0, "doomed");
    assert!(quarantined[0].1.contains("scripted simulator crash"));
    assert!(matches!(
        service.result("doomed"),
        Err(ServeError::SessionPanicked { .. })
    ));

    // The pool recycled exactly the one worker that ran the panicking job
    // (the respawn completes just after the job returns — wait it out).
    let waiting = std::time::Instant::now();
    while service.pool_stats().worker_restarts < 1 && waiting.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(service.pool_stats().worker_restarts, 1);

    // The survivors are bit-identical to unfaulted sequential runs.
    for (id, seed) in [("healthy-1", 1u64), ("healthy-2", 3u64)] {
        assert_eq!(service.status(id).unwrap(), SessionStatus::Completed);
        assert_eq!(service.history(id).unwrap(), sequential_reference(seed));
    }
    let stats = service.stats();
    assert_eq!(stats.session_panics, 1);
    assert_eq!(stats.sessions_quarantined, 1);
    assert_eq!(stats.sessions_completed, 2);

    // The doomed session's last checkpoint is intact: recovering it with a
    // healthy problem finishes the run exactly as the unfaulted loop would.
    let fresh: BoService<MeanTrainer> = BoService::new(
        SessionStore::open(service.store().dir()).unwrap(),
        ServeConfig {
            workers: Some(1),
            ..ServeConfig::default()
        },
    );
    let resumed_evals = fresh
        .recover("doomed", driver(2), Arc::new(ConstrainedBranin))
        .unwrap();
    assert!(
        resumed_evals >= 4,
        "checkpoints were landing before the crash"
    );
    fresh.drain();
    assert_eq!(fresh.status("doomed").unwrap(), SessionStatus::Completed);
    assert_eq!(fresh.history("doomed").unwrap(), sequential_reference(2));
    let _ = std::fs::remove_dir_all(service.store().dir());
}

#[test]
fn a_hung_evaluation_times_out_into_the_resilience_path() {
    let service: BoService<MeanTrainer> = BoService::new(
        scratch_store("deadline"),
        ServeConfig {
            workers: Some(1),
            step_deadline: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        },
    );
    service
        .submit(
            "laggard",
            driver(5),
            Arc::new(HangAt {
                inner: ConstrainedBranin,
                at: 5,
                calls: AtomicUsize::new(0),
            }),
        )
        .unwrap();
    service.drain();

    assert_eq!(service.status("laggard").unwrap(), SessionStatus::Completed);
    let log = service.recovery_log("laggard").unwrap();
    assert_eq!(
        log.eval_timeouts, 1,
        "the hung attempt must surface as a timeout"
    );
    assert!(
        log.eval_retries >= 1,
        "the failure policy retries the timed-out point"
    );
    let result = service.result("laggard").unwrap();
    assert_eq!(result.num_evaluations(), 10, "the budget still completes");
    let _ = std::fs::remove_dir_all(service.store().dir());
}

#[test]
fn corrupted_latest_checkpoint_recovers_from_the_backup_generation() {
    let store = scratch_store("corrupt");
    let dir = store.dir().to_path_buf();
    let service: BoService<MeanTrainer> = BoService::new(
        store,
        ServeConfig {
            workers: Some(1),
            kill_after_steps: Some(4),
            ..ServeConfig::default()
        },
    );
    service
        .submit("victim", driver(9), Arc::new(ConstrainedBranin))
        .unwrap();
    service.drain();
    assert!(service.stats().steps_lost_to_kill >= 1);

    // Bit-rot the primary generation on disk.
    let latest = dir.join("victim.session");
    let mut bytes = std::fs::read(&latest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&latest, &bytes).unwrap();

    let fresh: BoService<MeanTrainer> = BoService::new(
        SessionStore::open(&dir).unwrap(),
        ServeConfig {
            workers: Some(1),
            ..ServeConfig::default()
        },
    );
    fresh
        .recover("victim", driver(9), Arc::new(ConstrainedBranin))
        .unwrap();
    let stats = fresh.stats();
    assert_eq!(
        stats.corruption_detected, 1,
        "the flipped bit must be noticed"
    );
    assert_eq!(
        stats.recovered_from_backup, 1,
        "recovery must use prev, not the damaged file"
    );
    fresh.drain();
    assert_eq!(fresh.status("victim").unwrap(), SessionStatus::Completed);
    // Replaying the lost steps is deterministic: the final history is still
    // exactly the unfaulted run's.
    assert_eq!(fresh.history("victim").unwrap(), sequential_reference(9));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_service_recovers_every_session_bit_identically() {
    let store = scratch_store("kill");
    let dir = store.dir().to_path_buf();
    let seeds = [71u64, 72, 73];
    let service: BoService<MeanTrainer> = BoService::new(
        store,
        ServeConfig {
            workers: Some(2),
            // Dies after 11 computed step jobs — mid-flight for all three
            // sessions (3 sessions need 21 jobs total).
            kill_after_steps: Some(11),
            ..ServeConfig::default()
        },
    );
    for seed in seeds {
        service
            .submit(
                &format!("k{seed}"),
                driver(seed),
                Arc::new(ConstrainedBranin),
            )
            .unwrap();
    }
    service.drain();

    let stats = service.stats();
    assert!(
        stats.steps_lost_to_kill >= 1,
        "the kill must catch a step before persist"
    );
    assert!(
        stats.steps_lost_to_kill <= seeds.len(),
        "each session loses at most its one in-flight step"
    );
    assert!(
        stats.sessions_completed < seeds.len(),
        "the kill interrupts the fleet"
    );
    assert!(matches!(
        service.submit("late", driver(99), Arc::new(ConstrainedBranin)),
        Err(ServeError::ServiceKilled)
    ));

    // "Restart the process": a fresh service over the same store directory.
    let fresh: BoService<MeanTrainer> = BoService::new(
        SessionStore::open(&dir).unwrap(),
        ServeConfig {
            workers: Some(2),
            ..ServeConfig::default()
        },
    );
    assert_eq!(
        fresh.store().list().unwrap().len(),
        seeds.len(),
        "every session left a checkpoint behind"
    );
    for seed in seeds {
        let id = format!("k{seed}");
        let resumed = fresh
            .recover(&id, driver(seed), Arc::new(ConstrainedBranin))
            .unwrap();
        assert!(resumed >= 4, "at least the initial design was durable");
    }
    fresh.drain();
    for seed in seeds {
        let id = format!("k{seed}");
        assert_eq!(fresh.status(&id).unwrap(), SessionStatus::Completed);
        assert_eq!(
            fresh.history(&id).unwrap(),
            sequential_reference(seed),
            "recovered session {id} must be bit-identical to the unfaulted run"
        );
    }
    assert_eq!(fresh.stats().sessions_recovered, seeds.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_the_oldest_idle_session_and_resumes_it_later() {
    let service: BoService<MeanTrainer> = BoService::new(
        scratch_store("shed"),
        ServeConfig {
            workers: Some(1),
            max_sessions: 2,
            ..ServeConfig::default()
        },
    );
    // Occupy the single worker: the blocker parks itself inside its first
    // evaluation until the gate opens.
    let gate = Arc::new(GatedProblem::new());
    service
        .submit("blocker", driver(50), Arc::clone(&gate) as Arc<_>)
        .unwrap();
    gate.wait_entered();

    // Queued behind the busy worker: idle by definition.
    service
        .submit("idle-1", driver(51), Arc::new(ConstrainedBranin))
        .unwrap();
    // At capacity; the oldest idle session (idle-1 — the blocker is mid
    // step) is checkpoint-parked to make room.
    service
        .submit("idle-2", driver(52), Arc::new(ConstrainedBranin))
        .unwrap();
    assert_eq!(service.status("idle-1").unwrap(), SessionStatus::Parked);
    assert_eq!(service.stats().sessions_parked, 1);

    gate.open();
    service.drain();
    assert_eq!(service.status("blocker").unwrap(), SessionStatus::Completed);
    assert_eq!(service.status("idle-2").unwrap(), SessionStatus::Completed);
    assert_eq!(service.status("idle-1").unwrap(), SessionStatus::Parked);

    // Capacity is free again: the parked session resumes and completes
    // exactly as if it had never been shed.
    service.resume_parked("idle-1").unwrap();
    service.drain();
    assert_eq!(service.status("idle-1").unwrap(), SessionStatus::Completed);
    assert_eq!(service.history("idle-1").unwrap(), sequential_reference(51));
    let stats = service.stats();
    assert_eq!(stats.sessions_unparked, 1);
    assert_eq!(stats.overload_rejections, 0);
    let _ = std::fs::remove_dir_all(service.store().dir());
}

#[test]
fn overload_with_no_idle_session_is_rejected_with_backpressure() {
    let service: BoService<MeanTrainer> = BoService::new(
        scratch_store("reject"),
        ServeConfig {
            workers: Some(1),
            max_sessions: 1,
            ..ServeConfig::default()
        },
    );
    let gate = Arc::new(GatedProblem::new());
    service
        .submit("busy", driver(60), Arc::clone(&gate) as Arc<_>)
        .unwrap();
    gate.wait_entered();

    // The only active session is mid-step: nothing can be parked.
    let err = service
        .submit("turned-away", driver(61), Arc::new(ConstrainedBranin))
        .unwrap_err();
    assert_eq!(err, ServeError::Overloaded { capacity: 1 });
    assert_eq!(service.stats().overload_rejections, 1);
    assert!(matches!(
        service.status("turned-away"),
        Err(ServeError::SessionNotFound { .. })
    ));

    gate.open();
    service.drain();
    assert_eq!(service.status("busy").unwrap(), SessionStatus::Completed);
    let _ = std::fs::remove_dir_all(service.store().dir());
}

/// A deterministic analytic testbench for sweep sessions: the measurement
/// depends only on the design point and the corner context, so parallel
/// corner fan-out is bit-identical to the sequential reference.
#[derive(Debug, Clone)]
struct CornerBench;

impl Testbench for CornerBench {
    type Output = f64;

    fn name(&self) -> &str {
        "corner-bench"
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![(0.0, 1.0); 2]
    }

    fn measure(&self, x: &[f64], ctx: &CornerContext) -> Result<f64, String> {
        Ok((x[0] * ctx.corner.vdd
            + x[1] * (ctx.corner.temperature + 40.0) / 165.0
            + 0.1 * ctx.index as f64)
            .sin())
    }
}

/// `CornerBench`, but one scripted corner measurement panics (per-instance
/// counter over all corners of all evaluations) — a simulator crash in the
/// middle of a fanned-out PVT sweep.
struct FlakyCornerBench {
    at: usize,
    calls: AtomicUsize,
}

impl Testbench for FlakyCornerBench {
    type Output = f64;

    fn name(&self) -> &str {
        "flaky-corner-bench"
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        CornerBench.bounds()
    }

    fn measure(&self, x: &[f64], ctx: &CornerContext) -> Result<f64, String> {
        if self.calls.fetch_add(1, Ordering::SeqCst) == self.at {
            panic!("chaos: corner simulator crash at corner call {}", self.at);
        }
        CornerBench.measure(x, ctx)
    }
}

fn sweep_problem<T: Testbench<Output = f64>>(bench: T) -> SweepProblem<T> {
    SweepProblem::new(
        CornerSweep::new(bench, PvtCorner::standard_18()),
        "corner-bench-pvt",
        1,
        |out: &f64| Evaluation::new(*out, vec![*out - 0.9]),
    )
}

/// The evaluations an unfaulted, *sequential* (no pool fan-out) sweep run
/// produces — the bit-identity reference for served parallel sweeps.
fn sweep_reference(seed: u64) -> Vec<(Vec<f64>, Evaluation)> {
    driver(seed)
        .run(&sweep_problem(CornerBench).with_parallel(false))
        .expect("sequential sweep reference succeeds")
        .evaluations()
        .to_vec()
}

#[test]
fn sweep_sessions_share_the_pool_and_match_the_sequential_sweep_bit_identically() {
    // Sessions carry sweep problems unchanged: each step job (on the
    // service's pool) fans its 18 corners out over the global pool, and the
    // result must still be exactly the sequential sweep's.
    let service: BoService<MeanTrainer> = BoService::new(
        scratch_store("sweep"),
        ServeConfig {
            workers: Some(3),
            ..ServeConfig::default()
        },
    );
    let seeds = [101u64, 102, 103];
    for seed in seeds {
        service
            .submit(
                &format!("sweep{seed}"),
                driver(seed),
                Arc::new(sweep_problem(CornerBench)),
            )
            .unwrap();
    }
    service.drain();

    for seed in seeds {
        let id = format!("sweep{seed}");
        assert_eq!(service.status(&id).unwrap(), SessionStatus::Completed);
        assert_eq!(
            service.history(&id).unwrap(),
            sweep_reference(seed),
            "served sweep session {id} diverged from the sequential sweep"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.sessions_completed, 3);
    assert_eq!(stats.sessions_quarantined, 0);
    let _ = std::fs::remove_dir_all(service.store().dir());
}

#[test]
fn a_mid_sweep_corner_panic_quarantines_only_its_session() {
    let service: BoService<MeanTrainer> = BoService::new(
        scratch_store("sweep-panic"),
        ServeConfig {
            workers: Some(2),
            ..ServeConfig::default()
        },
    );
    service
        .submit("healthy-1", driver(1), Arc::new(sweep_problem(CornerBench)))
        .unwrap();
    // 18 corners per evaluation: corner call 99 lands mid-sweep of the 6th
    // evaluation, well into the model-guided phase.  The panic surfaces on
    // a *global-pool* corner task, is re-thrown into the session's step job
    // on the service pool, and must quarantine only that session.
    service
        .submit(
            "doomed",
            driver(2),
            Arc::new(sweep_problem(FlakyCornerBench {
                at: 99,
                calls: AtomicUsize::new(0),
            })),
        )
        .unwrap();
    service
        .submit("healthy-2", driver(3), Arc::new(sweep_problem(CornerBench)))
        .unwrap();
    service.drain();

    // Exactly one quarantine, with the corner-panic payload preserved.
    let quarantined = service.quarantined();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].0, "doomed");
    assert!(
        quarantined[0].1.contains("corner simulator crash"),
        "payload: {}",
        quarantined[0].1
    );
    assert!(matches!(
        service.result("doomed"),
        Err(ServeError::SessionPanicked { .. })
    ));

    // The service worker that ran the doomed step job is recycled (the
    // global pool's corner workers are untouched: batch-task panics are not
    // a worker-health signal there).
    let waiting = std::time::Instant::now();
    while service.pool_stats().worker_restarts < 1 && waiting.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(service.pool_stats().worker_restarts, 1);

    // The surviving sweep sessions are bit-identical to unfaulted
    // sequential sweeps.
    for (id, seed) in [("healthy-1", 1u64), ("healthy-2", 3u64)] {
        assert_eq!(service.status(id).unwrap(), SessionStatus::Completed);
        assert_eq!(service.history(id).unwrap(), sweep_reference(seed));
    }
    let stats = service.stats();
    assert_eq!(stats.session_panics, 1);
    assert_eq!(stats.sessions_quarantined, 1);
    assert_eq!(stats.sessions_completed, 2);

    // The doomed session's checkpoints survived the corner panic: recovery
    // with a healthy sweep bench completes exactly as the unfaulted run.
    let fresh: BoService<MeanTrainer> = BoService::new(
        SessionStore::open(service.store().dir()).unwrap(),
        ServeConfig {
            workers: Some(1),
            ..ServeConfig::default()
        },
    );
    let resumed = fresh
        .recover("doomed", driver(2), Arc::new(sweep_problem(CornerBench)))
        .unwrap();
    assert!(resumed >= 4, "checkpoints were landing before the crash");
    fresh.drain();
    assert_eq!(fresh.status("doomed").unwrap(), SessionStatus::Completed);
    assert_eq!(fresh.history("doomed").unwrap(), sweep_reference(2));
    let _ = std::fs::remove_dir_all(service.store().dir());
}

#[test]
fn admission_rejects_duplicates_bad_ids_and_mismatched_recoveries() {
    let service: BoService<MeanTrainer> = BoService::new(
        scratch_store("admission"),
        ServeConfig {
            workers: Some(1),
            ..ServeConfig::default()
        },
    );
    service
        .submit("dup", driver(80), Arc::new(ConstrainedBranin))
        .unwrap();
    assert!(matches!(
        service.submit("dup", driver(80), Arc::new(ConstrainedBranin)),
        Err(ServeError::SessionBusy { .. })
    ));
    assert!(matches!(
        service.submit("../escape", driver(80), Arc::new(ConstrainedBranin)),
        Err(ServeError::InvalidSessionId { .. })
    ));
    service.drain();

    // Recovering under a different configuration must refuse, not resume
    // wrongly.
    let fresh: BoService<MeanTrainer> = BoService::new(
        SessionStore::open(service.store().dir()).unwrap(),
        ServeConfig {
            workers: Some(1),
            ..ServeConfig::default()
        },
    );
    let mismatched = BayesOpt::with_trainer(BoConfig::fast(4, 12).with_seed(80), MeanTrainer);
    assert!(matches!(
        fresh.recover("dup", mismatched, Arc::new(ConstrainedBranin)),
        Err(ServeError::Bo(BoError::SnapshotMismatch { .. }))
    ));
    assert!(matches!(
        fresh.recover("never-seen", driver(1), Arc::new(ConstrainedBranin)),
        Err(ServeError::SessionNotFound { .. })
    ));
    let _ = std::fs::remove_dir_all(service.store().dir());
}

/// Finds `want` session ids that the sharded store routes to `shard`.
fn ids_on_shard(
    store: &nnbo_serve::ShardedStore,
    shard: &str,
    want: usize,
    tag: &str,
) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0.. {
        let id = format!("{tag}-{i}");
        if store.shard_for(&id) == shard {
            out.push(id);
            if out.len() == want {
                break;
            }
        }
    }
    out
}

#[test]
fn down_shard_parks_its_sessions_while_the_other_shard_completes() {
    use nnbo_serve::{
        FaultIo, FaultKind, FaultPlan, RetryPolicy, ShardConfig, ShardedStore, StdIo,
    };

    let root = std::env::temp_dir().join(format!("nnbo-chaos-shard-down-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cfg = ShardConfig::new(2)
        .with_retry(RetryPolicy::no_backoff(1))
        .with_down_after(1);
    // shard-00's disk dies on its very first write and never comes back.
    let store = ShardedStore::open_with(&root, cfg, |name| {
        if name == "shard-00" {
            Arc::new(FaultIo::new(FaultPlan::one(0, FaultKind::TornWrite)))
        } else {
            Arc::new(StdIo)
        }
    })
    .unwrap();
    let bad = ids_on_shard(&store, "shard-00", 2, "bad");
    let good = ids_on_shard(&store, "shard-01", 2, "good");
    let service: BoService<MeanTrainer, ShardedStore> = BoService::new(
        store,
        ServeConfig {
            workers: Some(1),
            ..ServeConfig::default()
        },
    );
    // One worker => deterministic job order: bad[0] hits the dead disk
    // first (quarantined, shard goes Down), bad[1]'s persist then sees the
    // Down shard and parks instead.
    for id in bad.iter().chain(&good) {
        service
            .submit(id, driver(21), Arc::new(ConstrainedBranin))
            .unwrap();
    }
    service.drain();

    assert_eq!(service.status(&bad[0]).unwrap(), SessionStatus::Quarantined);
    assert_eq!(service.status(&bad[1]).unwrap(), SessionStatus::Parked);
    for id in &good {
        assert_eq!(
            service.status(id).unwrap(),
            SessionStatus::Completed,
            "{id}: the healthy shard must keep serving through the outage"
        );
        assert_eq!(service.history(id).unwrap(), sequential_reference(21));
    }
    let stats = service.stats();
    assert_eq!(stats.sessions_completed, 2);
    assert_eq!(
        stats.persist_failures, 1,
        "only the downing failure touches disk"
    );
    assert_eq!(stats.shard_parks, 1);

    // Admission also respects shard health: a *new* session routed to the
    // Down shard is rejected up-front with the typed error.
    let extra = ids_on_shard(service.store(), "shard-00", 1, "extra");
    match service.submit(&extra[0], driver(22), Arc::new(ConstrainedBranin)) {
        Err(ServeError::ShardUnavailable { shard, session }) => {
            assert_eq!(shard, "shard-00");
            assert_eq!(session, extra[0]);
        }
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
    assert_eq!(service.stats().shard_rejections, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn scrub_revives_the_shard_and_the_parked_session_finishes_bit_identically() {
    use nnbo_serve::{FaultIo, FaultKind, FaultPlan, RetryPolicy, ShardConfig, ShardedStore};

    let root = std::env::temp_dir().join(format!("nnbo-chaos-shard-revive-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cfg = ShardConfig::new(1)
        .with_retry(RetryPolicy::no_backoff(1))
        .with_down_after(1);
    // One transient EIO, then the disk is fine — but with no retries and
    // down_after=1 that single fault downs the only shard.
    let store = ShardedStore::open_with(&root, cfg, |_| {
        Arc::new(FaultIo::new(FaultPlan::one(0, FaultKind::TransientEio)))
    })
    .unwrap();
    let service: BoService<MeanTrainer, ShardedStore> = BoService::new(
        store,
        ServeConfig {
            workers: Some(1),
            ..ServeConfig::default()
        },
    );
    service
        .submit("a", driver(31), Arc::new(ConstrainedBranin))
        .unwrap();
    service
        .submit("b", driver(32), Arc::new(ConstrainedBranin))
        .unwrap();
    service.drain();
    // a's first persist ate the EIO (quarantine + shard Down); b parked.
    assert_eq!(service.status("a").unwrap(), SessionStatus::Quarantined);
    assert_eq!(service.status("b").unwrap(), SessionStatus::Parked);

    // Operator runs a scrub: the shard answers again, so it is revived and
    // the parked session resumes from its intact in-memory state.
    let report = service.store().scrub().unwrap();
    assert_eq!(report.shards_revived, 1);
    service.resume_parked("b").unwrap();
    service.drain();
    assert_eq!(service.status("b").unwrap(), SessionStatus::Completed);
    assert_eq!(
        service.history("b").unwrap(),
        sequential_reference(32),
        "the outage must not change what the session computes"
    );
    let _ = std::fs::remove_dir_all(&root);
}
