//! Property-based durability suite for the session store: arbitrary
//! truncations and bit flips of the persisted bytes must always be
//! *detected*, recovery must always land on the last good generation, and
//! a wrong resume (returning damaged bytes as if intact) must never happen.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use nnbo_serve::{ServeError, SessionStore};
use proptest::prelude::*;

fn scratch_dir() -> PathBuf {
    static UNIQ: AtomicUsize = AtomicUsize::new(0);
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("nnbo-serve-durability-{}-{n}", std::process::id()))
}

/// Strategy: a payload string over printable ASCII plus newline, tab, and a
/// multi-byte code point — newlines and frame-like text are legal payloads
/// because the frame is length-delimited.
fn payload(max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..99, 1..max_len).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| match c {
                0..=94 => char::from_u32(c + 32).expect("printable ASCII"),
                95 => '\n',
                96 => '\t',
                97 => 'é',
                _ => '∎',
            })
            .collect()
    })
}

/// Persists two generations so `prev` holds `old` and `latest` holds `new`.
fn seeded_store(old: &str, new: &str) -> SessionStore {
    let store = SessionStore::open(scratch_dir()).expect("store opens");
    store.persist("s", old).expect("first persist");
    store.persist("s", new).expect("second persist");
    store
}

fn latest_path(store: &SessionStore) -> PathBuf {
    store.dir().join("s.session")
}

fn prev_path(store: &SessionStore) -> PathBuf {
    store.dir().join("s.session.prev")
}

fn cleanup(store: SessionStore) {
    let _ = std::fs::remove_dir_all(store.dir());
}

/// Flips one bit of the byte at `offset % len`.
fn flip_bit(path: &PathBuf, offset: usize, bit: usize) {
    let mut bytes = std::fs::read(path).expect("read persisted file");
    let i = offset % bytes.len();
    bytes[i] ^= 1 << (bit % 8);
    std::fs::write(path, &bytes).expect("write damaged file");
}

/// Exhaustive (not sampled): every single-bit flip of every byte of a
/// persisted generation must be detected.  This is the check that caught
/// `from_str_radix` accepting uppercase hex, which made ASCII case flips
/// (bit 5 of a checksum letter) semantically invisible to a lax parser.
#[test]
fn every_single_bit_flip_of_prev_is_detected() {
    let store = seeded_store("old generation with a\nnewline and é", "the new generation");
    let prev = prev_path(&store);
    let pristine = std::fs::read(&prev).expect("read prev");
    // Damage latest so every load exercises the prev generation.
    flip_bit(&latest_path(&store), 5, 0);
    let mut undetected = Vec::new();
    for i in 0..pristine.len() {
        for bit in 0..8 {
            let mut damaged = pristine.clone();
            damaged[i] ^= 1 << bit;
            std::fs::write(&prev, &damaged).expect("write damaged prev");
            if store.load("s").is_ok_and(|l| l.is_some()) {
                undetected.push((i, bit));
            }
        }
    }
    assert!(
        undetected.is_empty(),
        "flips that evaded detection: {undetected:?}"
    );
    cleanup(store);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any single bit flip anywhere in the latest generation is detected,
    /// and recovery returns exactly the previous payload.
    #[test]
    fn bit_flips_always_fall_back_to_the_last_good_generation(
        old in payload(120),
        new in payload(120),
        offset in 0usize..4096,
        bit in 0usize..8,
    ) {
        let store = seeded_store(&old, &new);
        flip_bit(&latest_path(&store), offset, bit);
        let loaded = store.load("s").expect("prev is intact").expect("generations exist");
        prop_assert_eq!(&loaded.snapshot_json, &old);
        prop_assert!(loaded.recovered_from_backup);
        prop_assert!(loaded.corruption.is_some(), "the flip must be reported, not silently healed");
        cleanup(store);
    }

    /// Any truncation of the latest generation is detected (a full-length
    /// "truncation" is a no-op and keeps the newest payload).
    #[test]
    fn truncations_never_yield_a_wrong_resume(
        old in payload(120),
        new in payload(120),
        cut in 0usize..4096,
    ) {
        let store = seeded_store(&old, &new);
        let path = latest_path(&store);
        let bytes = std::fs::read(&path).expect("read persisted file");
        let keep = cut % (bytes.len() + 1);
        std::fs::write(&path, &bytes[..keep]).expect("truncate file");

        let loaded = store.load("s").expect("prev is intact").expect("generations exist");
        if keep == bytes.len() {
            prop_assert_eq!(&loaded.snapshot_json, &new);
            prop_assert!(!loaded.recovered_from_backup);
        } else {
            prop_assert_eq!(&loaded.snapshot_json, &old);
            prop_assert!(loaded.recovered_from_backup);
        }
        cleanup(store);
    }

    /// Payloads round-trip exactly, whatever characters they contain.
    #[test]
    fn arbitrary_payloads_round_trip(text in payload(200)) {
        let store = SessionStore::open(scratch_dir()).expect("store opens");
        store.persist("s", &text).expect("persist");
        let loaded = store.load("s").expect("load").expect("exists");
        prop_assert_eq!(loaded.snapshot_json, text);
        prop_assert!(!loaded.recovered_from_backup);
        cleanup(store);
    }

    /// With both generations damaged, the store reports corruption — it
    /// never fabricates a resume from damaged bytes.
    #[test]
    fn damage_to_every_generation_is_an_error(
        old in payload(120),
        new in payload(120),
        offset_a in 0usize..4096,
        offset_b in 0usize..4096,
        bit_a in 0usize..8,
        bit_b in 0usize..8,
    ) {
        let store = seeded_store(&old, &new);
        flip_bit(&latest_path(&store), offset_a, bit_a);
        flip_bit(&prev_path(&store), offset_b, bit_b);
        let err = store.load("s").expect_err("no intact generation remains");
        prop_assert!(matches!(err, ServeError::CorruptSnapshot { .. }));
        cleanup(store);
    }
}
