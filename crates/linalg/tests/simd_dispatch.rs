//! Equivalence of the packed-panel SIMD kernels and the portable scalar
//! kernels, exercised by toggling the runtime dispatch inside one process.
//!
//! These tests live in their own integration-test binary because
//! [`nnbo_linalg::force_portable_kernels`] is a process-global switch: the
//! unit tests of the crate assert bit-identity properties (banded vs
//! sequential sweeps, batch vs single prediction) that assume the dispatch
//! does not flip mid-test.  Here every assertion is tolerance-based, so the
//! toggling is safe even with the test harness running cases concurrently.
//!
//! On machines without AVX2+FMA both paths are the same portable code and the
//! comparisons are trivially exact — the suite still runs, pinning the
//! fallback.

use std::sync::Mutex;

use nnbo_linalg::{force_portable_kernels, Cholesky, Matrix};

/// Serialises the tests of this binary: the dispatch override is process
/// global, so a test that toggles it must not overlap one that reads it.
static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    DISPATCH_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Deterministic pseudo-random matrix.
fn mat(rows: usize, cols: usize, seed: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols)
        .map(|i| (((i * 2654435761 + seed * 97) % 1000) as f64 / 500.0 - 1.0) * 0.7)
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn spd(n: usize, seed: usize) -> Matrix {
    let b = mat(n, n, seed);
    let mut a = b.matmul_transpose(&b);
    a.add_diag(n as f64 * 0.1 + 1.0);
    a
}

/// Runs `f` with the portable kernels forced, restoring the automatic
/// dispatch afterwards (also on panic).
fn with_portable<T>(f: impl FnOnce() -> T) -> T {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            force_portable_kernels(false);
        }
    }
    let _restore = Restore;
    force_portable_kernels(true);
    f()
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f64, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice().iter()).enumerate() {
        assert!(
            (x - y).abs() < tol * (1.0 + y.abs()),
            "{what}: element {i}: {x} vs {y}"
        );
    }
}

/// Ragged shapes around the 4-row/8-column panel sizes: tiny, single
/// row/column, one-off-a-panel, multi-panel with remainders, and one shape
/// crossing the 256-deep `k` blocking.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 7, 1),
    (3, 2, 9),
    (4, 8, 8),
    (5, 9, 7),
    (8, 16, 24),
    (13, 31, 17),
    (33, 65, 29),
    (47, 300, 11),
];

#[test]
fn products_match_between_dispatch_paths_on_ragged_shapes() {
    let _guard = serial();
    for &(m, k, n) in SHAPES {
        let a = mat(m, k, m * 31 + n);
        let b = mat(k, n, k);
        let bt = mat(n, k, n * 7 + 1);
        let at = mat(k, m, k + 3);

        let simd = (
            a.matmul(&b),
            a.matmul_transpose(&bt),
            at.transpose_matmul(&b),
        );
        let portable = with_portable(|| {
            (
                a.matmul(&b),
                a.matmul_transpose(&bt),
                at.transpose_matmul(&b),
            )
        });
        assert_close(&simd.0, &portable.0, 1e-11, "matmul");
        assert_close(&simd.1, &portable.1, 1e-11, "matmul_transpose");
        assert_close(&simd.2, &portable.2, 1e-11, "transpose_matmul");
        // And against the naive oracle.
        assert_close(&simd.0, &a.matmul_naive(&b), 1e-11, "matmul vs naive");
        assert_close(
            &simd.1,
            &a.matmul_transpose_naive(&bt),
            1e-11,
            "matmul_transpose vs naive",
        );
        assert_close(
            &simd.2,
            &at.transpose_matmul_naive(&b),
            1e-11,
            "transpose_matmul vs naive",
        );
    }
}

#[test]
fn syrk_matches_general_product_on_ragged_shapes() {
    let _guard = serial();
    for &(r, c, _) in SHAPES {
        let a = mat(r, c, r * 13 + c);
        let syrk = a.transpose_matmul_self();
        let general = a.transpose_matmul_naive(&a);
        assert_close(&syrk, &general, 1e-11, "transpose_matmul_self");
        for i in 0..c {
            for j in 0..c {
                assert_eq!(syrk[(i, j)], syrk[(j, i)], "exact symmetry ({i},{j})");
            }
        }
        let portable = with_portable(|| a.transpose_matmul_self());
        assert_close(&syrk, &portable, 1e-11, "syrk dispatch paths");
    }
}

#[test]
fn cholesky_pipeline_matches_between_dispatch_paths() {
    let _guard = serial();
    // Factorization (packed SYRK trailing update), batched solves (FMA
    // sweeps) and both inverses, vs their portable counterparts.
    for &n in &[1, 2, 5, 13, 48, 61, 130] {
        let a = spd(n, n);
        let rhs = mat(n, 9, n + 2);
        let simd_chol = Cholesky::decompose(&a).expect("SPD");
        let simd_solve = simd_chol.solve_matrix(&rhs);
        let simd_inv = simd_chol.inverse();
        let simd_sym = simd_chol.symmetric_inverse();
        let (portable_solve, portable_inv, portable_sym) = with_portable(|| {
            let c = Cholesky::decompose(&a).expect("SPD");
            (c.solve_matrix(&rhs), c.inverse(), c.symmetric_inverse())
        });
        assert_close(&simd_solve, &portable_solve, 1e-9, "solve_matrix");
        assert_close(&simd_inv, &portable_inv, 1e-8, "inverse");
        assert_close(&simd_sym, &portable_sym, 1e-8, "symmetric_inverse");
        // dpotri vs dense sweeps, elementwise, on the SIMD path.
        assert_close(&simd_sym, &simd_inv, 1e-8, "symmetric vs full inverse");
    }
}

#[test]
fn sq_exp_apply_matches_between_dispatch_paths() {
    let _guard = serial();
    // The fused squared-exponential pass: AVX2 polynomial exp vs the portable
    // scalar `f64::exp` loop, over rows spanning zero distance, moderate
    // distances and underflow, at widths exercising the vector tail.
    for n in [1, 2, 3, 4, 5, 7, 8, 9, 31, 64, 130] {
        let sf2 = 2.3;
        let q_norm = 1.1;
        let x_norms: Vec<f64> = (0..n).map(|j| ((j * 37) % 19) as f64 * 0.21).collect();
        let dots: Vec<f64> = (0..n)
            .map(|j| {
                if j % 11 == 5 {
                    -400.0 // d2 far past the exp underflow threshold
                } else if j % 7 == 3 {
                    0.5 * (q_norm + x_norms[j]) // exact zero distance
                } else {
                    0.4 * (q_norm + x_norms[j]) - 0.13 * j as f64
                }
            })
            .collect();
        let mut simd = dots.clone();
        nnbo_linalg::sq_exp_apply(&mut simd, &x_norms, q_norm, sf2);
        let portable = with_portable(|| {
            let mut row = dots.clone();
            nnbo_linalg::sq_exp_apply(&mut row, &x_norms, q_norm, sf2);
            row
        });
        for (j, (a, b)) in simd.iter().zip(portable.iter()).enumerate() {
            assert!(
                (a - b).abs() <= 1e-13 * (1.0 + b.abs()),
                "width {n}, lane {j}: {a} vs {b}"
            );
            assert!(*a >= 0.0 && *a <= sf2, "width {n}, lane {j}: range {a}");
        }
    }
}

#[test]
fn batched_gp_prediction_buffers_match_between_dispatch_paths() {
    let _guard = serial();
    // End-to-end through the prediction-path linalg: transpose_into +
    // solve_lower_matrix_in_place must equal the allocating composition on
    // both paths.
    for &n in &[3, 17, 40] {
        let a = spd(n, n + 5);
        let chol = Cholesky::decompose(&a).expect("SPD");
        let k_star = mat(9, n, n + 1); // Q×N
        let run = || {
            let mut v = Matrix::zeros(0, 0);
            k_star.transpose_into(&mut v);
            chol.solve_lower_matrix_in_place(&mut v);
            v
        };
        let composed = run();
        let reference = chol.solve_lower_matrix(&k_star.transpose());
        assert_eq!(
            composed.as_slice(),
            reference.as_slice(),
            "in-place pipeline differs from allocating pipeline"
        );
        let portable = with_portable(run);
        assert_close(&composed, &portable, 1e-9, "solve pipeline dispatch paths");
    }
}

#[test]
fn reported_isa_is_consistent_with_forcing() {
    let _guard = serial();
    let auto = nnbo_linalg::kernel_isa();
    assert!(auto == "avx2+fma" || auto == "portable");
    let forced = with_portable(nnbo_linalg::kernel_isa);
    assert_eq!(forced, "portable");
    assert_eq!(nnbo_linalg::kernel_isa(), auto);
}
