//! Property-based tests for the linear-algebra substrate.

use nnbo_linalg::{dot, squared_distance, Cholesky, Lu, Matrix, Standardizer};
use proptest::prelude::*;

/// Strategy: a random square matrix of dimension 1..=6 with entries in [-5, 5].
fn square_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim).prop_flat_map(|n| {
        prop::collection::vec(-5.0..5.0_f64, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data))
    })
}

/// Strategy: a random vector of a given length with entries in [-5, 5].
fn vector(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0..5.0_f64, len)
}

/// Builds a symmetric positive-definite matrix as `B Bᵀ + n·I` from a random `B`.
fn make_spd(b: &Matrix) -> Matrix {
    let mut a = b.matmul_transpose(b);
    a.add_diag(b.nrows() as f64 + 1.0);
    a
}

/// Strategy: a random rectangular matrix with dimensions 1..=max_dim.
fn rect_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-5.0..5.0_f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in square_matrix(6)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn blocked_matmul_agrees_with_naive(a in rect_matrix(20, 12), b in rect_matrix(12, 16)) {
        // Shapes must chain: rebuild b with matching inner dimension.
        let k = a.ncols();
        let b = Matrix::from_vec(k, b.ncols(), (0..k * b.ncols()).map(|i| b.as_slice()[i % b.as_slice().len()]).collect());
        let blocked = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-10, "blocked {x} vs naive {y}");
        }
    }

    #[test]
    fn blocked_matmul_transpose_agrees_with_naive(a in rect_matrix(16, 10), b in rect_matrix(14, 10)) {
        let k = a.ncols();
        let b = Matrix::from_vec(b.nrows(), k, (0..b.nrows() * k).map(|i| b.as_slice()[i % b.as_slice().len()]).collect());
        let blocked = a.matmul_transpose(&b);
        let naive = a.matmul_transpose_naive(&b);
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn blocked_transpose_matmul_agrees_with_naive(a in rect_matrix(14, 9), b in rect_matrix(14, 11)) {
        let r = a.nrows();
        let b = Matrix::from_vec(r, b.ncols(), (0..r * b.ncols()).map(|i| b.as_slice()[i % b.as_slice().len()]).collect());
        let blocked = a.transpose_matmul(&b);
        let naive = a.transpose_matmul_naive(&b);
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn blocked_cholesky_agrees_with_reference(b in square_matrix(6)) {
        let a = make_spd(&b);
        let blocked = Cholesky::decompose(&a).unwrap();
        let reference = Cholesky::decompose_reference(&a).unwrap();
        for (x, y) in blocked.factor().as_slice().iter().zip(reference.factor().as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn append_row_agrees_with_fresh_factorization(b in square_matrix(6), border in vector(6), d in 0.5..4.0_f64) {
        let a = make_spd(&b);
        let n = a.nrows();
        // Bordered SPD matrix: scale the border down and lift the diagonal so
        // positive definiteness is preserved.
        let border: Vec<f64> = border[..n].iter().map(|v| v * 0.1).collect();
        let diag = d + n as f64 + 1.0;
        let mut big = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..n {
                big[(i, j)] = a[(i, j)];
            }
            big[(n, i)] = border[i];
            big[(i, n)] = border[i];
        }
        big[(n, n)] = diag;
        let mut row = border.clone();
        row.push(diag);
        let mut incremental = Cholesky::decompose(&a).unwrap();
        incremental.append_row(&row).unwrap();
        let fresh = Cholesky::decompose_reference(&big).unwrap();
        for (x, y) in incremental.factor().as_slice().iter().zip(fresh.factor().as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-10, "incremental {x} vs fresh {y}");
        }
    }

    #[test]
    fn rank_one_update_agrees_with_fresh_factorization(b in square_matrix(6), v in vector(6)) {
        let a = make_spd(&b);
        let n = a.nrows();
        let v = &v[..n];
        let mut bumped = a.clone();
        for i in 0..n {
            for j in 0..n {
                bumped[(i, j)] += v[i] * v[j];
            }
        }
        let mut updated = Cholesky::decompose(&a).unwrap();
        updated.rank_one_update(v);
        let fresh = Cholesky::decompose_reference(&bumped).unwrap();
        for (x, y) in updated.factor().as_slice().iter().zip(fresh.factor().as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-10, "updated {x} vs fresh {y}");
        }
    }

    #[test]
    fn batched_triangular_solve_matches_per_column(b in square_matrix(5), rhs in vector(20)) {
        let a = make_spd(&b);
        let n = a.nrows();
        let cols = rhs.len() / n;
        let rhs_mat = Matrix::from_vec(n, cols, rhs[..n * cols].to_vec());
        let chol = Cholesky::decompose(&a).unwrap();
        let y = chol.solve_lower_matrix(&rhs_mat);
        let x = chol.solve_matrix(&rhs_mat);
        for j in 0..rhs_mat.ncols() {
            let col = rhs_mat.col(j);
            let y_ref = chol.solve_lower(&col);
            let x_ref = chol.solve_vec(&col);
            for i in 0..n {
                prop_assert_eq!(y[(i, j)], y_ref[i]);
                prop_assert_eq!(x[(i, j)], x_ref[i]);
            }
        }
    }

    #[test]
    fn matmul_identity_is_noop(m in square_matrix(6)) {
        let id = Matrix::identity(m.nrows());
        let prod = m.matmul(&id);
        for (a, b) in prod.as_slice().iter().zip(m.as_slice().iter()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_transpose_consistency(m in square_matrix(5)) {
        let explicit = m.matmul(&m.transpose());
        let fused = m.matmul_transpose(&m);
        for (a, b) in explicit.as_slice().iter().zip(fused.as_slice().iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_reconstructs_spd(b in square_matrix(6)) {
        let a = make_spd(&b);
        let chol = Cholesky::decompose(&a).unwrap();
        let l = chol.factor();
        let rec = l.matmul(&l.transpose());
        for (x, y) in rec.as_slice().iter().zip(a.as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-8 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn cholesky_solve_residual_is_small(b in square_matrix(5)) {
        let a = make_spd(&b);
        let n = a.nrows();
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.37).collect();
        let chol = Cholesky::decompose(&a).unwrap();
        let x = chol.solve_vec(&rhs);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(rhs.iter()) {
            prop_assert!((ri - bi).abs() < 1e-7);
        }
    }

    #[test]
    fn symmetric_inverse_agrees_with_dense_sweep_inverse(b in square_matrix(6)) {
        let a = make_spd(&b);
        let chol = Cholesky::decompose(&a).unwrap();
        let dense = chol.inverse();
        let sym = chol.symmetric_inverse();
        for (x, y) in sym.as_slice().iter().zip(dense.as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-8 * (1.0 + y.abs()), "{x} vs {y}");
        }
        // Exactly symmetric by construction.
        let n = a.nrows();
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(sym[(i, j)], sym[(j, i)]);
            }
        }
    }

    #[test]
    fn cholesky_and_lu_logdet_agree(b in square_matrix(5)) {
        let a = make_spd(&b);
        let chol = Cholesky::decompose(&a).unwrap();
        let lu = Lu::decompose(&a).unwrap();
        let ld_lu = lu.log_det().unwrap();
        prop_assert!((chol.log_det() - ld_lu).abs() < 1e-7 * (1.0 + ld_lu.abs()));
    }

    #[test]
    fn lu_solve_residual_is_small(m in square_matrix(5)) {
        // Make the system comfortably non-singular by boosting the diagonal.
        let mut a = m.clone();
        a.add_diag(12.0);
        let n = a.nrows();
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let lu = Lu::decompose(&a).unwrap();
        let x = lu.solve_vec(&rhs);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(rhs.iter()) {
            prop_assert!((ri - bi).abs() < 1e-7);
        }
    }

    #[test]
    fn dot_is_symmetric(v in vector(8), w in vector(8)) {
        prop_assert!((dot(&v, &w) - dot(&w, &v)).abs() < 1e-10);
    }

    #[test]
    fn squared_distance_is_nonnegative_and_symmetric(v in vector(6), w in vector(6)) {
        let d = squared_distance(&v, &w);
        prop_assert!(d >= 0.0);
        prop_assert!((d - squared_distance(&w, &v)).abs() < 1e-10);
        prop_assert!(squared_distance(&v, &v) < 1e-20);
    }

    #[test]
    fn standardizer_roundtrip(v in prop::collection::vec(-100.0..100.0_f64, 2..32)) {
        let s = Standardizer::fit(&v);
        for &x in &v {
            prop_assert!((s.inverse(s.transform(x)) - x).abs() < 1e-9 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn sq_exp_apply_matches_the_scalar_kernel_formula(
        dots in prop::collection::vec(-40.0..40.0_f64, 1..40),
        norm_seeds in prop::collection::vec(0.0..30.0_f64, 40),
        q_norm in 0.0..30.0_f64,
        sf2 in 0.05..10.0_f64,
    ) {
        // Whatever dispatch path is active, the fused pass must agree with
        // the plain norm-expansion + f64::exp loop, stay within (0, sf2], and
        // clamp negative distances (cancellation) to the sf2 peak.
        let x_norms = &norm_seeds[..dots.len()];
        let mut row = dots.clone();
        nnbo_linalg::sq_exp_apply(&mut row, x_norms, q_norm, sf2);
        for ((&v, &raw), &xn) in row.iter().zip(dots.iter()).zip(x_norms.iter()) {
            let d2 = (q_norm + xn - 2.0 * raw).max(0.0);
            let reference = sf2 * (-0.5 * d2).exp();
            prop_assert!((v - reference).abs() <= 1e-12 * (1.0 + reference), "{v} vs {reference}");
            prop_assert!(v > 0.0 && v <= sf2 * (1.0 + 1e-15));
        }
    }
}
