//! Runtime selection between the portable scalar kernels and the packed-panel
//! SIMD micro-kernels.
//!
//! Every blocked kernel in this crate funnels through one dispatch point,
//! [`simd_active`].  The decision combines three inputs:
//!
//! 1. **Hardware** — `is_x86_feature_detected!("avx2")` + `fma`, probed once
//!    per process and cached.  On non-x86_64 targets this is always `false`.
//! 2. **Environment** — setting `NNBO_PORTABLE_KERNELS=1` (read once) forces
//!    the portable path regardless of hardware, which is how CI exercises the
//!    fallback kernels on AVX2-capable runners.
//! 3. **Programmatic override** — [`force_portable_kernels`] toggles the same
//!    forcing at runtime, which is how benchmarks time the scalar and SIMD
//!    paths against each other inside one process.
//!
//! The dispatch never changes *what* is computed, only which instruction
//! sequence computes it; both paths satisfy the same tolerance-based
//! equivalence properties against the naive reference kernels.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Name of the environment variable that forces the portable kernels.
pub const PORTABLE_ENV: &str = "NNBO_PORTABLE_KERNELS";

/// Runtime override set by [`force_portable_kernels`].
static FORCE_PORTABLE: AtomicBool = AtomicBool::new(false);

/// Process-wide facts probed once: (env forces portable, hardware has AVX2+FMA).
static PROBED: OnceLock<(bool, bool)> = OnceLock::new();

fn probe() -> (bool, bool) {
    *PROBED.get_or_init(|| {
        let env_portable = std::env::var(PORTABLE_ENV).is_ok_and(|v| v != "0" && !v.is_empty());
        #[cfg(target_arch = "x86_64")]
        let hw = std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma");
        #[cfg(not(target_arch = "x86_64"))]
        let hw = false;
        (env_portable, hw)
    })
}

/// Forces (`true`) or stops forcing (`false`) the portable scalar kernels.
///
/// Intended for benchmarks and tests that want to compare both code paths in
/// one process; production code should leave the automatic dispatch alone.
/// The environment override (`NNBO_PORTABLE_KERNELS=1`) is independent and
/// cannot be cancelled programmatically, so a test run forced portable from
/// the outside stays portable.
pub fn force_portable_kernels(force: bool) {
    FORCE_PORTABLE.store(force, Ordering::Relaxed);
}

/// `true` when the packed-panel AVX2+FMA micro-kernels are in use.
pub(crate) fn simd_active() -> bool {
    let (env_portable, hw) = probe();
    hw && !env_portable && !FORCE_PORTABLE.load(Ordering::Relaxed)
}

/// Human-readable name of the kernel path the dispatch currently selects:
/// `"avx2+fma"` or `"portable"`.  Benchmark emitters record this alongside
/// their timings so results from differently-equipped machines are
/// distinguishable.
pub fn kernel_isa() -> &'static str {
    if simd_active() {
        "avx2+fma"
    } else {
        "portable"
    }
}

// The dispatch override is process global, so its behaviour is tested in
// `tests/simd_dispatch.rs` (its own serialized binary) rather than here —
// flipping it inside the unit-test binary would race the bit-identity
// assertions of the kernel and Cholesky unit tests.
