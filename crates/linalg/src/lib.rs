//! Dense linear algebra substrate for the `nnbo` workspace.
//!
//! The Gaussian-process models and the neural-network feature maps of the paper
//! only need dense, moderate-size linear algebra: matrix products, Cholesky and LU
//! factorizations, triangular solves and log-determinants.  This crate implements
//! those primitives from scratch on top of a row-major [`Matrix`] type so that the
//! workspace has no external numeric dependencies.
//!
//! # Kernel architecture: portable blocks + packed-panel SIMD
//!
//! The compute kernels are layered in three tiers, glued together by one
//! runtime dispatch point:
//!
//! 1. **Naive references** (`matmul_naive`, `decompose_reference`, …) — the
//!    textbook loops, kept as the oracle for property tests and the baseline
//!    for benchmarks.  Never used on the hot path.
//! 2. **Portable blocked kernels** (`kernels` module) — cache-blocked,
//!    4-wide-unrolled scalar loops that run on any architecture.  These are
//!    the fallback the dispatch selects when the CPU lacks AVX2/FMA or when
//!    `NNBO_PORTABLE_KERNELS=1` / [`force_portable_kernels`] forces them.
//! 3. **Packed-panel micro-kernels** (`packed` module) — operands are packed
//!    once per block sweep into contiguous `4-row × 8-column` panel layouts
//!    and driven by explicit AVX2+FMA micro-kernels
//!    (`core::arch::x86_64`).  One packed GEMM engine serves all three
//!    product orientations (`A·B`, `A·Bᵀ`, `Aᵀ·B`), a SYRK driver serves the
//!    symmetric products (Gram/normal matrices, the Cholesky trailing
//!    update, the dpotri-style symmetric inverse), and elementwise FMA
//!    helpers serve the batched triangular sweeps.
//!
//! The dispatch (`dispatch` module) probes the CPU once per process with
//! `is_x86_feature_detected!` and can be overridden by environment variable
//! or programmatically; all `unsafe` is confined to `#[target_feature]`
//! functions inside `packed`, reachable only after that probe has confirmed
//! the required features.  [`kernel_isa`] reports which path is active so
//! benchmark artifacts can record it.
//!
//! # Example
//!
//! ```
//! use nnbo_linalg::{Matrix, Cholesky};
//!
//! # fn main() -> Result<(), nnbo_linalg::LinalgError> {
//! // A small symmetric positive-definite system A x = b.
//! let a = Matrix::from_rows(&[
//!     vec![4.0, 1.0, 0.0],
//!     vec![1.0, 3.0, 1.0],
//!     vec![0.0, 1.0, 2.0],
//! ]);
//! let b = vec![1.0, 2.0, 3.0];
//! let chol = Cholesky::decompose(&a)?;
//! let x = chol.solve_vec(&b);
//! let r = a.matvec(&x);
//! assert!((r[0] - b[0]).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cholesky;
mod dispatch;
mod error;
mod kernels;
mod lu;
mod matrix;
mod packed;
mod parallel;
mod stats;
mod vector;

pub use cholesky::Cholesky;
pub use dispatch::{force_portable_kernels, kernel_isa, PORTABLE_ENV};
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use stats::{mean, sample_std, standardize, Standardizer};
pub use vector::{
    add, add_scaled, add_scaled_product, dot, fused_dot, norm2, scale, sq_exp_apply,
    squared_distance, sub, weighted_squared_distance,
};
