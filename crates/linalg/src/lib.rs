//! Dense linear algebra substrate for the `nnbo` workspace.
//!
//! The Gaussian-process models and the neural-network feature maps of the paper
//! only need dense, moderate-size linear algebra: matrix products, Cholesky and LU
//! factorizations, triangular solves and log-determinants.  This crate implements
//! those primitives from scratch on top of a row-major [`Matrix`] type so that the
//! workspace has no external numeric dependencies.
//!
//! # Example
//!
//! ```
//! use nnbo_linalg::{Matrix, Cholesky};
//!
//! # fn main() -> Result<(), nnbo_linalg::LinalgError> {
//! // A small symmetric positive-definite system A x = b.
//! let a = Matrix::from_rows(&[
//!     vec![4.0, 1.0, 0.0],
//!     vec![1.0, 3.0, 1.0],
//!     vec![0.0, 1.0, 2.0],
//! ]);
//! let b = vec![1.0, 2.0, 3.0];
//! let chol = Cholesky::decompose(&a)?;
//! let x = chol.solve_vec(&b);
//! let r = a.matvec(&x);
//! assert!((r[0] - b[0]).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cholesky;
mod error;
mod kernels;
mod lu;
mod matrix;
mod parallel;
mod stats;
mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use stats::{mean, sample_std, standardize, Standardizer};
pub use vector::{
    add, add_scaled, dot, norm2, scale, squared_distance, sub, weighted_squared_distance,
};
