//! Work splitting for the blocked kernels, on the process-wide worker pool.
//!
//! The kernels in this crate parallelise by partitioning the *output* rows into
//! contiguous bands and submitting each band as one task of a scoped batch on
//! [`nnbo_pool::WorkerPool::global`] (the same pool `nnbo-core` trains
//! ensembles on and `nnbo-serve` multiplexes sessions over, so the process's
//! thread count is bounded once, not per call site).  Each band is a disjoint
//! `&mut [f64]` slice of the output buffer, so no synchronisation is needed,
//! and because every band computes exactly what the sequential loop would, the
//! results are bit-for-bit identical to a single-threaded run.

/// Upper bound on band-level fan-out (beyond this the kernels are
/// memory-bound).
const MAX_THREADS: usize = 8;

/// Number of parallel bands to use for a kernel touching `rows` output rows
/// with roughly `flops` floating-point operations in total.
///
/// Returns 1 (sequential) for small problems where batch-submission overhead
/// would dominate.
pub(crate) fn plan_threads(rows: usize, flops: usize) -> usize {
    // Submitting a scoped batch costs on the order of microseconds per task;
    // only fan out once there are a few milliseconds of arithmetic to share.
    const MIN_FLOPS: usize = 4 << 20;
    const MIN_ROWS_PER_THREAD: usize = 8;
    if flops < MIN_FLOPS {
        return 1;
    }
    let participants = nnbo_pool::WorkerPool::global().participants();
    participants
        .min(MAX_THREADS)
        .min(rows / MIN_ROWS_PER_THREAD)
        .max(1)
}

/// Runs `body(first_row, band)` over contiguous row bands of `data`
/// (`rows × cols`, row-major), as one scoped batch of `threads` tasks on the
/// global worker pool.
///
/// `body` must compute each row independently of the rest of `data`; every
/// invocation sees the absolute index of its first row plus the mutable band
/// slice.  With `threads <= 1` the body runs inline on the whole buffer.
pub(crate) fn for_each_row_band<F>(
    data: &mut [f64],
    rows: usize,
    cols: usize,
    threads: usize,
    body: F,
) where
    F: Fn(usize, &mut [f64]) + Sync,
{
    debug_assert_eq!(data.len(), rows * cols);
    if threads <= 1 || rows == 0 {
        body(0, data);
        return;
    }
    let threads = threads.min(rows);
    let band_rows = rows.div_ceil(threads);
    let body = &body;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(threads);
    let mut rest = data;
    let mut first_row = 0;
    while first_row < rows {
        let take = band_rows.min(rows - first_row);
        let (band, tail) = rest.split_at_mut(take * cols);
        rest = tail;
        let start = first_row;
        tasks.push(Box::new(move || body(start, band)));
        first_row += take;
    }
    nnbo_pool::WorkerPool::global().run_batch(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cover_every_row_exactly_once() {
        let rows = 13;
        let cols = 3;
        let mut data = vec![0.0; rows * cols];
        for_each_row_band(&mut data, rows, cols, 4, |first_row, band| {
            for (r, row) in band.chunks_exact_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (first_row + r) as f64 + 1.0;
                }
            }
        });
        for (i, chunk) in data.chunks_exact(cols).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as f64 + 1.0), "row {i}");
        }
    }

    #[test]
    fn sequential_fallback_matches() {
        let body = |first_row: usize, band: &mut [f64]| {
            for (r, row) in band.chunks_exact_mut(3).enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v += ((first_row + r) * 3 + c) as f64;
                }
            }
        };
        let mut a = vec![1.0; 12];
        let mut b = vec![1.0; 12];
        for_each_row_band(&mut a, 4, 3, 1, body);
        for_each_row_band(&mut b, 4, 3, 3, body);
        assert_eq!(a, b);
    }

    #[test]
    fn small_problems_stay_sequential() {
        assert_eq!(plan_threads(1000, 1000), 1);
        assert!(plan_threads(1000, 64 << 20) >= 1);
        assert_eq!(plan_threads(4, usize::MAX), 1);
    }
}
