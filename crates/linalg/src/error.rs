//! Error type shared by the factorization routines.

use std::error::Error;
use std::fmt;

/// Error produced by the linear-algebra routines of this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// A matrix had incompatible or unexpected dimensions.
    DimensionMismatch {
        /// Description of the operation that failed.
        context: &'static str,
        /// Dimensions that were supplied, formatted as `rows x cols` pairs.
        details: String,
    },
    /// A Cholesky factorization was requested on a matrix that is not positive definite.
    NotPositiveDefinite {
        /// Index of the pivot where the factorization broke down.
        pivot: usize,
        /// Value of the offending pivot.
        value: f64,
    },
    /// An LU factorization met a (numerically) singular pivot.
    Singular {
        /// Index of the singular pivot.
        pivot: usize,
    },
    /// A routine that requires a square matrix received a rectangular one.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A computation produced non-finite values (overflow through a collapsed
    /// pivot, NaN propagation from degenerate input).
    NonFinite {
        /// Description of the operation that produced the values.
        context: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context, details } => {
                write!(f, "dimension mismatch in {context}: {details}")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite (pivot {pivot} has value {value:e})"
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "expected a square matrix, got {rows}x{cols}")
            }
            LinalgError::NonFinite { context } => {
                write!(f, "{context} produced non-finite values")
            }
        }
    }
}

impl Error for LinalgError {}
