//! Small statistical helpers (means, standard deviations, standardisation).
//!
//! The surrogate models standardise their training targets so that the neural
//! network and the GP hyper-parameter optimizers work on O(1) quantities regardless
//! of the raw figure-of-merit scale (gains in dB, currents in µA, ...).

use serde::{Deserialize, Serialize};

/// Arithmetic mean of a slice (`0.0` for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (denominator `n - 1`); returns `0.0` for fewer than two
/// values.
pub fn sample_std(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Standardises `values` to zero mean and unit standard deviation, returning the
/// transformed values together with the fitted [`Standardizer`].
pub fn standardize(values: &[f64]) -> (Vec<f64>, Standardizer) {
    let s = Standardizer::fit(values);
    (values.iter().map(|&v| s.transform(v)).collect(), s)
}

/// An affine transform `y ↦ (y - mean) / std` fitted from data.
///
/// The inverse transform maps surrogate predictions back to the original units.
/// A degenerate (constant) data set gets `std = 1` so the transform stays invertible.
///
/// # Example
///
/// ```
/// use nnbo_linalg::Standardizer;
///
/// let s = Standardizer::fit(&[10.0, 20.0, 30.0]);
/// let z = s.transform(20.0);
/// assert!(z.abs() < 1e-12);
/// assert!((s.inverse(z) - 20.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: f64,
    std: f64,
}

impl Standardizer {
    /// Fits the transform to the given values.
    pub fn fit(values: &[f64]) -> Self {
        let m = mean(values);
        let mut s = sample_std(values);
        if s <= 0.0 || !s.is_finite() {
            s = 1.0;
        }
        Standardizer { mean: m, std: s }
    }

    /// Identity transform (mean 0, std 1).
    pub fn identity() -> Self {
        Standardizer {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// Fitted mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Fitted standard deviation (never zero).
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Applies the forward transform.
    pub fn transform(&self, value: f64) -> f64 {
        (value - self.mean) / self.std
    }

    /// Applies the inverse transform.
    pub fn inverse(&self, value: f64) -> f64 {
        value * self.std + self.mean
    }

    /// Rescales a variance from standardised units back to original units.
    pub fn inverse_variance(&self, variance: f64) -> f64 {
        variance * self.std * self.std
    }
}

impl Default for Standardizer {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(sample_std(&[5.0]), 0.0);
        assert!((sample_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn standardize_roundtrip() {
        let data = vec![1.0, 5.0, 9.0, -3.0];
        let (z, s) = standardize(&data);
        assert!(mean(&z).abs() < 1e-12);
        for (orig, transformed) in data.iter().zip(z.iter()) {
            assert!((s.inverse(*transformed) - orig).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_data_keeps_unit_std() {
        let s = Standardizer::fit(&[3.0, 3.0, 3.0]);
        assert_eq!(s.std(), 1.0);
        assert_eq!(s.transform(3.0), 0.0);
    }

    #[test]
    fn variance_rescaling() {
        let s = Standardizer::fit(&[0.0, 10.0]);
        let var_std_units = 2.0;
        assert!((s.inverse_variance(var_std_units) - 2.0 * s.std() * s.std()).abs() < 1e-12);
    }
}
