//! LU factorization with partial pivoting.

use serde::{Deserialize, Serialize};

use crate::{LinalgError, Matrix};

/// LU factorization with partial pivoting: `P A = L U`.
///
/// Used for general (not necessarily symmetric) systems such as the MNA matrices of
/// the circuit simulator's DC solver, and as an independent cross-check of the
/// Cholesky log-determinant.
///
/// # Example
///
/// ```
/// use nnbo_linalg::{Lu, Matrix};
///
/// # fn main() -> Result<(), nnbo_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![0.0, 2.0], vec![1.0, 1.0]]);
/// let lu = Lu::decompose(&a)?;
/// let x = lu.solve_vec(&[2.0, 2.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lu {
    /// Combined storage: strictly-lower part holds L (unit diagonal implied), upper
    /// triangle holds U.
    lu: Matrix,
    /// Row permutation applied to A.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used for the determinant.
    perm_sign: f64,
}

impl Lu {
    /// Computes the factorization of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input and
    /// [`LinalgError::Singular`] when no usable pivot exists in some column.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: pick the largest |entry| in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < f64::EPSILON * 1e-2 || !pivot_val.is_finite() {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_vec dimension mismatch");
        // Apply permutation, then forward then backward substitution.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for k in 0..i {
                sum -= self.lu[(i, k)] * y[k];
            }
            y[i] = sum;
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Panics
    ///
    /// Panics if `B.nrows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(b.nrows(), n, "solve_matrix dimension mismatch");
        let mut out = Matrix::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let x = self.solve_vec(&b.col(j));
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// Explicit inverse (use sparingly; prefer the solves).
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Natural log of the determinant.
    ///
    /// Returns `None` when the determinant is not strictly positive (the log is then
    /// undefined over the reals), which callers such as the GP likelihood treat as a
    /// failed evaluation.
    pub fn log_det(&self) -> Option<f64> {
        let d = self.det();
        if d > 0.0 {
            Some(d.ln())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_general_system() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ]);
        let b = vec![8.0, -11.0, -3.0];
        let lu = Lu::decompose(&a).unwrap();
        let x = lu.solve_vec(&b);
        // Known solution x = (2, 3, -1).
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let lu = Lu::decompose(&a).unwrap();
        let x = lu.solve_vec(&[3.0, 5.0]);
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_triangular_matrix() {
        let a = Matrix::from_rows(&[
            vec![2.0, 5.0, 1.0],
            vec![0.0, 3.0, 7.0],
            vec![0.0, 0.0, 4.0],
        ]);
        let lu = Lu::decompose(&a).unwrap();
        assert!((lu.det() - 24.0).abs() < 1e-10);
        assert!((lu.log_det().unwrap() - 24.0_f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            Lu::decompose(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rectangular_matrix_is_rejected() {
        let a = Matrix::zeros(3, 2);
        assert!(matches!(
            Lu::decompose(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn inverse_matches_identity() {
        let a = Matrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]);
        let lu = Lu::decompose(&a).unwrap();
        let inv = lu.inverse();
        let prod = a.matmul(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn negative_determinant_has_no_log() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let lu = Lu::decompose(&a).unwrap();
        assert!(lu.log_det().is_none());
    }
}
