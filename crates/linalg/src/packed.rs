//! Packed-panel SIMD micro-kernel engine (AVX2 + FMA).
//!
//! The blocked scalar kernels in [`crate::kernels`] are latency-limited: their
//! 4-wide register tiles keep a few scalar FMA chains in flight but leave the
//! vector units idle.  This module supplies the throughput path selected by
//! [`crate::dispatch`]:
//!
//! * **Packing** — operand panels are copied once per block sweep into
//!   contiguous buffers laid out exactly as the micro-kernel consumes them
//!   (`MR`-row panels of A with `k` fastest-varying, `NR`-column panels of B
//!   with `k` slowest), so the innermost loop runs on unit-stride loads
//!   regardless of the logical orientation (`A·B`, `A·Bᵀ`, `Aᵀ·B`) of the
//!   product.  Ragged edges are zero-padded to the full panel width, which is
//!   exact for accumulation and keeps the micro-kernel branch-free.
//! * **Micro-kernel** — one `MR × NR = 4 × 8` register tile: eight 256-bit
//!   accumulators updated with broadcast/FMA per `k` step.  The only `unsafe`
//!   in the crate lives in these `#[target_feature]` functions; every caller
//!   reaches them through a safe wrapper that has checked the CPU features via
//!   the dispatch point.
//! * **Drivers** — [`gemm`] (all three product orientations via [`Op`] views),
//!   [`syrk_lower`] (symmetric rank-k products touching only the lower
//!   triangle, for Gram/normal matrices and the Cholesky trailing update), and
//!   the elementwise FMA helpers the batched triangular sweeps use.
//!
//! Arithmetic note: per output element the accumulation order is fixed by the
//! panel geometry alone, so results are identical across thread counts; they
//! differ from the scalar path in rounding only (different summation order),
//! which the property tests bound against the naive reference kernels.

use crate::parallel::{for_each_row_band, plan_threads};

/// Rows per A panel / micro-tile.
pub(crate) const MR: usize = 4;
/// Columns per B panel / micro-tile.
pub(crate) const NR: usize = 8;
/// `k`-dimension block: one A panel (`MR × KC`) stays in L1 across a sweep.
const KC: usize = 256;

/// A borrowed view of one product operand in "logical rows × k" orientation.
///
/// `at(r, kk)` is element `kk` of logical row `r`.  The two layouts cover all
/// three blocked products: `A·B` reads A as [`Op::rows`] and B as [`Op::cols`]
/// (columns of B are the logical rows of `Bᵀ`), `A·Bᵀ` reads both as
/// [`Op::rows`], `Aᵀ·B` reads both as [`Op::cols`].
#[derive(Clone, Copy)]
pub(crate) struct Op<'a> {
    data: &'a [f64],
    stride: usize,
    transposed: bool,
}

impl<'a> Op<'a> {
    /// Row-major `rows × k` storage: element `(r, kk)` at `data[r*k + kk]`.
    pub(crate) fn rows(data: &'a [f64], k: usize) -> Self {
        Op {
            data,
            stride: k,
            transposed: false,
        }
    }

    /// Transposed storage: element `(r, kk)` at `data[kk*stride + r]`.
    pub(crate) fn cols(data: &'a [f64], stride: usize) -> Self {
        Op {
            data,
            stride,
            transposed: true,
        }
    }

    #[inline(always)]
    fn at(&self, r: usize, kk: usize) -> f64 {
        if self.transposed {
            self.data[kk * self.stride + r]
        } else {
            self.data[r * self.stride + kk]
        }
    }
}

/// B packed per `k`-block: `ceil(n/NR)` panels per block, each panel storing
/// `kc × NR` values with `k` slowest (`panel[kk*NR + jj]`), zero-padded past
/// `n`.
struct PackedB {
    buf: Vec<f64>,
    /// Per `k`-block: `(k0, kc_len, offset of the block's first panel)`.
    blocks: Vec<(usize, usize, usize)>,
    panels: usize,
}

impl PackedB {
    fn new(b: &Op, n: usize, k: usize) -> Self {
        let panels = n.div_ceil(NR);
        let mut blocks = Vec::with_capacity(k.div_ceil(KC));
        let mut buf = Vec::with_capacity(panels * k * NR);
        let mut k0 = 0;
        while k0 < k {
            let kc = KC.min(k - k0);
            blocks.push((k0, kc, buf.len()));
            for jp in 0..panels {
                let j0 = jp * NR;
                let width = NR.min(n - j0);
                for kk in 0..kc {
                    for jj in 0..NR {
                        buf.push(if jj < width {
                            b.at(j0 + jj, k0 + kk)
                        } else {
                            0.0
                        });
                    }
                }
            }
            k0 += kc;
        }
        PackedB {
            buf,
            blocks,
            panels,
        }
    }

    /// The `kc × NR` slice of panel `jp` within block `blk`.
    #[inline]
    fn panel(&self, blk: usize, jp: usize) -> &[f64] {
        let (_, kc, off) = self.blocks[blk];
        let start = off + jp * kc * NR;
        &self.buf[start..start + kc * NR]
    }
}

/// Packs rows `i0..i0+mr` of `a` over `k0..k0+kc` into `out[kk*MR + ii]`,
/// zero-padding rows past `mr`.
fn pack_a_panel(a: &Op, i0: usize, mr: usize, k0: usize, kc: usize, out: &mut [f64]) {
    debug_assert!(out.len() >= kc * MR);
    for kk in 0..kc {
        for ii in 0..MR {
            out[kk * MR + ii] = if ii < mr { a.at(i0 + ii, k0 + kk) } else { 0.0 };
        }
    }
}

/// The 4×8 AVX2+FMA micro-kernel: `tile[ii*NR + jj] = Σ_kk ap[kk*MR+ii] ·
/// bp[kk*NR+jj]`.
///
/// # Safety
///
/// The caller must have verified AVX2 and FMA support (the dispatch point
/// guarantees this before any packed driver runs).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_kernel_4x8(ap: &[f64], bp: &[f64], kc: usize, tile: &mut [f64; MR * NR]) {
    use core::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let mut acc = [_mm256_setzero_pd(); 8];
    let a_ptr = ap.as_ptr();
    let b_ptr = bp.as_ptr();
    for kk in 0..kc {
        let b0 = _mm256_loadu_pd(b_ptr.add(kk * NR));
        let b1 = _mm256_loadu_pd(b_ptr.add(kk * NR + 4));
        for ii in 0..MR {
            let ai = _mm256_broadcast_sd(&*a_ptr.add(kk * MR + ii));
            acc[2 * ii] = _mm256_fmadd_pd(ai, b0, acc[2 * ii]);
            acc[2 * ii + 1] = _mm256_fmadd_pd(ai, b1, acc[2 * ii + 1]);
        }
    }
    for ii in 0..MR {
        _mm256_storeu_pd(tile.as_mut_ptr().add(ii * NR), acc[2 * ii]);
        _mm256_storeu_pd(tile.as_mut_ptr().add(ii * NR + 4), acc[2 * ii + 1]);
    }
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn micro_kernel_4x8(ap: &[f64], bp: &[f64], kc: usize, tile: &mut [f64; MR * NR]) {
    // Unreachable in practice: the dispatch point never selects the packed
    // path off x86_64.  Kept as a correct portable body so the crate still
    // compiles everywhere.
    tile.fill(0.0);
    for kk in 0..kc {
        for ii in 0..MR {
            let av = ap[kk * MR + ii];
            for jj in 0..NR {
                tile[ii * NR + jj] += av * bp[kk * NR + jj];
            }
        }
    }
}

/// `out[m×n] = a · b` through the packed panels, parallel over output-row
/// bands.  `a` and `b` are logical views (see [`Op`]); `out` is overwritten.
pub(crate) fn gemm(a: Op, b: Op, m: usize, k: usize, n: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let packed_b = PackedB::new(&b, n, k);
    let threads = plan_threads(m, 2 * m * k * n);
    for_each_row_band(out, m, n, threads, |first_row, band| {
        gemm_band(&a, &packed_b, first_row, band.len() / n, n, band);
    });
}

fn gemm_band(a: &Op, packed_b: &PackedB, first_row: usize, rows: usize, n: usize, out: &mut [f64]) {
    let mut apanel = [0.0_f64; KC * MR];
    let mut tile = [0.0_f64; MR * NR];
    for (blk, &(k0, kc, _)) in packed_b.blocks.iter().enumerate() {
        let mut i0 = 0;
        while i0 < rows {
            let mr = MR.min(rows - i0);
            pack_a_panel(a, first_row + i0, mr, k0, kc, &mut apanel);
            for jp in 0..packed_b.panels {
                let j0 = jp * NR;
                let width = NR.min(n - j0);
                // Safety: the dispatch point verified AVX2+FMA before
                // selecting the packed drivers.
                unsafe { micro_kernel_4x8(&apanel, packed_b.panel(blk, jp), kc, &mut tile) };
                for ii in 0..mr {
                    let orow = &mut out[(i0 + ii) * n + j0..(i0 + ii) * n + j0 + width];
                    for (o, t) in orow.iter_mut().zip(tile[ii * NR..].iter()) {
                        *o += t;
                    }
                }
            }
            i0 += mr;
        }
    }
}

/// Accumulates the lower triangle of the symmetric product `S = P·Pᵀ`
/// (`t × t`, `P` given as a logical `t × k` view) into `out`:
/// `out[i*stride + col0 + j]` gains `±S[i][j]` for `j ≤ i`.
///
/// With `subtract = true` this is the Cholesky trailing update
/// `A22 -= L21·L21ᵀ`; with `false` it builds Gram/normal matrices
/// (callers zero the lower triangle first and mirror afterwards).
pub(crate) fn syrk_lower(
    p: Op,
    t: usize,
    k: usize,
    out: &mut [f64],
    stride: usize,
    col0: usize,
    subtract: bool,
) {
    if t == 0 || k == 0 {
        return;
    }
    let packed_b = PackedB::new(&p, t, k);
    let threads = plan_threads(t, t * t * k);
    // Bands are split at panel boundaries so every `MR`-row micro-tile stays
    // on one thread.
    let panels = t.div_ceil(MR);
    let band_panels = panels.div_ceil(threads.max(1));
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    let mut rest = out;
    let mut row0 = 0;
    let mut consumed = 0;
    let mut p0 = 0;
    while p0 < panels {
        let pend = (p0 + band_panels).min(panels);
        let rows_end = (pend * MR).min(t);
        let take = rows_end * stride - consumed;
        let (band, tail) = rest.split_at_mut(take);
        rest = tail;
        consumed += take;
        let first_row = row0;
        let packed_b = &packed_b;
        let p = &p;
        let mut work = move || {
            syrk_band(
                p,
                packed_b,
                first_row,
                rows_end - first_row,
                t,
                band,
                stride,
                col0,
                subtract,
            );
        };
        if threads > 1 {
            tasks.push(Box::new(work));
        } else {
            work();
        }
        row0 = rows_end;
        p0 = pend;
    }
    if !tasks.is_empty() {
        nnbo_pool::WorkerPool::global().run_batch(tasks);
    }
}

#[allow(clippy::too_many_arguments)]
fn syrk_band(
    p: &Op,
    packed_b: &PackedB,
    first_row: usize,
    rows: usize,
    t: usize,
    out: &mut [f64],
    stride: usize,
    col0: usize,
    subtract: bool,
) {
    let mut apanel = [0.0_f64; KC * MR];
    let mut tile = [0.0_f64; MR * NR];
    for (blk, &(k0, kc, _)) in packed_b.blocks.iter().enumerate() {
        let mut i0 = 0;
        while i0 < rows {
            let mr = MR.min(rows - i0);
            let top_row = first_row + i0 + mr - 1;
            pack_a_panel(p, first_row + i0, mr, k0, kc, &mut apanel);
            // Only panels that intersect the lower triangle of this tile row.
            for jp in 0..=(top_row / NR).min(packed_b.panels - 1) {
                let j0 = jp * NR;
                // Safety: dispatch verified AVX2+FMA (see `gemm_band`).
                unsafe { micro_kernel_4x8(&apanel, packed_b.panel(blk, jp), kc, &mut tile) };
                for ii in 0..mr {
                    let row = first_row + i0 + ii;
                    let last = row.min(t - 1).min(j0 + NR - 1);
                    if last < j0 {
                        continue;
                    }
                    let base = (i0 + ii) * stride + col0;
                    let orow = &mut out[base + j0..base + last + 1];
                    if subtract {
                        for (o, v) in orow.iter_mut().zip(tile[ii * NR..].iter()) {
                            *o -= v;
                        }
                    } else {
                        for (o, v) in orow.iter_mut().zip(tile[ii * NR..].iter()) {
                            *o += v;
                        }
                    }
                }
            }
            i0 += mr;
        }
    }
}

// ---------------------------------------------------------------------------
// Elementwise FMA helpers for the triangular sweeps and the fused fit kernels.
// ---------------------------------------------------------------------------

/// `dst[j] -= c * src[j]` with single-rounding FMA semantics per element.
///
/// The arithmetic applied to element `j` is independent of the slice width
/// (vector body and scalar tail both fuse), so a column of a batched
/// triangular solve gets bit-identical treatment whether it is solved alone
/// or as part of a wide right-hand side.
pub(crate) fn sweep_axpy(c: f64, src: &[f64], dst: &mut [f64]) {
    debug_assert_eq!(src.len(), dst.len());
    if crate::dispatch::simd_active() {
        // Safety: simd_active() implies the CPU supports AVX2+FMA.
        unsafe { sweep_axpy_fma(c, src, dst) };
    } else {
        for (o, v) in dst.iter_mut().zip(src.iter()) {
            *o -= c * v;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sweep_axpy_fma(c: f64, src: &[f64], dst: &mut [f64]) {
    use core::arch::x86_64::*;
    let n = dst.len().min(src.len());
    let cv = _mm256_set1_pd(c);
    let mut j = 0;
    while j + 4 <= n {
        let s = _mm256_loadu_pd(src.as_ptr().add(j));
        let d = _mm256_loadu_pd(dst.as_ptr().add(j));
        _mm256_storeu_pd(dst.as_mut_ptr().add(j), _mm256_fnmadd_pd(cv, s, d));
        j += 4;
    }
    while j < n {
        // Same fused semantics as the vector body (compiles to vfnmadd here).
        dst[j] = (-c).mul_add(src[j], dst[j]);
        j += 1;
    }
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn sweep_axpy_fma(c: f64, src: &[f64], dst: &mut [f64]) {
    for (o, v) in dst.iter_mut().zip(src.iter()) {
        *o = (-c).mul_add(*v, *o);
    }
}

/// Forward substitution `L y = b` for one vector, in place, with the same
/// per-element semantics as [`sweep_axpy`] on either dispatch path — so the
/// documented equivalence "column `j` of a matrix solve == vector solve of
/// column `j`" holds exactly.  `l` is the row-major factor, `stride` its row
/// length.
pub(crate) fn solve_lower_vec(l: &[f64], n: usize, stride: usize, y: &mut [f64]) {
    if crate::dispatch::simd_active() {
        // Safety: simd_active() implies the CPU supports AVX2+FMA.
        unsafe { solve_lower_vec_fma(l, n, stride, y) };
        return;
    }
    for i in 0..n {
        let mut sum = y[i];
        for k in 0..i {
            let lik = l[i * stride + k];
            if lik == 0.0 {
                continue;
            }
            sum -= lik * y[k];
        }
        y[i] = sum / l[i * stride + i];
    }
}

#[cfg_attr(
    target_arch = "x86_64",
    target_feature(enable = "avx2", enable = "fma")
)]
unsafe fn solve_lower_vec_fma(l: &[f64], n: usize, stride: usize, y: &mut [f64]) {
    for i in 0..n {
        let mut sum = y[i];
        for k in 0..i {
            let lik = l[i * stride + k];
            if lik == 0.0 {
                continue;
            }
            // Single-rounding, same as the vectorised fnmadd of `sweep_axpy`.
            sum = (-lik).mul_add(y[k], sum);
        }
        y[i] = sum / l[i * stride + i];
    }
}

/// Backward substitution `Lᵀ x = y` for one vector, in place; see
/// [`solve_lower_vec`] for the equivalence contract.
pub(crate) fn solve_upper_vec(l: &[f64], n: usize, stride: usize, x: &mut [f64]) {
    if crate::dispatch::simd_active() {
        // Safety: simd_active() implies the CPU supports AVX2+FMA.
        unsafe { solve_upper_vec_fma(l, n, stride, x) };
        return;
    }
    for i in (0..n).rev() {
        let mut sum = x[i];
        for k in (i + 1)..n {
            let lki = l[k * stride + i];
            if lki == 0.0 {
                continue;
            }
            sum -= lki * x[k];
        }
        x[i] = sum / l[i * stride + i];
    }
}

#[cfg_attr(
    target_arch = "x86_64",
    target_feature(enable = "avx2", enable = "fma")
)]
unsafe fn solve_upper_vec_fma(l: &[f64], n: usize, stride: usize, x: &mut [f64]) {
    for i in (0..n).rev() {
        let mut sum = x[i];
        for k in (i + 1)..n {
            let lki = l[k * stride + i];
            if lki == 0.0 {
                continue;
            }
            sum = (-lki).mul_add(x[k], sum);
        }
        x[i] = sum / l[i * stride + i];
    }
}

/// Four-accumulator FMA dot product, dispatched: the portable fallback is the
/// plain ascending-order sum (identical to the pre-SIMD Gram build).
pub(crate) fn fused_dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    if crate::dispatch::simd_active() {
        // Safety: simd_active() implies the CPU supports AVX2+FMA.
        unsafe { fused_dot_fma(a, b) }
    } else {
        a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fused_dot_fma(a: &[f64], b: &[f64]) -> f64 {
    use core::arch::x86_64::*;
    let n = a.len().min(b.len());
    let mut acc = _mm256_setzero_pd();
    let mut j = 0;
    while j + 4 <= n {
        let x = _mm256_loadu_pd(a.as_ptr().add(j));
        let y = _mm256_loadu_pd(b.as_ptr().add(j));
        acc = _mm256_fmadd_pd(x, y, acc);
        j += 4;
    }
    let mut lanes = [0.0_f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    while j < n {
        s = a[j].mul_add(b[j], s);
        j += 1;
    }
    s
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn fused_dot_fma(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

// ---------------------------------------------------------------------------
// Fused squared-exponential apply: the elementwise pass of a cross-kernel
// norm expansion.
// ---------------------------------------------------------------------------

/// `row[j] = sf2 · exp(−½ · max(q_norm + x_norms[j] − 2·row[j], 0))`, in
/// place — the elementwise half of a squared-exponential cross-kernel norm
/// expansion, fused so the GEMM output is turned into kernel values in one
/// dispatched pass.
///
/// The portable fallback is the exact scalar loop (with `f64::exp`) the
/// prediction path used before this kernel existed; the AVX2 path evaluates
/// a degree-13 polynomial `exp` (Cody–Waite range reduction, ≲ 2 ulp over
/// the kernel's `(−∞, 0]` argument range) four lanes at a time, with the
/// ragged tail running the same polynomial in scalar code so a row's values
/// do not depend on how it aligns with the vector width.  `d2 = 0` (the Gram
/// diagonal) yields exactly `sf2` on both paths.
pub(crate) fn sq_exp_apply(row: &mut [f64], x_norms: &[f64], q_norm: f64, sf2: f64) {
    debug_assert_eq!(row.len(), x_norms.len());
    if crate::dispatch::simd_active() {
        // Safety: simd_active() implies the CPU supports AVX2+FMA.
        unsafe { sq_exp_apply_simd(row, x_norms, q_norm, sf2) };
    } else {
        for (v, &xn) in row.iter_mut().zip(x_norms.iter()) {
            let d2 = (q_norm + xn - 2.0 * *v).max(0.0);
            *v = sf2 * (-0.5 * d2).exp();
        }
    }
}

/// log2(e) and the Cody–Waite split of ln(2) used by the polynomial `exp`.
const EXP_LOG2E: f64 = std::f64::consts::LOG2_E;
const EXP_LN2_HI: f64 = 6.931_471_803_691_238e-1;
const EXP_LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// Arguments below this underflow to zero (`exp(-708) ≈ 3e-308` is the last
/// comfortably normal value).
const EXP_UNDERFLOW: f64 = -708.0;
/// Taylor coefficients `1/k!` for `e^r` on `|r| ≤ ln2/2`, highest order
/// first (degree 13: truncation error ≈ 4e-18, far below rounding).
const EXP_POLY: [f64; 14] = [
    1.0 / 6_227_020_800.0, // 1/13!
    1.0 / 479_001_600.0,   // 1/12!
    1.0 / 39_916_800.0,
    1.0 / 3_628_800.0,
    1.0 / 362_880.0,
    1.0 / 40_320.0,
    1.0 / 5_040.0,
    1.0 / 720.0,
    1.0 / 120.0,
    1.0 / 24.0,
    1.0 / 6.0,
    1.0 / 2.0,
    1.0,
    1.0,
];

/// Scalar replica of the vector lanes' polynomial `exp(t)` for `t ≤ 0`: same
/// range reduction, same Horner order, same underflow cutoff — used for the
/// ragged tail of [`sq_exp_apply`]'s SIMD path.
fn exp_poly_scalar(t: f64) -> f64 {
    if t < EXP_UNDERFLOW {
        return 0.0;
    }
    // Round to nearest-even (matching `_mm256_round_pd`; `f64::round` ties
    // away from zero) via the 2^52+2^51 shifter — exact for |x| < 2^51.
    const SHIFTER: f64 = 6_755_399_441_055_744.0;
    let k = (t * EXP_LOG2E + SHIFTER) - SHIFTER;
    let r = (-k).mul_add(EXP_LN2_LO, (-k).mul_add(EXP_LN2_HI, t));
    let mut p = EXP_POLY[0];
    for &c in &EXP_POLY[1..] {
        p = p.mul_add(r, c);
    }
    // 2^k by exponent-bit construction (k ∈ [-1022, 0] here).
    let two_k = f64::from_bits(((k as i64 + 1023) as u64) << 52);
    p * two_k
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sq_exp_apply_simd(row: &mut [f64], x_norms: &[f64], q_norm: f64, sf2: f64) {
    use core::arch::x86_64::*;
    let n = row.len().min(x_norms.len());
    let qn = _mm256_set1_pd(q_norm);
    let sf2v = _mm256_set1_pd(sf2);
    let neg_half = _mm256_set1_pd(-0.5);
    let zero = _mm256_setzero_pd();
    let log2e = _mm256_set1_pd(EXP_LOG2E);
    let ln2_hi = _mm256_set1_pd(EXP_LN2_HI);
    let ln2_lo = _mm256_set1_pd(EXP_LN2_LO);
    let underflow = _mm256_set1_pd(EXP_UNDERFLOW);
    let bias = _mm256_set1_epi64x(1023);
    let mut j = 0;
    while j + 4 <= n {
        let v = _mm256_loadu_pd(row.as_ptr().add(j));
        let xn = _mm256_loadu_pd(x_norms.as_ptr().add(j));
        // d2 = max(qn + xn - 2v, 0);  t = -0.5 * d2  (t ≤ 0).
        let d2 = _mm256_max_pd(
            _mm256_fnmadd_pd(_mm256_set1_pd(2.0), v, _mm256_add_pd(qn, xn)),
            zero,
        );
        let t = _mm256_mul_pd(neg_half, d2);
        // Range reduction: k = round(t·log2e), r = t - k·ln2 (Cody–Waite).
        let k = _mm256_round_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
            _mm256_mul_pd(_mm256_max_pd(t, underflow), log2e),
        );
        let r = _mm256_fnmadd_pd(
            k,
            ln2_lo,
            _mm256_fnmadd_pd(k, ln2_hi, _mm256_max_pd(t, underflow)),
        );
        // Horner over the Taylor coefficients.
        let mut p = _mm256_set1_pd(EXP_POLY[0]);
        for &c in &EXP_POLY[1..] {
            p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(c));
        }
        // 2^k via exponent bits: k is integral in [-1022, 0].
        let ki = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(k));
        let two_k = _mm256_castsi256_pd(_mm256_slli_epi64::<52>(_mm256_add_epi64(ki, bias)));
        let mut e = _mm256_mul_pd(p, two_k);
        // Flush true underflow (t < −708) to zero.
        e = _mm256_andnot_pd(_mm256_cmp_pd::<_CMP_LT_OQ>(t, underflow), e);
        _mm256_storeu_pd(row.as_mut_ptr().add(j), _mm256_mul_pd(sf2v, e));
        j += 4;
    }
    while j < n {
        // Same fused `(qn + xn) − 2v` semantics as the vector body.
        let d2 = (-2.0f64).mul_add(row[j], q_norm + x_norms[j]).max(0.0);
        row[j] = sf2 * exp_poly_scalar(-0.5 * d2);
        j += 1;
    }
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn sq_exp_apply_simd(row: &mut [f64], x_norms: &[f64], q_norm: f64, sf2: f64) {
    for (v, &xn) in row.iter_mut().zip(x_norms.iter()) {
        let d2 = (q_norm + xn - 2.0 * *v).max(0.0);
        *v = sf2 * exp_poly_scalar(-0.5 * d2);
    }
}

/// `acc[d] += scale * x[d] * y[d]`, dispatched; the portable fallback matches
/// the pre-SIMD fused gradient pass exactly.
pub(crate) fn add_scaled_product(acc: &mut [f64], x: &[f64], y: &[f64], scale: f64) {
    debug_assert_eq!(acc.len(), x.len());
    debug_assert_eq!(acc.len(), y.len());
    if crate::dispatch::simd_active() {
        // Safety: simd_active() implies the CPU supports AVX2+FMA.
        unsafe { add_scaled_product_fma(acc, x, y, scale) };
    } else {
        for ((a, &xv), &yv) in acc.iter_mut().zip(x.iter()).zip(y.iter()) {
            *a += scale * xv * yv;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn add_scaled_product_fma(acc: &mut [f64], x: &[f64], y: &[f64], scale: f64) {
    use core::arch::x86_64::*;
    let n = acc.len().min(x.len()).min(y.len());
    let sv = _mm256_set1_pd(scale);
    let mut j = 0;
    while j + 4 <= n {
        let xv = _mm256_loadu_pd(x.as_ptr().add(j));
        let yv = _mm256_loadu_pd(y.as_ptr().add(j));
        let a = _mm256_loadu_pd(acc.as_ptr().add(j));
        _mm256_storeu_pd(
            acc.as_mut_ptr().add(j),
            _mm256_fmadd_pd(_mm256_mul_pd(sv, xv), yv, a),
        );
        j += 4;
    }
    while j < n {
        acc[j] = (scale * x[j]).mul_add(y[j], acc[j]);
        j += 1;
    }
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn add_scaled_product_fma(acc: &mut [f64], x: &[f64], y: &[f64], scale: f64) {
    for ((a, &xv), &yv) in acc.iter_mut().zip(x.iter()).zip(y.iter()) {
        *a = (scale * xv).mul_add(yv, *a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 31 % 17) as f64 - 8.0) * scale)
            .collect()
    }

    #[test]
    fn packed_gemm_matches_reference_in_all_orientations() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (9, 4, 8), (17, 33, 13), (40, 40, 40)] {
            let a = seq(m * k, 0.07);
            let b = seq(k * n, 0.05);
            let mut out = vec![0.0; m * n];
            // A·B: A row-major m×k, B row-major k×n read as columns.
            gemm(Op::rows(&a, k), Op::cols(&b, n), m, k, n, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        acc += a[i * k + kk] * b[kk * n + j];
                    }
                    assert!(
                        (out[i * n + j] - acc).abs() < 1e-10,
                        "A·B ({i},{j}) {m}x{k}x{n}"
                    );
                }
            }
            // A·Bᵀ: B given p×k row-major (p = n).
            let bt = seq(n * k, 0.03);
            gemm(Op::rows(&a, k), Op::rows(&bt, k), m, k, n, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        acc += a[i * k + kk] * bt[j * k + kk];
                    }
                    assert!((out[i * n + j] - acc).abs() < 1e-10, "A·Bᵀ ({i},{j})");
                }
            }
            // Aᵀ·B: A given r×m row-major (r = k).
            let at = seq(k * m, 0.02);
            gemm(Op::cols(&at, m), Op::cols(&b, n), m, k, n, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        acc += at[kk * m + i] * b[kk * n + j];
                    }
                    assert!((out[i * n + j] - acc).abs() < 1e-10, "Aᵀ·B ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn syrk_lower_subtracts_only_the_lower_triangle() {
        let (t, w) = (13, 5);
        let p = seq(t * w, 0.1);
        let stride = t + 3; // wider destination, offset columns
        let col0 = 2;
        let mut out = vec![1.0; t * stride];
        syrk_lower(Op::rows(&p, w), t, w, &mut out, stride, col0, true);
        for i in 0..t {
            for j in 0..t {
                let expect = if j <= i {
                    let mut acc = 0.0;
                    for kk in 0..w {
                        acc += p[i * w + kk] * p[j * w + kk];
                    }
                    1.0 - acc
                } else {
                    1.0
                };
                assert!(
                    (out[i * stride + col0 + j] - expect).abs() < 1e-10,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn sq_exp_apply_matches_scalar_exp_reference() {
        // Whatever path the dispatch selects, the fused pass must agree with
        // the plain `sf2·exp(-d2/2)` loop to tight tolerance, pin the d2 = 0
        // diagonal at exactly sf2, and flush huge distances to zero.
        for n in [0, 1, 3, 4, 5, 8, 17, 33] {
            let sf2 = 1.7;
            let q_norm = 2.25;
            let x_norms: Vec<f64> = (0..n).map(|j| 0.3 + 0.11 * j as f64).collect();
            // Dot products chosen to span d2 from 0 to very large.
            let mut row: Vec<f64> = (0..n)
                .map(|j| 0.5 * (q_norm + x_norms[j]) - 0.05 * (j as f64 - 2.0).powi(3))
                .collect();
            if n > 2 {
                // Force an exact-zero distance (the Gram diagonal case)...
                row[2] = 0.5 * (q_norm + x_norms[2]);
            }
            if n > 3 {
                // ...and a guaranteed-underflow distance.
                row[n - 1] = -1500.0;
            }
            let reference: Vec<f64> = row
                .iter()
                .zip(x_norms.iter())
                .map(|(&v, &xn)| {
                    let d2 = (q_norm + xn - 2.0 * v).max(0.0);
                    sf2 * (-0.5 * d2).exp()
                })
                .collect();
            sq_exp_apply(&mut row, &x_norms, q_norm, sf2);
            for (j, (a, b)) in row.iter().zip(reference.iter()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-13 * (1.0 + b.abs()),
                    "lane {j}: {a} vs {b}"
                );
            }
            if n > 2 {
                assert_eq!(row[2], sf2, "zero distance must give exactly sf2");
            }
            if n > 3 {
                assert_eq!(row[n - 1], 0.0, "underflow must flush to zero");
            }
        }
    }

    #[test]
    fn exp_poly_scalar_is_accurate_over_the_kernel_range() {
        for i in 0..2000 {
            let t = -0.4 * i as f64; // 0 down to -799.6
            let reference = t.exp();
            let got = exp_poly_scalar(t);
            if t < EXP_UNDERFLOW {
                assert_eq!(got, 0.0, "t = {t}");
            } else {
                assert!(
                    (got - reference).abs() <= 1e-14 * reference,
                    "t = {t}: {got} vs {reference}"
                );
            }
        }
        assert_eq!(exp_poly_scalar(0.0), 1.0);
        assert_eq!(exp_poly_scalar(-0.0), 1.0);
    }

    #[test]
    fn elementwise_helpers_match_scalar_reference() {
        for n in [0, 1, 3, 4, 9, 31] {
            let src = seq(n, 0.3);
            let mut dst = seq(n, 0.9);
            let reference: Vec<f64> = dst
                .iter()
                .zip(src.iter())
                .map(|(d, s)| d - 1.7 * s)
                .collect();
            sweep_axpy(1.7, &src, &mut dst);
            for (a, b) in dst.iter().zip(reference.iter()) {
                assert!((a - b).abs() < 1e-12);
            }

            let x = seq(n, 0.2);
            let y = seq(n, 0.4);
            let expect: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
            assert!((fused_dot(&x, &y) - expect).abs() < 1e-10 * (1.0 + expect.abs()));

            let mut acc = seq(n, 1.1);
            let mut acc_ref = acc.clone();
            add_scaled_product(&mut acc, &x, &y, -0.6);
            for ((a, &xv), &yv) in acc_ref.iter_mut().zip(x.iter()).zip(y.iter()) {
                *a += -0.6 * xv * yv;
            }
            for (a, b) in acc.iter().zip(acc_ref.iter()) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
