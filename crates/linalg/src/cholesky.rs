//! Cholesky factorization of symmetric positive-definite matrices.

use serde::{Deserialize, Serialize};

use crate::{LinalgError, Matrix};

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite matrix
/// `A = L Lᵀ`.
///
/// The factorization is the workhorse of both Gaussian-process regression (kernel
/// matrix solves, log-determinants) and the weight-space neural GP (the `M x M`
/// matrix `A = ΦΦᵀ + λI` of eq. 10 in the paper).
///
/// # Example
///
/// ```
/// use nnbo_linalg::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), nnbo_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let chol = Cholesky::decompose(&a)?;
/// assert!((chol.log_det() - (3.0_f64).ln()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cholesky {
    l: Matrix,
}

/// Direction of a batched triangular sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sweep {
    Lower,
    Upper,
}

/// Minimum columns per thread block of a batched triangular solve; below this
/// the gather/scatter traffic outweighs the shared sweep work.
const COL_BLOCK_MIN: usize = 64;

impl Cholesky {
    /// Computes the Cholesky factorization of `a`.
    ///
    /// Only the lower triangle of `a` is read; the matrix is assumed symmetric.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input and
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly positive.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        // Copy the lower triangle; the factorization then runs in place.
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            let (src, dst) = (&a.row(i)[..=i], &mut l.row_mut(i)[..=i]);
            dst.copy_from_slice(src);
        }
        Self::factor_in_place(&mut l)?;
        Ok(Cholesky { l })
    }

    /// Blocked right-looking in-place factorization of the lower triangle of
    /// `l`.
    ///
    /// For each `PANEL`-wide panel the small diagonal block is factored
    /// scalar-style, the sub-panel is solved against it, and the (dominant)
    /// symmetric trailing update runs as a blocked rank-`PANEL` product over
    /// contiguous panel rows — multi-threaded for large trailing blocks.
    fn factor_in_place(l: &mut Matrix) -> Result<(), LinalgError> {
        const PANEL: usize = 48;
        let n = l.nrows();
        let mut kb = 0;
        while kb < n {
            let kend = (kb + PANEL).min(n);
            // 1. Factor the diagonal block (contributions of columns < kb are
            //    already subtracted by earlier trailing updates).
            for i in kb..kend {
                for j in kb..=i {
                    let sum = l[(i, j)]
                        - crate::kernels::dot_unrolled(&l.row(i)[kb..j], &l.row(j)[kb..j]);
                    if i == j {
                        if sum <= 0.0 || !sum.is_finite() {
                            return Err(LinalgError::NotPositiveDefinite {
                                pivot: i,
                                value: sum,
                            });
                        }
                        l[(i, i)] = sum.sqrt();
                    } else {
                        l[(i, j)] = sum / l[(j, j)];
                    }
                }
            }
            // 2. Solve the sub-panel: L21 · L11ᵀ = A21.
            for i in kend..n {
                for j in kb..kend {
                    let sum = l[(i, j)]
                        - crate::kernels::dot_unrolled(&l.row(i)[kb..j], &l.row(j)[kb..j]);
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
            // 3. Trailing update: A22 -= L21 · L21ᵀ (lower triangle only).
            //    The panel is copied into a contiguous scratch buffer so the
            //    row bands below can be updated on independent threads while
            //    sharing read access to it.  On AVX2 hardware the update runs
            //    as a packed SYRK through the micro-kernel engine.
            if kend < n {
                let width = kend - kb;
                let trailing = n - kend;
                let mut panel = vec![0.0; trailing * width];
                for (t, chunk) in panel.chunks_exact_mut(width).enumerate() {
                    chunk.copy_from_slice(&l.row(kend + t)[kb..kend]);
                }
                let cols = l.ncols();
                let tail = &mut l.as_mut_slice()[kend * cols..];
                if crate::dispatch::simd_active() {
                    crate::packed::syrk_lower(
                        crate::packed::Op::rows(&panel, width),
                        trailing,
                        width,
                        tail,
                        cols,
                        kend,
                        true,
                    );
                } else {
                    let threads =
                        crate::parallel::plan_threads(trailing, trailing * trailing * width);
                    crate::parallel::for_each_row_band(
                        tail,
                        trailing,
                        cols,
                        threads,
                        |first, band| {
                            for (t, row) in band.chunks_exact_mut(cols).enumerate() {
                                let i = first + t;
                                let pi = &panel[i * width..(i + 1) * width];
                                crate::kernels::syrk_row_update(
                                    pi,
                                    &panel,
                                    width,
                                    &mut row[kend..kend + i + 1],
                                );
                            }
                        },
                    );
                }
            }
            kb = kend;
        }
        Ok(())
    }

    /// Reference (scalar, single-threaded) factorization, kept for property
    /// tests and benchmarks of the blocked implementation.
    ///
    /// # Errors
    ///
    /// Same contract as [`Cholesky::decompose`].
    pub fn decompose_reference(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite {
                            pivot: i,
                            value: sum,
                        });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Computes the factorization, adding increasing diagonal jitter until it
    /// succeeds.
    ///
    /// The jitter starts at `initial_jitter` and is multiplied by 10 up to
    /// `max_attempts` times.  This is the standard trick for kernel matrices that are
    /// positive definite in exact arithmetic but borderline in floating point.
    ///
    /// # Errors
    ///
    /// Returns the last factorization error if every attempt fails.
    pub fn decompose_with_jitter(
        a: &Matrix,
        initial_jitter: f64,
        max_attempts: usize,
    ) -> Result<(Self, f64), LinalgError> {
        match Self::decompose(a) {
            Ok(c) => Ok((c, 0.0)),
            Err(e) => {
                let mut jitter = initial_jitter;
                let mut last_err = e;
                for _ in 0..max_attempts {
                    let mut aj = a.clone();
                    aj.add_diag(jitter);
                    match Self::decompose(&aj) {
                        Ok(c) => return Ok((c, jitter)),
                        Err(e) => last_err = e,
                    }
                    jitter *= 10.0;
                }
                Err(last_err)
            }
        }
    }

    /// First rung of the canonical recovery ladder (see
    /// [`Cholesky::decompose_recovering`]).
    pub const RECOVERY_JITTER_INITIAL: f64 = 1e-10;

    /// Number of rungs of the canonical recovery ladder: seven ×10 steps span
    /// `1e-10 → 1e-4`, past which a kernel matrix is better treated as broken
    /// than nudged.
    pub const RECOVERY_JITTER_ATTEMPTS: usize = 7;

    /// [`Cholesky::decompose_with_jitter`] on the canonical recovery ladder
    /// (`1e-10 → 1e-4` in ×10 steps) — the escalation every fault-tolerant
    /// caller in the workspace shares, so recovery behaviour is uniform across
    /// GP fits, incremental updates, and inverses.  The returned jitter is the
    /// recovery record: `0.0` means the plain factorization succeeded.
    ///
    /// # Errors
    ///
    /// Returns the last factorization error when even the top rung fails.
    pub fn decompose_recovering(a: &Matrix) -> Result<(Self, f64), LinalgError> {
        Self::decompose_with_jitter(
            a,
            Self::RECOVERY_JITTER_INITIAL,
            Self::RECOVERY_JITTER_ATTEMPTS,
        )
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Borrow of the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_lower dimension mismatch");
        let mut y = b.to_vec();
        crate::packed::solve_lower_vec(self.l.as_slice(), n, self.l.ncols(), &mut y);
        y
    }

    /// Solves `Lᵀ x = y` (backward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != dim()`.
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "solve_upper dimension mismatch");
        let mut x = y.to_vec();
        crate::packed::solve_upper_vec(self.l.as_slice(), n, self.l.ncols(), &mut x);
        x
    }

    /// Solves `A x = b` where `A = L Lᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// Solves `L Y = B` for a full right-hand-side matrix `B` (`n × m`).
    ///
    /// One forward sweep serves all `m` columns simultaneously: every inner
    /// operation is a contiguous row `axpy` of width `m`, which vectorises —
    /// unlike `m` independent [`Cholesky::solve_lower`] calls whose dot
    /// products are serial dependency chains.  Wide right-hand sides are
    /// additionally split into contiguous column blocks solved on scoped
    /// threads (the columns are independent, so the arithmetic per column is
    /// unchanged).  Column `j` of the result is arithmetically identical to
    /// `solve_lower` of column `j` of `B`.
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows() != dim()`.
    pub fn solve_lower_matrix(&self, b: &Matrix) -> Matrix {
        let mut y = b.clone();
        self.sweep_matrix_in_place(&mut y, Sweep::Lower);
        y
    }

    /// [`Cholesky::solve_lower_matrix`] overwriting the right-hand side in
    /// place (no allocation) — the batched-prediction hot path solves
    /// `L V = K*ᵀ` every acquisition scoring round and reuses one buffer for
    /// it.  Column `j` of the result is arithmetically identical to
    /// [`Cholesky::solve_lower`] of column `j`, exactly as for the allocating
    /// variant.
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows() != dim()`.
    pub fn solve_lower_matrix_in_place(&self, b: &mut Matrix) {
        self.sweep_matrix_in_place(b, Sweep::Lower);
    }

    /// Solves `Lᵀ X = Y` for a full right-hand-side matrix `Y` (`n × m`) with
    /// one vectorised backward sweep (see [`Cholesky::solve_lower_matrix`],
    /// including its column-blocked threading for wide right-hand sides).
    ///
    /// # Panics
    ///
    /// Panics if `y.nrows() != dim()`.
    pub fn solve_upper_matrix(&self, y: &Matrix) -> Matrix {
        let mut x = y.clone();
        self.sweep_matrix_in_place(&mut x, Sweep::Upper);
        x
    }

    /// Solves `A X = B` where `A = L Lᵀ`, for all columns of `B` in two
    /// vectorised triangular sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `B.nrows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let mut x = b.clone();
        self.sweep_matrix_in_place(&mut x, Sweep::Lower);
        self.sweep_matrix_in_place(&mut x, Sweep::Upper);
        x
    }

    /// Explicit inverse of the factored matrix (use sparingly; prefer the solves).
    pub fn inverse(&self) -> Matrix {
        let mut out = Matrix::identity(self.dim());
        self.inverse_in_place(&mut out);
        out
    }

    /// Writes `A⁻¹` into a caller-provided buffer, reusing its allocation when
    /// the shape already matches — the NLL gradient of a Gaussian-process fit
    /// needs the dense inverse every Adam iteration, and this keeps that loop
    /// free of `O(N²)` allocations.
    pub fn inverse_into(&self, out: &mut Matrix) {
        let n = self.dim();
        if out.shape() != (n, n) {
            *out = Matrix::identity(n);
        } else {
            let data = out.as_mut_slice();
            data.fill(0.0);
            for i in 0..n {
                data[i * n + i] = 1.0;
            }
        }
        self.inverse_in_place(out);
    }

    fn inverse_in_place(&self, out: &mut Matrix) {
        self.sweep_matrix_in_place(out, Sweep::Lower);
        self.sweep_matrix_in_place(out, Sweep::Upper);
    }

    /// Writes `A⁻¹` into `out` the dpotri way: invert the triangular factor
    /// (`W = L⁻¹`, exploiting that column `j` of `W` is zero above the
    /// diagonal), then form the symmetric product `A⁻¹ = WᵀW` touching only
    /// the lower triangle and mirror it.  Roughly `n³/2` multiplications
    /// versus the `n³` of [`Cholesky::inverse_into`]'s two dense sweeps — the
    /// per-iteration win of a Gaussian-process fit, whose NLL gradient needs
    /// this inverse every Adam step.
    ///
    /// `work` is caller-provided scratch for `W` (resized when needed, like
    /// `out`), so hot loops can keep both buffers across iterations.  The
    /// result is the same matrix as [`Cholesky::inverse_into`] up to rounding
    /// (different operation order; exactly symmetric by construction, which
    /// the dense sweeps only guarantee up to rounding).
    pub fn symmetric_inverse_into(&self, out: &mut Matrix, work: &mut Matrix) {
        let n = self.dim();
        if out.shape() != (n, n) {
            *out = Matrix::zeros(n, n);
        }
        self.triangular_inverse_into(work);
        let data = out.as_mut_slice();
        data.fill(0.0);
        if crate::dispatch::simd_active() {
            // S[i][j] = Σ_k W[k][i]·W[k][j]: columns of W are the logical
            // rows of the SYRK operand.
            crate::packed::syrk_lower(
                crate::packed::Op::cols(work.as_slice(), n),
                n,
                n,
                data,
                n,
                0,
                false,
            );
        } else {
            // Rank-1 accumulation per row of W; row k of W is zero past
            // column k, so this touches ~n³/6 products.
            for k in 0..n {
                let wrow = &work.as_slice()[k * n..k * n + k + 1];
                for i in 0..=k {
                    let wki = wrow[i];
                    if wki == 0.0 {
                        continue;
                    }
                    let orow = &mut data[i * n..i * n + i + 1];
                    for (o, &wkj) in orow.iter_mut().zip(wrow.iter()) {
                        *o += wki * wkj;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                data[j * n + i] = data[i * n + j];
            }
        }
    }

    /// Allocating convenience wrapper around [`Cholesky::symmetric_inverse_into`].
    pub fn symmetric_inverse(&self) -> Matrix {
        let mut out = Matrix::zeros(self.dim(), self.dim());
        let mut work = Matrix::zeros(self.dim(), self.dim());
        self.symmetric_inverse_into(&mut out, &mut work);
        out
    }

    /// Checked variant of [`Cholesky::symmetric_inverse_into`] for
    /// fault-tolerant callers: a factor with a collapsed (denormal) pivot
    /// survives [`Cholesky::decompose`]'s strict-positivity check but
    /// overflows when inverted, and the resulting ±inf/NaN entries would
    /// otherwise poison every downstream gradient.  This scans the output and
    /// reports the overflow as an error instead, leaving the caller free to
    /// refactorize on a jitter rung.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NonFinite`] when the inverse contains
    /// non-finite entries; `out` holds the poisoned inverse in that case and
    /// must not be used.
    pub fn try_symmetric_inverse_into(
        &self,
        out: &mut Matrix,
        work: &mut Matrix,
    ) -> Result<(), LinalgError> {
        self.symmetric_inverse_into(out, work);
        if out.as_slice().iter().all(|v| v.is_finite()) {
            Ok(())
        } else {
            Err(LinalgError::NonFinite {
                context: "symmetric inverse",
            })
        }
    }

    /// Writes the lower-triangular inverse `W = L⁻¹` into `w` (upper triangle
    /// zeroed).  Column `j` of `W` is zero above the diagonal, so the forward
    /// sweep for a block of columns `[jb, jb+nb)` only runs over rows
    /// `i ≥ jb` — `n³/6` multiplications in total, on the same dispatched
    /// row-axpy kernel as the batched solves.
    fn triangular_inverse_into(&self, w: &mut Matrix) {
        let n = self.dim();
        if w.shape() != (n, n) {
            *w = Matrix::zeros(n, n);
        } else {
            w.as_mut_slice().fill(0.0);
        }
        const NB: usize = 64;
        let data = w.as_mut_slice();
        let mut jb = 0;
        while jb < n {
            let nb = NB.min(n - jb);
            for c in 0..nb {
                data[(jb + c) * n + jb + c] = 1.0;
            }
            for i in jb..n {
                let (head, tail) = data.split_at_mut(i * n);
                let wi = &mut tail[jb..jb + nb];
                for k in jb..i {
                    let lik = self.l[(i, k)];
                    if lik == 0.0 {
                        continue;
                    }
                    let wk = &head[k * n + jb..k * n + jb + nb];
                    crate::packed::sweep_axpy(lik, wk, wi);
                }
                let lii = self.l[(i, i)];
                for o in wi.iter_mut() {
                    *o /= lii;
                }
            }
            jb += nb;
        }
    }

    /// Runs one triangular sweep over all columns of `y` in place, fanning
    /// wide right-hand sides out over contiguous column blocks as a scoped
    /// batch on the shared worker pool.  Each block is gathered into a dense thread-local buffer,
    /// swept, and scattered back; since every column's arithmetic is
    /// independent of the others, the result is bit-identical to the
    /// sequential sweep.
    fn sweep_matrix_in_place(&self, y: &mut Matrix, sweep: Sweep) {
        let n = self.dim();
        assert_eq!(y.nrows(), n, "triangular solve dimension mismatch");
        let m = y.ncols();
        let threads = crate::parallel::plan_threads(m, n * n * m / 2);
        self.sweep_matrix_with_threads(y, sweep, threads);
    }

    /// Sweep with an explicit thread count (separated out so tests can force
    /// the banded path on single-core machines).
    fn sweep_matrix_with_threads(&self, y: &mut Matrix, sweep: Sweep, threads: usize) {
        let n = self.dim();
        let m = y.ncols();
        if threads <= 1 || m < 2 * COL_BLOCK_MIN {
            self.sweep_in_place(y.as_mut_slice(), m, sweep);
            return;
        }
        let blocks = threads.min(m / COL_BLOCK_MIN).max(1);
        let block_cols = m.div_ceil(blocks);
        // Gather contiguous column bands into dense thread-local buffers.
        let mut locals: Vec<(usize, Matrix)> = Vec::with_capacity(blocks);
        let mut c0 = 0;
        while c0 < m {
            let bc = block_cols.min(m - c0);
            let mut local = Matrix::zeros(n, bc);
            for i in 0..n {
                local.row_mut(i).copy_from_slice(&y.row(i)[c0..c0 + bc]);
            }
            locals.push((c0, local));
            c0 += bc;
        }
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = locals
            .iter_mut()
            .map(|(_, local)| {
                let cols = local.ncols();
                let data = local.as_mut_slice();
                Box::new(move || self.sweep_in_place(data, cols, sweep))
                    as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        nnbo_pool::WorkerPool::global().run_batch(tasks);
        for (c0, local) in &locals {
            for i in 0..n {
                y.row_mut(i)[*c0..*c0 + local.ncols()].copy_from_slice(local.row(i));
            }
        }
    }

    /// The sequential sweep kernel over a row-major `dim() × m` buffer.
    ///
    /// The row update `yᵢ -= lᵢₖ·yₖ` goes through [`crate::packed::sweep_axpy`],
    /// whose per-element arithmetic does not depend on the row width — so a
    /// column solved alone is bit-identical to the same column solved inside a
    /// wide right-hand side, on either dispatch path.
    fn sweep_in_place(&self, data: &mut [f64], m: usize, sweep: Sweep) {
        let n = self.dim();
        match sweep {
            Sweep::Lower => {
                for i in 0..n {
                    let (head, tail) = data.split_at_mut(i * m);
                    let yi = &mut tail[..m];
                    for k in 0..i {
                        let lik = self.l[(i, k)];
                        if lik == 0.0 {
                            continue;
                        }
                        let yk = &head[k * m..(k + 1) * m];
                        crate::packed::sweep_axpy(lik, yk, yi);
                    }
                    // Divide (not multiply by a reciprocal) to stay bit-identical
                    // with the single-vector solve.
                    let lii = self.l[(i, i)];
                    for o in yi.iter_mut() {
                        *o /= lii;
                    }
                }
            }
            Sweep::Upper => {
                for i in (0..n).rev() {
                    let (head, tail) = data.split_at_mut((i + 1) * m);
                    let xi = &mut head[i * m..];
                    for k in (i + 1)..n {
                        let lki = self.l[(k, i)];
                        if lki == 0.0 {
                            continue;
                        }
                        let xk = &tail[(k - i - 1) * m..(k - i) * m];
                        crate::packed::sweep_axpy(lki, xk, xi);
                    }
                    let lii = self.l[(i, i)];
                    for o in xi.iter_mut() {
                        *o /= lii;
                    }
                }
            }
        }
    }

    /// Log-determinant of the factored matrix: `2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Quadratic form `bᵀ A⁻¹ b` computed via a single triangular solve.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn quadratic_form(&self, b: &[f64]) -> f64 {
        let y = self.solve_lower(b);
        y.iter().map(|v| v * v).sum()
    }

    /// Extends the factorization of `A` to the factorization of the bordered
    /// matrix `[[A, b], [bᵀ, d]]` in `O(n²)` — without refactorizing.
    ///
    /// `row` is the new bordering row `[b₁ … bₙ, d]` (covariances to the
    /// existing points followed by the new diagonal entry).  This is the
    /// update the Bayesian-optimization loop applies when a single observation
    /// is appended to a kernel matrix mid-run: the new factor row is
    /// `w = L⁻¹ b` and the new pivot `√(d − wᵀw)`, versus `O(n³/3)` for a
    /// fresh [`Cholesky::decompose`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when the bordered matrix
    /// is not positive definite (`d − wᵀw ≤ 0`); the factorization is left
    /// unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim() + 1`.
    pub fn append_row(&mut self, row: &[f64]) -> Result<(), LinalgError> {
        let n = self.dim();
        assert_eq!(row.len(), n + 1, "append_row expects dim()+1 entries");
        let w = self.solve_lower(&row[..n]);
        let pivot_sq = row[n] - w.iter().map(|v| v * v).sum::<f64>();
        if pivot_sq <= 0.0 || !pivot_sq.is_finite() {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: n,
                value: pivot_sq,
            });
        }
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            l.row_mut(i)[..=i].copy_from_slice(&self.l.row(i)[..=i]);
        }
        l.row_mut(n)[..n].copy_from_slice(&w);
        l[(n, n)] = pivot_sq.sqrt();
        self.l = l;
        Ok(())
    }

    /// [`Cholesky::append_row`] with the recovery ladder: when the bordered
    /// matrix is not numerically positive definite, the *new diagonal entry*
    /// is bumped by an escalating nugget (`initial_jitter`, ×10 per rung, up
    /// to `max_attempts` rungs) until the border factors.  Only the appended
    /// pivot is perturbed — the existing factorization is exact and stays
    /// untouched, which is what makes this the `O(n²)` analogue of
    /// [`Cholesky::decompose_with_jitter`] for incremental kernel updates.
    ///
    /// Returns the jitter that was applied (`0.0` when the plain append
    /// succeeded) so callers can record the recovery.
    ///
    /// # Errors
    ///
    /// Returns the last [`LinalgError::NotPositiveDefinite`] when every rung
    /// fails; the factorization is left unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim() + 1`.
    pub fn append_row_with_jitter(
        &mut self,
        row: &[f64],
        initial_jitter: f64,
        max_attempts: usize,
    ) -> Result<f64, LinalgError> {
        match self.append_row(row) {
            Ok(()) => Ok(0.0),
            Err(e) => {
                let mut jitter = initial_jitter;
                let mut last_err = e;
                let mut bumped = row.to_vec();
                let d = row.len() - 1;
                for _ in 0..max_attempts {
                    bumped[d] = row[d] + jitter;
                    match self.append_row(&bumped) {
                        Ok(()) => return Ok(jitter),
                        Err(e) => last_err = e,
                    }
                    jitter *= 10.0;
                }
                Err(last_err)
            }
        }
    }

    /// Updates the factorization of `A` to the factorization of `A + v vᵀ` in
    /// `O(n²)` (the classic hyperbolic-rotation rank-1 update).
    ///
    /// This is what the weight-space neural GP needs when one observation is
    /// appended: its normal matrix `ΦΦᵀ + λI` grows by exactly `φ φᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()`.
    pub fn rank_one_update(&mut self, v: &[f64]) {
        let n = self.dim();
        assert_eq!(v.len(), n, "rank_one_update dimension mismatch");
        let mut work = v.to_vec();
        for k in 0..n {
            let lkk = self.l[(k, k)];
            let wk = work[k];
            let r = (lkk * lkk + wk * wk).sqrt();
            let c = r / lkk;
            let s = wk / lkk;
            self.l[(k, k)] = r;
            if k + 1 < n {
                let cols = self.l.ncols();
                let data = self.l.as_mut_slice();
                for i in (k + 1)..n {
                    let lik = data[i * cols + k];
                    let updated = (lik + s * work[i]) / c;
                    data[i * cols + k] = updated;
                    work[i] = c * work[i] - s * updated;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lu;

    fn spd_example() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 1.0],
            vec![0.5, 1.0, 2.0],
        ])
    }

    #[test]
    fn reconstructs_original() {
        let a = spd_example();
        let c = Cholesky::decompose(&a).unwrap();
        let l = c.factor();
        let rec = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_gives_residual_zero() {
        let a = spd_example();
        let c = Cholesky::decompose(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = c.solve_vec(&b);
        let r = a.matvec(&x);
        for i in 0..3 {
            assert!((r[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_matches_lu() {
        let a = spd_example();
        let c = Cholesky::decompose(&a).unwrap();
        let lu = Lu::decompose(&a).unwrap();
        assert!((c.log_det() - lu.log_det().unwrap()).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn jitter_recovers_semi_definite() {
        // Rank-deficient Gram matrix: jitter should make it factorable.
        let v = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let (c, jitter) = Cholesky::decompose_with_jitter(&v, 1e-10, 12).unwrap();
        assert!(jitter > 0.0);
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = spd_example();
        let c = Cholesky::decompose(&a).unwrap();
        let inv = c.inverse();
        let id = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((id[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn blocked_factorization_matches_reference_beyond_one_panel() {
        // 120 > PANEL exercises the panel solve and the trailing update.
        let n = 120;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
            }
            a[(i, i)] += n as f64 * 0.05;
        }
        let blocked = Cholesky::decompose(&a).unwrap();
        let reference = Cholesky::decompose_reference(&a).unwrap();
        let diff = &(blocked.factor().clone()) - reference.factor();
        assert!(diff.max_abs() < 1e-10, "max diff {}", diff.max_abs());
    }

    #[test]
    fn solve_lower_matrix_matches_per_column_solves() {
        let a = spd_example();
        let c = Cholesky::decompose(&a).unwrap();
        let b = Matrix::from_rows(&[
            vec![1.0, -1.0, 0.5, 2.0],
            vec![0.0, 2.0, -0.5, 1.0],
            vec![3.0, 0.1, 0.0, -1.0],
        ]);
        let y = c.solve_lower_matrix(&b);
        let x = c.solve_matrix(&b);
        for j in 0..b.ncols() {
            let col = b.col(j);
            let y_ref = c.solve_lower(&col);
            let x_ref = c.solve_vec(&col);
            for i in 0..3 {
                assert_eq!(y[(i, j)], y_ref[i], "solve_lower mismatch at ({i},{j})");
                assert_eq!(x[(i, j)], x_ref[i], "solve mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn column_banded_sweeps_match_sequential_exactly() {
        // Force the threaded column-block path (the planner would stay
        // sequential at this size and on single-core machines) and check it is
        // bit-identical to the sequential sweep.
        let n = 24;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
            }
            a[(i, i)] += 2.0;
        }
        let c = Cholesky::decompose(&a).unwrap();
        let m = 3 * COL_BLOCK_MIN + 7;
        let mut b = Matrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                b[(i, j)] = ((i * 31 + j * 17) % 23) as f64 / 11.0 - 1.0;
            }
        }
        for sweep in [Sweep::Lower, Sweep::Upper] {
            let mut sequential = b.clone();
            c.sweep_matrix_with_threads(&mut sequential, sweep, 1);
            for threads in [2, 3, 5] {
                let mut banded = b.clone();
                c.sweep_matrix_with_threads(&mut banded, sweep, threads);
                assert_eq!(
                    sequential.as_slice(),
                    banded.as_slice(),
                    "{sweep:?} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn inverse_into_matches_inverse_and_reuses_buffers() {
        let a = spd_example();
        let c = Cholesky::decompose(&a).unwrap();
        let reference = c.inverse();
        // Wrong shape: reallocated.
        let mut out = Matrix::zeros(1, 5);
        c.inverse_into(&mut out);
        assert_eq!(out.as_slice(), reference.as_slice());
        // Right shape with stale contents: overwritten in place.
        let mut stale = Matrix::filled(3, 3, 7.5);
        c.inverse_into(&mut stale);
        assert_eq!(stale.as_slice(), reference.as_slice());
    }

    #[test]
    fn symmetric_inverse_matches_full_inverse_and_is_symmetric() {
        // Large enough to cross the triangular-inverse block width and
        // several SYRK panels.
        let n = 83;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
            }
            a[(i, i)] += 1.5;
        }
        let c = Cholesky::decompose(&a).unwrap();
        let full = c.inverse();
        let mut sym = Matrix::zeros(1, 1);
        let mut work = Matrix::zeros(1, 1);
        c.symmetric_inverse_into(&mut sym, &mut work);
        assert_eq!(sym.shape(), (n, n));
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (sym[(i, j)] - full[(i, j)]).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    sym[(i, j)],
                    full[(i, j)]
                );
                assert_eq!(sym[(i, j)], sym[(j, i)], "exact symmetry at ({i},{j})");
            }
        }
        assert_eq!(c.symmetric_inverse().as_slice(), sym.as_slice());
    }

    #[test]
    fn append_row_matches_fresh_factorization() {
        let a = spd_example();
        let mut c = Cholesky::decompose(&a).unwrap();
        // Border the matrix with one extra row/column.
        let border = [0.3, -0.2, 0.6, 3.0];
        let mut big = Matrix::zeros(4, 4);
        for i in 0..3 {
            for j in 0..3 {
                big[(i, j)] = a[(i, j)];
            }
            big[(3, i)] = border[i];
            big[(i, 3)] = border[i];
        }
        big[(3, 3)] = border[3];
        c.append_row(&border).unwrap();
        let fresh = Cholesky::decompose(&big).unwrap();
        let diff = &(c.factor().clone()) - fresh.factor();
        assert!(diff.max_abs() < 1e-12);
    }

    #[test]
    fn append_row_rejects_indefinite_border_and_keeps_state() {
        let a = spd_example();
        let mut c = Cholesky::decompose(&a).unwrap();
        let before = c.factor().clone();
        // A huge off-diagonal border with a tiny diagonal is not SPD.
        let err = c.append_row(&[10.0, 10.0, 10.0, 0.1]).unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
        assert_eq!(c.factor(), &before);
    }

    #[test]
    fn rank_one_update_matches_fresh_factorization() {
        let a = spd_example();
        let mut c = Cholesky::decompose(&a).unwrap();
        let v = [0.7, -0.4, 1.2];
        let mut bumped = a.clone();
        for i in 0..3 {
            for j in 0..3 {
                bumped[(i, j)] += v[i] * v[j];
            }
        }
        c.rank_one_update(&v);
        let fresh = Cholesky::decompose(&bumped).unwrap();
        let diff = &(c.factor().clone()) - fresh.factor();
        assert!(diff.max_abs() < 1e-12, "max diff {}", diff.max_abs());
    }

    #[test]
    fn decompose_recovering_ladder_spans_documented_range() {
        // A rank-deficient Gram matrix factors somewhere on the ladder, and the
        // recorded jitter stays within the documented 1e-10..=1e-4 span.
        let v = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let (_, jitter) = Cholesky::decompose_recovering(&v).unwrap();
        assert!(jitter >= Cholesky::RECOVERY_JITTER_INITIAL);
        assert!(jitter <= 1e-4);
        // A clean SPD matrix records zero jitter.
        let (_, clean) = Cholesky::decompose_recovering(&spd_example()).unwrap();
        assert_eq!(clean, 0.0);
    }

    #[test]
    fn append_row_with_jitter_recovers_degenerate_border() {
        let a = spd_example();
        let mut c = Cholesky::decompose(&a).unwrap();
        // Border equal to column 0 of A with matching diagonal: the bordered
        // matrix is exactly singular, so the plain append fails but a nugget
        // on the new pivot recovers it.
        let border = [a[(0, 0)], a[(1, 0)], a[(2, 0)], a[(0, 0)]];
        assert!(c.append_row(&border).is_err());
        let jitter = c
            .append_row_with_jitter(&border, 1e-10, 12)
            .expect("ladder recovers the singular border");
        assert!(jitter > 0.0);
        assert_eq!(c.dim(), 4);
        // The recovered factorization matches a fresh factorization of the
        // bordered matrix with the same nugget on the last diagonal entry.
        let mut big = Matrix::zeros(4, 4);
        for i in 0..3 {
            for j in 0..3 {
                big[(i, j)] = a[(i, j)];
            }
            big[(3, i)] = border[i];
            big[(i, 3)] = border[i];
        }
        big[(3, 3)] = border[3] + jitter;
        let fresh = Cholesky::decompose(&big).unwrap();
        let diff = &(c.factor().clone()) - fresh.factor();
        assert!(diff.max_abs() < 1e-10, "max diff {}", diff.max_abs());
    }

    #[test]
    fn append_row_with_jitter_is_plain_append_on_clean_border() {
        let a = spd_example();
        let mut jittered = Cholesky::decompose(&a).unwrap();
        let mut plain = jittered.clone();
        let border = [0.3, -0.2, 0.6, 3.0];
        let applied = jittered.append_row_with_jitter(&border, 1e-10, 7).unwrap();
        plain.append_row(&border).unwrap();
        assert_eq!(applied, 0.0);
        assert_eq!(jittered.factor(), plain.factor());
    }

    #[test]
    fn append_row_with_jitter_gives_up_and_keeps_state() {
        let a = spd_example();
        let mut c = Cholesky::decompose(&a).unwrap();
        let before = c.factor().clone();
        // The off-diagonal border dominates so badly that no bounded nugget on
        // the new pivot can rescue it.
        let err = c
            .append_row_with_jitter(&[10.0, 10.0, 10.0, 0.1], 1e-10, 7)
            .unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
        assert_eq!(c.factor(), &before);
    }

    #[test]
    fn try_symmetric_inverse_reports_overflow() {
        // A subnormal pivot passes decompose's strict-positivity check but
        // overflows to +inf when the inverse squares its reciprocal.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1e-320]]);
        let c = Cholesky::decompose(&a).unwrap();
        let mut out = Matrix::zeros(1, 1);
        let mut work = Matrix::zeros(1, 1);
        let err = c
            .try_symmetric_inverse_into(&mut out, &mut work)
            .unwrap_err();
        assert!(matches!(err, LinalgError::NonFinite { .. }));
        // A healthy factor passes the check and matches the unchecked path.
        let good = Cholesky::decompose(&spd_example()).unwrap();
        good.try_symmetric_inverse_into(&mut out, &mut work)
            .unwrap();
        assert_eq!(out.as_slice(), good.symmetric_inverse().as_slice());
    }

    #[test]
    fn quadratic_form_matches_solve() {
        let a = spd_example();
        let c = Cholesky::decompose(&a).unwrap();
        let b = vec![0.3, 1.0, -0.7];
        let x = c.solve_vec(&b);
        let direct: f64 = b.iter().zip(x.iter()).map(|(u, v)| u * v).sum();
        assert!((c.quadratic_form(&b) - direct).abs() < 1e-10);
    }
}
