//! Cholesky factorization of symmetric positive-definite matrices.

use serde::{Deserialize, Serialize};

use crate::{LinalgError, Matrix};

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite matrix
/// `A = L Lᵀ`.
///
/// The factorization is the workhorse of both Gaussian-process regression (kernel
/// matrix solves, log-determinants) and the weight-space neural GP (the `M x M`
/// matrix `A = ΦΦᵀ + λI` of eq. 10 in the paper).
///
/// # Example
///
/// ```
/// use nnbo_linalg::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), nnbo_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let chol = Cholesky::decompose(&a)?;
/// assert!((chol.log_det() - (3.0_f64).ln()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Computes the Cholesky factorization of `a`.
    ///
    /// Only the lower triangle of `a` is read; the matrix is assumed symmetric.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input and
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly positive.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite {
                            pivot: i,
                            value: sum,
                        });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Computes the factorization, adding increasing diagonal jitter until it
    /// succeeds.
    ///
    /// The jitter starts at `initial_jitter` and is multiplied by 10 up to
    /// `max_attempts` times.  This is the standard trick for kernel matrices that are
    /// positive definite in exact arithmetic but borderline in floating point.
    ///
    /// # Errors
    ///
    /// Returns the last factorization error if every attempt fails.
    pub fn decompose_with_jitter(
        a: &Matrix,
        initial_jitter: f64,
        max_attempts: usize,
    ) -> Result<(Self, f64), LinalgError> {
        match Self::decompose(a) {
            Ok(c) => return Ok((c, 0.0)),
            Err(e) => {
                let mut jitter = initial_jitter;
                let mut last_err = e;
                for _ in 0..max_attempts {
                    let mut aj = a.clone();
                    aj.add_diag(jitter);
                    match Self::decompose(&aj) {
                        Ok(c) => return Ok((c, jitter)),
                        Err(e) => last_err = e,
                    }
                    jitter *= 10.0;
                }
                Err(last_err)
            }
        }
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Borrow of the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_lower dimension mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ x = y` (backward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != dim()`.
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "solve_upper dimension mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solves `A x = b` where `A = L Lᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Panics
    ///
    /// Panics if `B.nrows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(b.nrows(), n, "solve_matrix dimension mismatch");
        let mut out = Matrix::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let col = b.col(j);
            let x = self.solve_vec(&col);
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// Explicit inverse of the factored matrix (use sparingly; prefer the solves).
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Log-determinant of the factored matrix: `2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Quadratic form `bᵀ A⁻¹ b` computed via a single triangular solve.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn quadratic_form(&self, b: &[f64]) -> f64 {
        let y = self.solve_lower(b);
        y.iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lu;

    fn spd_example() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 1.0],
            vec![0.5, 1.0, 2.0],
        ])
    }

    #[test]
    fn reconstructs_original() {
        let a = spd_example();
        let c = Cholesky::decompose(&a).unwrap();
        let l = c.factor();
        let rec = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_gives_residual_zero() {
        let a = spd_example();
        let c = Cholesky::decompose(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = c.solve_vec(&b);
        let r = a.matvec(&x);
        for i in 0..3 {
            assert!((r[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_matches_lu() {
        let a = spd_example();
        let c = Cholesky::decompose(&a).unwrap();
        let lu = Lu::decompose(&a).unwrap();
        assert!((c.log_det() - lu.log_det().unwrap()).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn jitter_recovers_semi_definite() {
        // Rank-deficient Gram matrix: jitter should make it factorable.
        let v = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let (c, jitter) = Cholesky::decompose_with_jitter(&v, 1e-10, 12).unwrap();
        assert!(jitter > 0.0);
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = spd_example();
        let c = Cholesky::decompose(&a).unwrap();
        let inv = c.inverse();
        let id = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((id[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn quadratic_form_matches_solve() {
        let a = spd_example();
        let c = Cholesky::decompose(&a).unwrap();
        let b = vec![0.3, 1.0, -0.7];
        let x = c.solve_vec(&b);
        let direct: f64 = b.iter().zip(x.iter()).map(|(u, v)| u * v).sum();
        assert!((c.quadratic_form(&b) - direct).abs() < 1e-10);
    }
}
