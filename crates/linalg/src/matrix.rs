//! Row-major dense matrix type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::LinalgError;

/// A dense, row-major matrix of `f64` values.
///
/// The type is intentionally simple: it owns a `Vec<f64>` and its shape, and offers
/// the operations needed by the Gaussian-process and neural-network code in the
/// workspace (products, transposes, slicing by rows, elementwise maps).
///
/// # Example
///
/// ```
/// use nnbo_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }

    /// Reuses `self`'s buffer when its capacity suffices (`Vec::clone_from`),
    /// so hot loops that repeatedly `clone_from` a same-shaped matrix — e.g.
    /// the per-iteration `K + σn²I` copy of a GP fit — stay allocation-free.
    /// (The derived impl would fall back to `*self = source.clone()`.)
    fn clone_from(&mut self, source: &Self) {
        self.rows = source.rows;
        self.cols = source.cols;
        self.data.clone_from(&source.data);
    }
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a single-column matrix from a vector.
    pub fn column(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterator over the rows of the matrix.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the main diagonal as an owned vector.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut t);
        t
    }

    /// Transpose written into a caller-provided buffer, reusing its
    /// allocation when the shape already matches (resized otherwise) — the
    /// batched-prediction path transposes the cross-kernel block every call
    /// and this keeps that loop allocation-free.
    pub fn transpose_into(&self, out: &mut Matrix) {
        if out.shape() != (self.cols, self.rows) {
            *out = Matrix::zeros(self.cols, self.rows);
        }
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != ncols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out);
        out
    }

    /// Matrix-vector product `self * v` written into a caller-provided buffer
    /// (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != ncols()` or `out.len() != nrows()`.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols.max(1))) {
            *o = crate::kernels::dot_unrolled(row, v);
        }
    }

    /// Vector-matrix product `vᵀ * self`, returned as a vector of length `ncols()`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != nrows()`.
    pub fn vecmat(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vecmat dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = self.row(i);
            let vi = v[i];
            for (o, r) in out.iter_mut().zip(row.iter()) {
                *o += vi * r;
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Computed by an internal cache-blocked kernel; large shapes
    /// run on scoped threads.  See [`Matrix::matmul_naive`] for the reference
    /// implementation.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self * other` written into a caller-provided output
    /// matrix (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match or `out` has the wrong
    /// shape.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
        crate::kernels::matmul_blocked(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
    }

    /// Reference (unblocked, single-threaded) matrix product, kept for
    /// property tests and benchmarks of the blocked kernel.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop contiguous in both `other` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for (o, b) in out_row.iter_mut().zip(other_row.iter()) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// Product `self * otherᵀ` without materialising the transpose.
    ///
    /// Computed by an internal tiled multi-accumulator kernel;
    /// large shapes run on scoped threads.
    ///
    /// # Panics
    ///
    /// Panics if `self.ncols() != other.ncols()`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_transpose_into(other, &mut out);
        out
    }

    /// Product `self * otherᵀ` written into a caller-provided output matrix
    /// (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `self.ncols() != other.ncols()` or `out` has the wrong shape.
    pub fn matmul_transpose_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_transpose dimension mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_transpose output shape mismatch"
        );
        crate::kernels::matmul_transpose_blocked(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.rows,
            &mut out.data,
        );
    }

    /// Reference (untiled, single-threaded) `self * otherᵀ`, kept for property
    /// tests and benchmarks of the blocked kernel.
    ///
    /// # Panics
    ///
    /// Panics if `self.ncols() != other.ncols()`.
    pub fn matmul_transpose_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_transpose dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a = self.row(i);
            for j in 0..other.rows {
                let b = other.row(j);
                let mut acc = 0.0;
                for (x, y) in a.iter().zip(b.iter()) {
                    acc += x * y;
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Product `selfᵀ * other` without materialising the transpose.
    ///
    /// Computed by an internal k-unrolled kernel; large shapes
    /// run on scoped threads.
    ///
    /// # Panics
    ///
    /// Panics if `self.nrows() != other.nrows()`.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.transpose_matmul_into(other, &mut out);
        out
    }

    /// Product `selfᵀ * other` written into a caller-provided output matrix
    /// (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `self.nrows() != other.nrows()` or `out` has the wrong shape.
    pub fn transpose_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "transpose_matmul dimension mismatch");
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "transpose_matmul output shape mismatch"
        );
        crate::kernels::transpose_matmul_blocked(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
    }

    /// Symmetric normal matrix `selfᵀ * self` (a SYRK in BLAS terms).
    ///
    /// On the SIMD dispatch path only the lower triangle is computed through
    /// the packed micro-kernels and mirrored — the result is exactly
    /// symmetric by construction.  The portable path falls back to the
    /// general blocked product.  This is the `ΦᵀΦ + λI` build of the
    /// weight-space neural GP (eq. 10), executed once per training epoch.
    pub fn transpose_matmul_self(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        self.transpose_matmul_self_into(&mut out);
        out
    }

    /// [`Matrix::transpose_matmul_self`] into a caller-provided buffer
    /// (resized when the shape does not match).
    pub fn transpose_matmul_self_into(&self, out: &mut Matrix) {
        let t = self.cols;
        if out.shape() != (t, t) {
            *out = Matrix::zeros(t, t);
        }
        if crate::dispatch::simd_active() {
            let data = out.as_mut_slice();
            data.fill(0.0);
            crate::packed::syrk_lower(
                crate::packed::Op::cols(&self.data, t),
                t,
                self.rows,
                data,
                t,
                0,
                false,
            );
            for i in 0..t {
                for j in 0..i {
                    data[j * t + i] = data[i * t + j];
                }
            }
        } else {
            crate::kernels::transpose_matmul_blocked(
                &self.data,
                self.rows,
                self.cols,
                &self.data,
                self.cols,
                &mut out.data,
            );
        }
    }

    /// Reference (single-threaded) `selfᵀ * other`, kept for property tests
    /// and benchmarks of the blocked kernel.
    ///
    /// # Panics
    ///
    /// Panics if `self.nrows() != other.nrows()`.
    pub fn transpose_matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "transpose_matmul dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a = self.row(k);
            let b = other.row(k);
            for i in 0..self.cols {
                let aki = a[i];
                if aki == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, bj) in out_row.iter_mut().zip(b.iter()) {
                    *o += aki * bj;
                }
            }
        }
        out
    }

    /// Elementwise map, returning a new matrix.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace<F: Fn(f64) -> f64>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Adds `value` to every diagonal entry in place.
    pub fn add_diag(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Scales every entry in place.
    pub fn scale_inplace(&mut self, factor: f64) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Adds `factor * other` to `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Matrix, factor: f64) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += factor * b;
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (`0.0` for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Returns the trace of a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if the matrix is rectangular.
    pub fn trace(&self) -> Result<f64, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Returns `true` when the matrix is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Stacks matrices vertically.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(top: &Matrix, bottom: &Matrix) -> Matrix {
        assert_eq!(top.cols, bottom.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity(top.data.len() + bottom.data.len());
        data.extend_from_slice(&top.data);
        data.extend_from_slice(&bottom.data);
        Matrix {
            rows: top.rows + bottom.rows,
            cols: top.cols,
            data,
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.map(|x| x * rhs)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>12.6} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace().unwrap(), 3.0);
    }

    #[test]
    fn clone_from_reuses_the_buffer_for_matching_capacity() {
        let source = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut target = Matrix::zeros(2, 2);
        let buffer_before = target.as_slice().as_ptr();
        target.clone_from(&source);
        assert_eq!(target, source);
        assert_eq!(
            target.as_slice().as_ptr(),
            buffer_before,
            "same-capacity clone_from must not reallocate"
        );
        // Shape changes still work (may reallocate).
        let wide = Matrix::filled(1, 7, 2.5);
        target.clone_from(&wide);
        assert_eq!(target, wide);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_and_vecmat() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(m.vecmat(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_transpose_agrees_with_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![2.0, 1.0, 0.0]]);
        assert_eq!(a.matmul_transpose(&b), a.matmul(&b.transpose()));
        assert_eq!(a.transpose_matmul(&a), a.transpose().matmul(&a));
    }

    #[test]
    fn hadamard_and_scaling() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::filled(2, 2, 2.0);
        assert_eq!(
            a.hadamard(&b),
            Matrix::from_rows(&[vec![2.0, 4.0], vec![6.0, 8.0]])
        );
        let mut c = a.clone();
        c.scale_inplace(0.5);
        assert_eq!(c[(1, 1)], 2.0);
        let mut d = a.clone();
        d.add_scaled_inplace(&b, 1.0);
        assert_eq!(d[(0, 0)], 3.0);
    }

    #[test]
    fn add_diag_and_symmetry() {
        let mut m = Matrix::zeros(3, 3);
        m.add_diag(2.5);
        assert_eq!(m.diag(), vec![2.5, 2.5, 2.5]);
        assert!(m.is_symmetric(1e-12));
        m[(0, 1)] = 1.0;
        assert!(!m.is_symmetric(1e-12));
    }

    #[test]
    fn trace_requires_square() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(m.trace(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = Matrix::vstack(&a, &b);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.sum(), -1.0);
    }
}
