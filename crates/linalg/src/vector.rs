//! Small free functions on `&[f64]` vectors.
//!
//! These are used pervasively by the kernels, the neural-network layers and the
//! acquisition optimizers; keeping them as plain slice functions avoids forcing a
//! vector newtype on every caller.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Dot product through the runtime kernel dispatch: a 4-lane FMA reduction on
/// AVX2 hardware, the plain ascending-order sum otherwise.
///
/// Unlike [`dot`], the summation order (and therefore the low bits of the
/// result) depends on which kernel path is active; use it where throughput
/// matters and exact scalar-order reproducibility does not — e.g. the Gram
/// weighted reductions of a Gaussian-process fit.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn fused_dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "fused_dot length mismatch");
    crate::packed::fused_dot(a, b)
}

/// `acc[d] += scale * x[d] * y[d]`, through the runtime kernel dispatch.
///
/// This is the fused update of the per-dimension lengthscale gradient
/// accumulators in a GP fit: one scaled elementwise product folded into an
/// accumulator without materialising the product.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_scaled_product(acc: &mut [f64], x: &[f64], y: &[f64], scale: f64) {
    assert_eq!(acc.len(), x.len(), "add_scaled_product length mismatch");
    assert_eq!(acc.len(), y.len(), "add_scaled_product length mismatch");
    crate::packed::add_scaled_product(acc, x, y, scale);
}

/// Fused squared-exponential apply, through the runtime kernel dispatch:
/// turns one row of a cross-kernel GEMM output into kernel values in place,
///
/// ```text
/// row[j] = sf2 · exp(−½ · max(q_norm + x_norms[j] − 2·row[j], 0))
/// ```
///
/// where `row[j]` holds the dot product `x'_q · x'_j` of lengthscale-scaled
/// points and `q_norm` / `x_norms` their squared norms (the norm expansion
/// `‖a − b‖² = ‖a‖² + ‖b‖² − 2a·b`).  The portable fallback is the exact
/// scalar `f64::exp` loop the prediction path used previously; the AVX2 path
/// runs a ≲ 2 ulp polynomial `exp` four lanes at a time.  A zero distance
/// yields exactly `sf2` on both paths, and distances past the `exp`
/// underflow threshold flush to exactly zero.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sq_exp_apply(row: &mut [f64], x_norms: &[f64], q_norm: f64, sf2: f64) {
    assert_eq!(row.len(), x_norms.len(), "sq_exp_apply length mismatch");
    crate::packed::sq_exp_apply(row, x_norms, q_norm, sf2);
}

/// Elementwise sum `a + b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector addition length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Elementwise difference `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector subtraction length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Scales a slice by a factor, returning a new vector.
pub fn scale(a: &[f64], factor: f64) -> Vec<f64> {
    a.iter().map(|x| x * factor).collect()
}

/// Returns `a + factor * b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_scaled(a: &[f64], b: &[f64], factor: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add_scaled length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| x + factor * y)
        .collect()
}

/// Squared Euclidean distance between two points.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Squared distance weighted per dimension: `Σ_d w_d (a_d - b_d)²`.
///
/// Used for the ARD squared-exponential kernel where `w_d = 1 / l_d²`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn weighted_squared_distance(a: &[f64], b: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "weighted_squared_distance length mismatch"
    );
    assert_eq!(a.len(), weights.len(), "weights length mismatch");
    a.iter()
        .zip(b.iter())
        .zip(weights.iter())
        .map(|((x, y), w)| {
            let d = x - y;
            w * d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn elementwise_ops() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scale(&[1.0, 2.0], 2.0), vec![2.0, 4.0]);
        assert_eq!(add_scaled(&[1.0, 2.0], &[1.0, 1.0], 0.5), vec![1.5, 2.5]);
    }

    #[test]
    fn distances() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(
            weighted_squared_distance(&[0.0, 0.0], &[2.0, 2.0], &[1.0, 0.25]),
            5.0
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
