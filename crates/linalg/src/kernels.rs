//! Cache-blocked, unrolled, optionally multi-threaded matrix kernels.
//!
//! These are the compute hot paths of the whole workspace: every surrogate fit
//! and every batched prediction bottoms out in one of the three products here
//! or in the blocked Cholesky built on top of them.  The kernels work on raw
//! row-major `&[f64]` buffers so both [`crate::Matrix`] and the factorizations
//! can share them without going through the public API.
//!
//! Each blocked product is an entry point of the runtime dispatch (see
//! [`crate::dispatch`]): on AVX2+FMA hardware the call is routed to the
//! packed-panel micro-kernel engine in [`crate::packed`], otherwise the
//! portable scalar implementations below run.  Both paths satisfy the same
//! reference-equivalence properties; they differ only in summation order.
//!
//! Design notes on the portable path:
//!
//! * **Blocking** — the general product tiles over `k` (shared dimension) and
//!   `j` (output columns) so one tile of the right-hand side stays in cache
//!   while a band of output rows streams past it.
//! * **Unrolling** — inner loops process four `k` values (or four independent
//!   accumulators for dot products) per iteration, breaking the floating-point
//!   dependency chain so the CPU can keep several FMAs in flight.
//! * **Threading** — large shapes split their *output rows* into contiguous
//!   bands executed as a scoped batch on the shared `nnbo-pool` worker pool
//!   (see [`crate::parallel`]).
//!   Each output element is always computed by the same sequence of
//!   operations, so results are identical no matter how many threads run.

use crate::packed::Op;
use crate::parallel::{for_each_row_band, plan_threads};

/// `k`-dimension tile size for the general product (8 KiB of one operand row).
const KC: usize = 64;
/// Output-column tile size for the general product.
const JC: usize = 128;
/// Output-column tile for the `A·Bᵀ` kernel (keeps a tile of B rows hot).
const JB: usize = 32;

/// Dot product with four independent accumulators.
///
/// The element order is fixed (pairs summed lane by lane, lanes combined at
/// the end), so the result for a given pair of slices never depends on the
/// shape of the surrounding computation.
pub(crate) fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let mut i = 0;
    while i + 4 <= n {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
        i += 4;
    }
    while i < n {
        s0 += a[i] * b[i];
        i += 1;
    }
    (s0 + s1) + (s2 + s3)
}

/// `out[m×n] = a[m×k] · b[k×n]`, blocked over `k` and `j`, parallel over
/// output-row bands.
pub(crate) fn matmul_blocked(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    if crate::dispatch::simd_active() {
        crate::packed::gemm(Op::rows(a, k), Op::cols(b, n), m, k, n, out);
        return;
    }
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let threads = plan_threads(m, 2 * m * k * n);
    for_each_row_band(out, m, n, threads, |first_row, band| {
        let rows = band.len() / n;
        matmul_band(a, first_row, rows, k, b, n, band);
    });
}

fn matmul_band(
    a: &[f64],
    first_row: usize,
    rows: usize,
    k: usize,
    b: &[f64],
    n: usize,
    out: &mut [f64],
) {
    for kb in (0..k).step_by(KC) {
        let kend = (kb + KC).min(k);
        for jb in (0..n).step_by(JC) {
            let jend = (jb + JC).min(n);
            let width = jend - jb;
            for i in 0..rows {
                let arow = &a[(first_row + i) * k..(first_row + i + 1) * k];
                let orow = &mut out[i * n + jb..i * n + jend];
                let mut kk = kb;
                while kk + 4 <= kend {
                    let a0 = arow[kk];
                    let a1 = arow[kk + 1];
                    let a2 = arow[kk + 2];
                    let a3 = arow[kk + 3];
                    let b0 = &b[kk * n + jb..kk * n + jb + width];
                    let b1 = &b[(kk + 1) * n + jb..(kk + 1) * n + jb + width];
                    let b2 = &b[(kk + 2) * n + jb..(kk + 2) * n + jb + width];
                    let b3 = &b[(kk + 3) * n + jb..(kk + 3) * n + jb + width];
                    for (jj, o) in orow.iter_mut().enumerate() {
                        *o += a0 * b0[jj] + a1 * b1[jj] + a2 * b2[jj] + a3 * b3[jj];
                    }
                    kk += 4;
                }
                while kk < kend {
                    let av = arow[kk];
                    let brow = &b[kk * n + jb..kk * n + jb + width];
                    for (o, bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += av * bv;
                    }
                    kk += 1;
                }
            }
        }
    }
}

/// Four simultaneous dot products of `a` against `b0..b3`.
///
/// The four accumulator chains are independent, so the CPU overlaps their
/// floating-point latencies — the classic register-tile trick for
/// latency-bound `A·Bᵀ` kernels.  Each individual dot accumulates in plain
/// ascending-`k` order, fixed regardless of tile position.
#[inline]
fn dot4(a: &[f64], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) -> (f64, f64, f64, f64) {
    let n = a.len();
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..n {
        let av = a[i];
        s0 += av * b0[i];
        s1 += av * b1[i];
        s2 += av * b2[i];
        s3 += av * b3[i];
    }
    (s0, s1, s2, s3)
}

/// `out[m×p] = a[m×k] · b[p×k]ᵀ` — every output element is a dot product of
/// two contiguous rows.  Tiled over `j` so a stripe of `b` rows stays in
/// cache while `a` rows stream past, with a 4-wide register tile ([`dot4`])
/// inside each stripe; parallel over output-row bands.
///
/// Which code path computes element `(i, j)` depends only on `j`, so a given
/// output row is bit-identical whether it is computed alone or as part of a
/// larger batch.
pub(crate) fn matmul_transpose_blocked(
    a: &[f64],
    m: usize,
    k: usize,
    b: &[f64],
    p: usize,
    out: &mut [f64],
) {
    if m == 0 || p == 0 {
        return;
    }
    if crate::dispatch::simd_active() {
        crate::packed::gemm(Op::rows(a, k), Op::rows(b, k), m, k, p, out);
        return;
    }
    let threads = plan_threads(m, 2 * m * k * p);
    for_each_row_band(out, m, p, threads, |first_row, band| {
        let rows = band.len() / p;
        for jb in (0..p).step_by(JB) {
            let jend = (jb + JB).min(p);
            for i in 0..rows {
                let arow = &a[(first_row + i) * k..(first_row + i + 1) * k];
                let mut j = jb;
                while j + 4 <= jend {
                    let (s0, s1, s2, s3) = dot4(
                        arow,
                        &b[j * k..(j + 1) * k],
                        &b[(j + 1) * k..(j + 2) * k],
                        &b[(j + 2) * k..(j + 3) * k],
                        &b[(j + 3) * k..(j + 4) * k],
                    );
                    band[i * p + j] = s0;
                    band[i * p + j + 1] = s1;
                    band[i * p + j + 2] = s2;
                    band[i * p + j + 3] = s3;
                    j += 4;
                }
                while j < jend {
                    band[i * p + j] = dot_plain(arow, &b[j * k..(j + 1) * k]);
                    j += 1;
                }
            }
        }
    });
}

/// Plain ascending-order dot product — the same accumulation order as each
/// lane of [`dot4`], used for tile tails so the `j → arithmetic` mapping stays
/// independent of tile geometry.
#[inline]
fn dot_plain(a: &[f64], b: &[f64]) -> f64 {
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        s += x * y;
    }
    s
}

/// One row of the symmetric trailing update of the blocked Cholesky:
/// `dst[j] -= pi · panel_j` for `j = 0..dst.len()`, where `panel_j` is row `j`
/// of the contiguous `width`-wide panel.  Uses the 4-wide register tile of
/// [`dot4`] for instruction-level parallelism.
pub(crate) fn syrk_row_update(pi: &[f64], panel: &[f64], width: usize, dst: &mut [f64]) {
    let mut j = 0;
    while j + 4 <= dst.len() {
        let (s0, s1, s2, s3) = dot4(
            pi,
            &panel[j * width..(j + 1) * width],
            &panel[(j + 1) * width..(j + 2) * width],
            &panel[(j + 2) * width..(j + 3) * width],
            &panel[(j + 3) * width..(j + 4) * width],
        );
        dst[j] -= s0;
        dst[j + 1] -= s1;
        dst[j + 2] -= s2;
        dst[j + 3] -= s3;
        j += 4;
    }
    while j < dst.len() {
        dst[j] -= dot_plain(pi, &panel[j * width..(j + 1) * width]);
        j += 1;
    }
}

/// `out[ca×cb] = a[r×ca]ᵀ · b[r×cb]`, unrolled four `k` rows at a time,
/// parallel over output-row bands (columns of `a`).
pub(crate) fn transpose_matmul_blocked(
    a: &[f64],
    r: usize,
    ca: usize,
    b: &[f64],
    cb: usize,
    out: &mut [f64],
) {
    if crate::dispatch::simd_active() {
        crate::packed::gemm(Op::cols(a, ca), Op::cols(b, cb), ca, r, cb, out);
        return;
    }
    out.fill(0.0);
    if ca == 0 || cb == 0 || r == 0 {
        return;
    }
    let threads = plan_threads(ca, 2 * r * ca * cb);
    for_each_row_band(out, ca, cb, threads, |first_col, band| {
        let cols = band.len() / cb;
        let mut kk = 0;
        while kk + 4 <= r {
            let a0 = &a[kk * ca..(kk + 1) * ca];
            let a1 = &a[(kk + 1) * ca..(kk + 2) * ca];
            let a2 = &a[(kk + 2) * ca..(kk + 3) * ca];
            let a3 = &a[(kk + 3) * ca..(kk + 4) * ca];
            let b0 = &b[kk * cb..(kk + 1) * cb];
            let b1 = &b[(kk + 1) * cb..(kk + 2) * cb];
            let b2 = &b[(kk + 2) * cb..(kk + 3) * cb];
            let b3 = &b[(kk + 3) * cb..(kk + 4) * cb];
            for i in 0..cols {
                let c0 = a0[first_col + i];
                let c1 = a1[first_col + i];
                let c2 = a2[first_col + i];
                let c3 = a3[first_col + i];
                let orow = &mut band[i * cb..(i + 1) * cb];
                for (jj, o) in orow.iter_mut().enumerate() {
                    *o += c0 * b0[jj] + c1 * b1[jj] + c2 * b2[jj] + c3 * b3[jj];
                }
            }
            kk += 4;
        }
        while kk < r {
            let arow = &a[kk * ca..(kk + 1) * ca];
            let brow = &b[kk * cb..(kk + 1) * cb];
            for i in 0..cols {
                let c = arow[first_col + i];
                let orow = &mut band[i * cb..(i + 1) * cb];
                for (o, bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += c * bv;
                }
            }
            kk += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_matrix(rows: usize, cols: usize, scale: f64) -> Vec<f64> {
        (0..rows * cols)
            .map(|i| ((i * 37 % 101) as f64 - 50.0) * scale)
            .collect()
    }

    #[test]
    fn dot_unrolled_matches_sequential_sum() {
        for n in [0, 1, 3, 4, 7, 16, 33] {
            let a: Vec<f64> = (0..n).map(|i| i as f64 * 0.3 - 1.0).collect();
            let b: Vec<f64> = (0..n).map(|i| 2.0 - i as f64 * 0.1).collect();
            let reference: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
            assert!((dot_unrolled(&a, &b) - reference).abs() < 1e-12);
        }
    }

    #[test]
    fn blocked_matmul_matches_reference_on_odd_shapes() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (65, 64, 129), (130, 70, 33)] {
            let a = seq_matrix(m, k, 0.01);
            let b = seq_matrix(k, n, 0.02);
            let mut out = vec![0.0; m * n];
            matmul_blocked(&a, m, k, &b, n, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        acc += a[i * k + kk] * b[kk * n + j];
                    }
                    assert!(
                        (out[i * n + j] - acc).abs() < 1e-10,
                        "mismatch at ({i},{j}) for {m}x{k}x{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_transpose_variants_match_reference() {
        let (m, k, p) = (37, 21, 19);
        let a = seq_matrix(m, k, 0.01);
        let b = seq_matrix(p, k, 0.03);
        let mut out = vec![0.0; m * p];
        matmul_transpose_blocked(&a, m, k, &b, p, &mut out);
        for i in 0..m {
            for j in 0..p {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[j * k + kk];
                }
                assert!((out[i * p + j] - acc).abs() < 1e-10);
            }
        }

        let (r, ca, cb) = (23, 11, 17);
        let a = seq_matrix(r, ca, 0.02);
        let b = seq_matrix(r, cb, 0.01);
        let mut out = vec![0.0; ca * cb];
        transpose_matmul_blocked(&a, r, ca, &b, cb, &mut out);
        for i in 0..ca {
            for j in 0..cb {
                let mut acc = 0.0;
                for kk in 0..r {
                    acc += a[kk * ca + i] * b[kk * cb + j];
                }
                assert!((out[i * cb + j] - acc).abs() < 1e-10);
            }
        }
    }
}
