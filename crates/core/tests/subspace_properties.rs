//! Property-based tests of the line-subspace machinery behind
//! `SuggestStrategy::LineSubspace` (the LinEasyBO-style search): exact
//! line-to-cube clipping, direction sampling, and the argmax contract the
//! strategies share.

use nnbo_core::strategy::{
    argmax, line_grid, line_interval, point_on_line, sample_direction, AcquisitionOracle,
    DirectionRule, LineSubspaceConfig, SuggestContext, SuggestStrategy,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Oracle scoring candidates by an analytic function of the point alone.
struct FnOracle<F: Fn(&[f64]) -> f64> {
    f: F,
    scores: Vec<f64>,
}

impl<F: Fn(&[f64]) -> f64> FnOracle<F> {
    fn new(f: F) -> Self {
        FnOracle {
            f,
            scores: Vec::new(),
        }
    }
}

impl<F: Fn(&[f64]) -> f64> AcquisitionOracle for FnOracle<F> {
    fn score(&mut self, candidates: &[Vec<f64>]) -> &[f64] {
        self.scores.clear();
        self.scores.extend(candidates.iter().map(|x| (self.f)(x)));
        &self.scores
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Clipping is exact: the interval always brackets the anchor (`t = 0`)
    /// and every point of the clipped segment — endpoints included — stays
    /// inside the unit cube after the coordinate-wise clamp.
    #[test]
    fn clipped_line_never_escapes_the_cube(
        anchor in prop::collection::vec(0.0f64..1.0, 1..8),
        seed in 0u64..u64::MAX,
        fractions in prop::collection::vec(0.0f64..1.0, 1..16),
    ) {
        let dim = anchor.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let direction = sample_direction(dim, None, DirectionRule::Random, &mut rng);
        let (t_lo, t_hi) = line_interval(&anchor, &direction);
        prop_assert!(t_lo <= 0.0 && t_hi >= 0.0, "[{t_lo}, {t_hi}] misses the anchor");
        for f in fractions {
            let t = t_lo + f * (t_hi - t_lo);
            let p = point_on_line(&anchor, &direction, t);
            prop_assert!(
                p.iter().all(|v| (0.0..=1.0).contains(v)),
                "point escaped at t={t}: {p:?}"
            );
        }
        // The clamp in `point_on_line` only absorbs endpoint rounding slack:
        // strictly inside the interval the raw line already lies in the cube.
        let mid = 0.5 * (t_lo + t_hi);
        for (a, u) in anchor.iter().zip(direction.iter()) {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&(a + mid * u)));
        }
    }

    /// Directions are unit-norm and seeded-deterministic, and both rules
    /// consume exactly the same rng draws, so snapshot/resume bit-identity
    /// cannot depend on whether lengthscales were available.
    #[test]
    fn directions_are_unit_norm_and_rules_share_the_rng_stream(
        dim in 1usize..12,
        seed in 0u64..u64::MAX,
        lengthscales in prop::collection::vec(0.05f64..5.0, 12),
    ) {
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let random = sample_direction(dim, None, DirectionRule::Random, &mut rng_a);
        let weighted = sample_direction(
            dim,
            Some(&lengthscales[..dim]),
            DirectionRule::LengthscaleWeighted,
            &mut rng_b,
        );
        for d in [&random, &weighted] {
            let norm = d.iter().map(|v| v * v).sum::<f64>().sqrt();
            prop_assert!((norm - 1.0).abs() < 1e-12, "norm {norm}");
        }
        // Same seed, same rule, same draw → deterministic.
        let mut rng_c = StdRng::seed_from_u64(seed);
        let again = sample_direction(dim, None, DirectionRule::Random, &mut rng_c);
        prop_assert_eq!(&again, &random);
        // Both rules left the two streams at the same position.
        prop_assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    /// In `D = 1` the clipped line *is* the whole design space, so the line
    /// search degenerates to full-pool scoring over the same candidate set:
    /// the proposal must be exactly the grid argmax.
    #[test]
    fn one_dimensional_line_search_coincides_with_full_pool_scoring(
        anchor in 0.0f64..1.0,
        seed in 0u64..u64::MAX,
        peak in 0.0f64..1.0,
    ) {
        let cfg = LineSubspaceConfig {
            line_points: 33,
            refine_rounds: 0,
            refine_points: 2,
            direction: DirectionRule::Random,
        };
        let anchor = vec![anchor];
        let ctx = SuggestContext {
            dim: 1,
            anchor: &anchor,
            candidate_pool: 0,
            local_candidates: 0,
            lengthscales: None,
        };
        let f = move |x: &[f64]| -(x[0] - peak).powi(2);

        // The proposal, drawing its direction from a seeded rng.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut oracle = FnOracle::new(f);
        let choice = SuggestStrategy::LineSubspace(cfg).propose(&ctx, &mut oracle, &mut rng);

        // Full-pool scoring of the identical candidate set: rebuild the grid
        // from a clone of the same rng stream and take the batch argmax.
        let mut rng2 = StdRng::seed_from_u64(seed);
        let direction = sample_direction(1, None, DirectionRule::Random, &mut rng2);
        let (t_lo, t_hi) = line_interval(&anchor, &direction);
        // One signed direction spans the whole axis from any interior anchor.
        prop_assert!((point_on_line(&anchor, &direction, t_lo)[0] - 0.0).abs() < 1e-12
            || (point_on_line(&anchor, &direction, t_lo)[0] - 1.0).abs() < 1e-12);
        let candidates: Vec<Vec<f64>> = line_grid(t_lo, t_hi, cfg.line_points)
            .iter()
            .map(|&t| point_on_line(&anchor, &direction, t))
            .collect();
        let mut oracle2 = FnOracle::new(f);
        let best = argmax(oracle2.score(&candidates));
        prop_assert_eq!(choice, candidates[best].clone());
    }

    /// The argmax index is invariant under positive-affine transformations of
    /// the scores — acquisition functions are only defined up to monotone
    /// rescaling, so the chosen candidate must not depend on it.
    #[test]
    fn argmax_is_invariant_under_positive_affine_score_shifts(
        scores in prop::collection::vec(-1e3f64..1e3, 1..64),
        scale in 0.5f64..4.0,
        shift in -10.0f64..10.0,
    ) {
        let shifted: Vec<f64> = scores.iter().map(|s| scale * s + shift).collect();
        prop_assert_eq!(argmax(&scores), argmax(&shifted));
    }

    /// The same invariance holds end-to-end through a line-subspace proposal:
    /// rescaling the oracle never changes the proposed point.
    #[test]
    fn line_proposals_are_invariant_under_positive_affine_oracle_shifts(
        anchor in prop::collection::vec(0.05f64..0.95, 1..6),
        seed in 0u64..u64::MAX,
        scale in 0.5f64..4.0,
        shift in -10.0f64..10.0,
    ) {
        let dim = anchor.len();
        let ctx = SuggestContext {
            dim,
            anchor: &anchor,
            candidate_pool: 0,
            local_candidates: 0,
            lengthscales: None,
        };
        let strategy = SuggestStrategy::LineSubspace(LineSubspaceConfig {
            line_points: 17,
            refine_rounds: 2,
            refine_points: 5,
            direction: DirectionRule::Random,
        });
        let f = |x: &[f64]| (3.0 * x[0]).sin() + x.iter().sum::<f64>();
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let mut plain = FnOracle::new(f);
        let mut affine = FnOracle::new(move |x: &[f64]| scale * f(x) + shift);
        let a = strategy.propose(&ctx, &mut plain, &mut rng_a);
        let b = strategy.propose(&ctx, &mut affine, &mut rng_b);
        prop_assert_eq!(a, b);
    }
}
