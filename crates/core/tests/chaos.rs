//! Chaos suite: deterministic fault injection against the Bayesian-optimization
//! loop's resilience layer.
//!
//! A [`FaultPlan`] scripts exactly which evaluation calls fail or time out and
//! which surrogate refits abort; [`FaultyProblem`] and [`ChaosTrainer`] replay
//! the plan with no randomness of their own (the call counters live outside the
//! wrappers so a snapshot can record the exact tape position).  The suite then
//! asserts the loop's robustness invariants: every run completes its budget,
//! never ingests a non-finite value, accounts for every recovery in its
//! `RecoveryLog`, never lets an imputed stand-in win, and is bit-identical to
//! the plain loop when the plan is empty.
//!
//! CI runs this suite under both the vectorised and the
//! `NNBO_PORTABLE_KERNELS=1` dispatch paths.

use std::sync::atomic::{AtomicUsize, Ordering};

use nnbo_core::problems::ConstrainedBranin;
use nnbo_core::{
    BayesOpt, BoConfig, EnsembleConfig, EvalOutcome, Evaluation, FailureAction, FailurePolicy,
    NeuralGpEnsembleTrainer, OptimizationResult, Problem, RefitPolicy, SurrogateTrainer,
};
use rand::rngs::StdRng;

/// A deterministic script of faults to inject into one optimization run.
#[derive(Debug, Clone, Default)]
struct FaultPlan {
    /// 0-based `try_evaluate` call indices that fail (retries consume indices).
    fail_evals: Vec<usize>,
    /// 0-based `try_evaluate` call indices that time out.
    timeout_evals: Vec<usize>,
    /// 0-based `fit_many` call indices that abort.
    fail_fits: Vec<usize>,
}

impl FaultPlan {
    fn is_empty(&self) -> bool {
        self.fail_evals.is_empty() && self.timeout_evals.is_empty() && self.fail_fits.is_empty()
    }
}

/// Replays a [`FaultPlan`]'s evaluation faults over a wrapped problem; the
/// call counter is caller-owned so tests can record and restore the tape
/// position around a snapshot.
struct FaultyProblem<'a, P> {
    inner: P,
    plan: &'a FaultPlan,
    calls: &'a AtomicUsize,
}

impl<P: Problem> Problem for FaultyProblem<'_, P> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        self.inner.evaluate(x)
    }
    fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
        let i = self.calls.fetch_add(1, Ordering::SeqCst);
        if self.plan.fail_evals.contains(&i) {
            EvalOutcome::Failed(format!("chaos: scripted failure at call {i}"))
        } else if self.plan.timeout_evals.contains(&i) {
            EvalOutcome::Timeout
        } else {
            self.inner.try_evaluate(x)
        }
    }
}

/// Replays a [`FaultPlan`]'s refit faults over a wrapped trainer.
struct ChaosTrainer<'a, T> {
    inner: T,
    plan: &'a FaultPlan,
    fits: &'a AtomicUsize,
}

impl<T: SurrogateTrainer> SurrogateTrainer for ChaosTrainer<'_, T> {
    type Model = T::Model;

    fn fit(&self, xs: &[Vec<f64>], ys: &[f64], rng: &mut StdRng) -> Result<Self::Model, String> {
        self.inner.fit(xs, ys, rng)
    }

    fn fit_many(
        &self,
        xs: &[Vec<f64>],
        targets: &[Vec<f64>],
        prev: Option<&[&Self::Model]>,
        rng: &mut StdRng,
    ) -> Result<Vec<Self::Model>, String> {
        let i = self.fits.fetch_add(1, Ordering::SeqCst);
        if self.plan.fail_fits.contains(&i) {
            return Err(format!("chaos: scripted fit failure at refit {i}"));
        }
        self.inner.fit_many(xs, targets, prev, rng)
    }

    fn update(
        &self,
        prev: &Self::Model,
        x: &[f64],
        y: f64,
        rng: &mut StdRng,
    ) -> Option<Result<Self::Model, String>> {
        self.inner.update(prev, x, y, rng)
    }
}

fn chaos_config(seed: u64) -> BoConfig {
    BoConfig::fast(6, 16).with_seed(seed)
}

fn faulty_problem<'a>(
    plan: &'a FaultPlan,
    calls: &'a AtomicUsize,
) -> FaultyProblem<'a, ConstrainedBranin> {
    FaultyProblem {
        inner: ConstrainedBranin::new(),
        plan,
        calls,
    }
}

fn chaos_trainer<'a>(
    plan: &'a FaultPlan,
    fits: &'a AtomicUsize,
) -> ChaosTrainer<'a, NeuralGpEnsembleTrainer> {
    ChaosTrainer {
        inner: NeuralGpEnsembleTrainer::new(EnsembleConfig::fast()),
        plan,
        fits,
    }
}

fn run_under_plan(plan: &FaultPlan, config: BoConfig, action: FailureAction) -> OptimizationResult {
    let calls = AtomicUsize::new(0);
    let fits = AtomicUsize::new(0);
    let problem = faulty_problem(plan, &calls);
    let trainer = chaos_trainer(plan, &fits);
    let policy = FailurePolicy {
        on_exhausted: action,
        ..FailurePolicy::default()
    };
    BayesOpt::with_trainer(config.with_failure_policy(policy), trainer)
        .run(&problem)
        .expect("a chaos run never aborts on recoverable faults")
}

/// The scripted fault plans the suite sweeps, from mild to hostile.
fn plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::default(),
        // One isolated failure in the initial design.
        FaultPlan {
            fail_evals: vec![2],
            ..FaultPlan::default()
        },
        // A burst long enough to exhaust retries mid-run, plus a timeout.
        FaultPlan {
            fail_evals: (8..14).collect(),
            timeout_evals: vec![17],
            ..FaultPlan::default()
        },
        // Surrogate refits failing with and without stale models available.
        FaultPlan {
            fail_fits: vec![0, 3],
            ..FaultPlan::default()
        },
        // Everything at once.
        FaultPlan {
            fail_evals: (7..11).collect(),
            timeout_evals: vec![13, 14],
            fail_fits: vec![1, 2],
        },
    ]
}

#[test]
fn chaos_runs_complete_their_budget_with_finite_values_and_a_consistent_log() {
    for (pi, plan) in plans().iter().enumerate() {
        for (si, action) in [
            FailureAction::MarkInfeasible,
            FailureAction::ImputeWorst,
            FailureAction::Penalize { margin: 0.5 },
        ]
        .into_iter()
        .enumerate()
        {
            let config = chaos_config(100 + si as u64);
            let result = run_under_plan(plan, config.clone(), action);
            let ctx = format!("plan {pi}, action {action:?}");

            // Budget honoured exactly.
            assert_eq!(result.num_evaluations(), config.max_evaluations, "{ctx}");

            // The loop never records a non-finite value or an out-of-cube point.
            for (i, (x, e)) in result.evaluations().iter().enumerate() {
                assert!(
                    e.objective.is_finite() && e.constraints.iter().all(|g| g.is_finite()),
                    "{ctx}: non-finite evaluation {i}"
                );
                assert!(
                    x.iter().all(|v| (0.0..=1.0).contains(v)),
                    "{ctx}: point {i} outside the unit cube"
                );
            }

            // RecoveryLog consistency.
            let rec = result.recovery();
            assert_eq!(rec.is_clean(), plan.is_empty(), "{ctx}: {rec:?}");
            assert!(
                rec.imputed.windows(2).all(|w| w[0] < w[1]),
                "{ctx}: imputed indices not strictly increasing: {rec:?}"
            );
            assert!(
                rec.imputed.iter().all(|&i| i < result.num_evaluations()),
                "{ctx}: imputed index out of range: {rec:?}"
            );
            // A point is only imputed after failures/timeouts exhausted its
            // retry budget, so the failure counters bound the imputations.
            assert!(
                rec.eval_failures + rec.eval_timeouts >= rec.imputed.len(),
                "{ctx}: {rec:?}"
            );

            // An imputed stand-in never wins.
            if let Some(best) = result.best_index() {
                assert!(!rec.imputed.contains(&best), "{ctx}: imputed best");
            }
        }
    }
}

#[test]
fn empty_fault_plan_is_bit_identical_to_the_unwrapped_loop() {
    let plan = FaultPlan::default();
    let config = chaos_config(7);
    let wrapped = run_under_plan(&plan, config.clone(), FailureAction::MarkInfeasible);
    let plain = BayesOpt::neural_with(config, EnsembleConfig::fast())
        .run(&ConstrainedBranin::new())
        .unwrap();
    assert_eq!(wrapped.evaluations(), plain.evaluations());
    assert_eq!(wrapped.full_refits(), plain.full_refits());
    assert!(wrapped.recovery().is_clean());
}

#[test]
fn chaos_runs_are_reproducible_for_a_fixed_seed() {
    let plan = FaultPlan {
        fail_evals: (7..11).collect(),
        timeout_evals: vec![13],
        fail_fits: vec![1],
    };
    let a = run_under_plan(
        &plan,
        chaos_config(11),
        FailureAction::Penalize { margin: 1.0 },
    );
    let b = run_under_plan(
        &plan,
        chaos_config(11),
        FailureAction::Penalize { margin: 1.0 },
    );
    assert_eq!(a.evaluations(), b.evaluations());
    assert_eq!(a.recovery(), b.recovery());
}

#[test]
fn snapshots_taken_mid_chaos_resume_bit_identically() {
    let plan = FaultPlan {
        fail_evals: (7..10).collect(),
        fail_fits: vec![1],
        ..FaultPlan::default()
    };
    let config = chaos_config(23).with_refit_policy(RefitPolicy::nll_drift(0.25));

    // Original run: 5 model-guided steps, snapshot, record the fault-tape
    // position, then run to completion.
    let calls = AtomicUsize::new(0);
    let fits = AtomicUsize::new(0);
    let problem = faulty_problem(&plan, &calls);
    let bo = BayesOpt::with_trainer(config.clone(), chaos_trainer(&plan, &fits));
    let mut state = bo.start(&problem).unwrap();
    for _ in 0..5 {
        assert!(bo.step(&problem, &mut state).unwrap());
    }
    let snap = bo.snapshot(&state);
    let calls_at_snap = calls.load(Ordering::SeqCst);
    let fits_at_snap = fits.load(Ordering::SeqCst);
    while bo.step(&problem, &mut state).unwrap() {}
    let direct = bo.finish(state);

    // Resumed run: fresh wrappers with the fault tape fast-forwarded to the
    // snapshot position, fresh driver, identical continuation expected.
    let calls2 = AtomicUsize::new(calls_at_snap);
    let fits2 = AtomicUsize::new(fits_at_snap);
    let problem2 = faulty_problem(&plan, &calls2);
    let bo2 = BayesOpt::with_trainer(config, chaos_trainer(&plan, &fits2));
    let mut resumed = bo2.resume(&snap).unwrap();
    while bo2.step(&problem2, &mut resumed).unwrap() {}
    let from_snapshot = bo2.finish(resumed);

    assert_eq!(direct.evaluations(), from_snapshot.evaluations());
    assert_eq!(direct.recovery(), from_snapshot.recovery());
    assert_eq!(direct.full_refits(), from_snapshot.full_refits());
}
