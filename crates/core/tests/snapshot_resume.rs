//! Checkpoint/resume integration suite: a resumed run must continue
//! bit-identically — same future suggestions, same evaluations, same refit
//! bookkeeping — whatever the snapshot straddles (fixed-cadence windows,
//! drift windows with incrementally-updated surrogates, JSON round-trips).

use nnbo_core::problems::{ConstrainedBranin, Hartmann6};
use nnbo_core::{BayesOpt, BoConfig, BoSnapshot, EnsembleConfig, Problem, RefitPolicy};

fn driver(config: BoConfig) -> BayesOpt<nnbo_core::NeuralGpEnsembleTrainer> {
    BayesOpt::neural_with(config, EnsembleConfig::fast())
}

/// Runs to completion twice — once uninterrupted, once snapshotted (through
/// JSON) after `pause_after` model-guided steps — and asserts bit-identity.
fn assert_resume_transparent(config: BoConfig, problem: &dyn Problem, pause_after: usize) {
    let bo = driver(config.clone());
    let reference = bo.run(problem).unwrap();

    let mut state = bo.start(problem).unwrap();
    for _ in 0..pause_after {
        assert!(bo.step(problem, &mut state).unwrap());
    }
    let snap = BoSnapshot::from_json(&bo.snapshot(&state).to_json()).unwrap();

    // A fresh driver (as a new process would build) resumes the checkpoint.
    let bo2 = driver(config);
    let mut resumed = bo2.resume(&snap).unwrap();
    while bo2.step(problem, &mut resumed).unwrap() {}
    let result = bo2.finish(resumed);

    assert_eq!(result.evaluations(), reference.evaluations());
    assert_eq!(result.full_refits(), reference.full_refits());
    assert_eq!(result.recovery(), reference.recovery());
}

#[test]
fn resume_is_transparent_under_fixed_cadence() {
    // Cadence 3: pause points cover a just-refitted state (step 1), the
    // middle of an incremental window (step 2) and a window boundary.
    for pause in [1, 2, 3, 5] {
        assert_resume_transparent(
            BoConfig::fast(6, 14)
                .with_seed(41)
                .with_refit_policy(RefitPolicy::Fixed(3)),
            &ConstrainedBranin::new(),
            pause,
        );
    }
}

#[test]
fn resume_is_transparent_mid_drift_window() {
    // An effectively-infinite drift threshold pins the loop to the
    // incremental path after the first full fit, so every pause point ≥ 2
    // lands mid-drift-window: the snapshot must carry the incrementally
    // updated surrogates and the NLL drift reference exactly.
    let config = BoConfig::fast(6, 14)
        .with_seed(19)
        .with_refit_policy(RefitPolicy::NllDrift {
            threshold: 1e9,
            min_gap: 1,
            max_gap: 100,
        });
    let bo = driver(config.clone());
    let mut state = bo.start(&ConstrainedBranin::new()).unwrap();
    for _ in 0..4 {
        assert!(bo.step(&ConstrainedBranin::new(), &mut state).unwrap());
    }
    // One full fit so far — everything since ran on the incremental path.
    assert_eq!(state.full_refits(), 1);

    for pause in [2, 4, 6] {
        assert_resume_transparent(config.clone(), &ConstrainedBranin::new(), pause);
    }
}

#[test]
fn resume_is_transparent_with_a_real_drift_threshold() {
    // A realistic threshold interleaves incremental updates and drift-timed
    // full refits; the pause points straddle both.
    for pause in [1, 3, 5] {
        assert_resume_transparent(
            BoConfig::fast(6, 14)
                .with_seed(29)
                .with_refit_policy(RefitPolicy::nll_drift(0.25)),
            &ConstrainedBranin::new(),
            pause,
        );
    }
}

#[test]
fn resume_is_transparent_on_unconstrained_problems() {
    assert_resume_transparent(BoConfig::fast(8, 14).with_seed(3), &Hartmann6::new(), 2);
}

#[test]
fn snapshot_before_any_step_resumes_the_whole_guided_phase() {
    let problem = ConstrainedBranin::new();
    assert_resume_transparent(BoConfig::fast(6, 12).with_seed(57), &problem, 0);
}
