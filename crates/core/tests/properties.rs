//! Property-based tests of the optimizer building blocks: acquisition functions,
//! sampling, design-space transforms and the surrogate abstraction.

use nnbo_core::acquisition::{
    evaluate, expected_improvement, feasibility_probability, joint_feasibility, normal_cdf,
    normal_pdf, probability_of_improvement, weighted_expected_improvement, AcquisitionKind,
};
use nnbo_core::{
    latin_hypercube, uniform_random, DesignSpace, EnsembleConfig, NeuralGp, NeuralGpConfig,
    NeuralGpEnsemble, Prediction, SurrogateModel,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn surrogate_training_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![i as f64 / (n - 1) as f64, ((i * 13) % n) as f64 / n as f64])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (5.0 * x[0]).sin() + x[1] * x[1] - 0.3 * x[0] * x[1])
        .collect();
    (xs, ys)
}

fn query_grid(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![(i as f64 * 0.37) % 1.0, (i as f64 * 0.61 + 0.11) % 1.0])
        .collect()
}

/// `predict_batch` must return exactly what per-point `predict` calls would —
/// the acquisition maximiser depends on the two paths being interchangeable.
#[test]
fn neural_gp_predict_batch_matches_per_point_exactly() {
    let (xs, ys) = surrogate_training_data(24);
    let mut rng = StdRng::seed_from_u64(5);
    let model = NeuralGp::fit(&xs, &ys, &NeuralGpConfig::fast(), &mut rng).unwrap();
    let queries = query_grid(33);
    let batch = model.predict_batch(&queries);
    assert_eq!(batch.len(), queries.len());
    for (q, b) in queries.iter().zip(batch.iter()) {
        let single = model.predict(q);
        assert_eq!(single.mean, b.mean, "mean mismatch at {q:?}");
        assert_eq!(single.variance, b.variance, "variance mismatch at {q:?}");
    }
    assert!(model.predict_batch(&[]).is_empty());
}

#[test]
fn ensemble_predict_batch_matches_per_point_exactly() {
    let (xs, ys) = surrogate_training_data(20);
    let mut rng = StdRng::seed_from_u64(7);
    let ensemble = NeuralGpEnsemble::fit(&xs, &ys, &EnsembleConfig::fast(), &mut rng).unwrap();
    // Cross the parallel-prediction threshold to also exercise the threaded path.
    let queries = query_grid(300);
    let batch = ensemble.predict_batch(&queries);
    for (q, b) in queries.iter().zip(batch.iter()) {
        let single = ensemble.predict(q);
        assert_eq!(single.mean, b.mean, "mean mismatch at {q:?}");
        assert_eq!(single.variance, b.variance, "variance mismatch at {q:?}");
    }
}

#[test]
fn neural_gp_append_observation_absorbs_the_new_point() {
    let (xs, ys) = surrogate_training_data(18);
    let mut rng = StdRng::seed_from_u64(9);
    let model = NeuralGp::fit(&xs, &ys, &NeuralGpConfig::fast(), &mut rng).unwrap();
    let x_new = vec![0.45_f64, 0.55];
    let y_new = (5.0 * x_new[0]).sin() + x_new[1] * x_new[1] - 0.3 * x_new[0] * x_new[1];
    let updated = model.append_observation(&x_new, y_new).unwrap();
    assert_eq!(updated.train_size(), model.train_size() + 1);
    let before = model.predict(&x_new);
    let after = updated.predict(&x_new);
    assert!((after.mean - y_new).abs() <= (before.mean - y_new).abs() + 1e-9);
    assert!(after.variance <= before.variance + 1e-12);
    // Batched prediction stays consistent on the updated model too.
    let queries = query_grid(10);
    let batch = updated.predict_batch(&queries);
    for (q, b) in queries.iter().zip(batch.iter()) {
        let single = updated.predict(q);
        assert_eq!(single.mean, b.mean);
        assert_eq!(single.variance, b.variance);
    }
    assert!(model.append_observation(&[f64::NAN, 0.0], 0.0).is_err());
}

/// The warm-start plumbing must leave the cold path untouched: `fit` and
/// `fit_warm` without a previous model are the same code path, bit for bit.
#[test]
fn neural_gp_cold_path_is_unchanged_by_the_warm_plumbing() {
    let (xs, ys) = surrogate_training_data(16);
    let config = NeuralGpConfig::fast();
    let a = NeuralGp::fit(&xs, &ys, &config, &mut StdRng::seed_from_u64(33)).unwrap();
    let b = NeuralGp::fit_warm(&xs, &ys, &config, &mut StdRng::seed_from_u64(33), None).unwrap();
    assert_eq!(a.nll(), b.nll());
    let q = [0.4, 0.2];
    assert_eq!(a.predict(&q).mean, b.predict(&q).mean);
    assert_eq!(a.predict(&q).variance, b.predict(&q).variance);
}

/// `append_observation` freezes the standardiser at fit-time statistics; a
/// later warm refit re-standardises on the extended data while continuing
/// from the appended model's network, and must still report in original units.
#[test]
fn warm_refit_after_append_respects_the_frozen_standardizer_contract() {
    let xs: Vec<Vec<f64>> = (0..20)
        .map(|i| vec![i as f64 / 19.0, (i % 5) as f64 / 4.0])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 500.0 + 40.0 * x[0] + 10.0 * x[1])
        .collect();
    let config = NeuralGpConfig::fast();
    let mut rng = StdRng::seed_from_u64(21);
    let fitted = NeuralGp::fit(&xs, &ys, &config, &mut rng).unwrap();

    let x_new = vec![0.5, 0.5];
    let y_new = 500.0 + 40.0 * 0.5 + 10.0 * 0.5;
    let appended = fitted.append_observation(&x_new, y_new).unwrap();

    let mut xs2 = xs.clone();
    xs2.push(x_new.clone());
    let mut ys2 = ys.clone();
    ys2.push(y_new);
    let warm = NeuralGp::fit_warm(
        &xs2,
        &ys2,
        &config,
        &mut StdRng::seed_from_u64(22),
        Some(&appended),
    )
    .unwrap();
    assert_eq!(warm.train_size(), 21);
    assert!(warm.nll().is_finite());
    // Predictions come back in original units despite the re-standardisation.
    let p = warm.predict(&x_new);
    assert!((p.mean - y_new).abs() < 30.0, "mean {}", p.mean);
}

#[test]
fn ensemble_append_observation_updates_every_member() {
    let (xs, ys) = surrogate_training_data(16);
    let mut rng = StdRng::seed_from_u64(11);
    let ensemble = NeuralGpEnsemble::fit(&xs, &ys, &EnsembleConfig::fast(), &mut rng).unwrap();
    let x_new = vec![0.3_f64, 0.7];
    let updated = ensemble.append_observation(&x_new, 0.25).unwrap();
    assert_eq!(updated.len(), ensemble.len());
    for member in updated.members() {
        assert_eq!(member.train_size(), xs.len() + 1);
    }
}

fn prediction() -> impl Strategy<Value = Prediction> {
    (-10.0..10.0f64, 0.0..25.0f64).prop_map(|(m, v)| Prediction::new(m, v))
}

/// Every acquisition variant, for the cross-variant properties.
const ALL_KINDS: [AcquisitionKind; 4] = [
    AcquisitionKind::WeightedExpectedImprovement,
    AcquisitionKind::ExpectedImprovement,
    AcquisitionKind::LowerConfidenceBound { kappa: 1.5 },
    AcquisitionKind::ProbabilityOfImprovement,
];

/// Index of the strict argmax of the scores, plus the margin to the runner-up
/// (used to discard near-ties before asserting argmax invariance: an affine
/// shift re-rounds every score, so only well-separated maxima are stable).
fn argmax_with_margin(scores: &[f64]) -> (usize, f64) {
    let mut best = 0;
    for (i, s) in scores.iter().enumerate() {
        if *s > scores[best] {
            best = i;
        }
    }
    let runner_up = scores
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != best)
        .map(|(_, s)| *s)
        .fold(f64::NEG_INFINITY, f64::max);
    (best, scores[best] - runner_up)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn normal_cdf_is_monotone_and_bounded(a in -8.0..8.0f64, b in -8.0..8.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (cl, ch) = (normal_cdf(lo), normal_cdf(hi));
        prop_assert!(cl <= ch + 1e-12);
        prop_assert!((0.0..=1.0).contains(&cl) && (0.0..=1.0).contains(&ch));
        // Symmetry: Φ(-x) = 1 - Φ(x).
        prop_assert!((normal_cdf(-a) - (1.0 - normal_cdf(a))).abs() < 1e-6);
    }

    #[test]
    fn normal_pdf_is_nonnegative_and_symmetric(x in -10.0..10.0f64) {
        prop_assert!(normal_pdf(x) >= 0.0);
        prop_assert!((normal_pdf(x) - normal_pdf(-x)).abs() < 1e-12);
    }

    #[test]
    fn expected_improvement_is_nonnegative(p in prediction(), tau in -10.0..10.0f64) {
        prop_assert!(expected_improvement(&p, tau) >= 0.0);
    }

    #[test]
    fn expected_improvement_grows_with_a_looser_incumbent(
        p in prediction(),
        tau in -5.0..5.0f64,
        delta in 0.0..5.0f64,
    ) {
        // A larger (worse) incumbent can only make improvement easier.
        let tight = expected_improvement(&p, tau);
        let loose = expected_improvement(&p, tau + delta);
        prop_assert!(loose + 1e-12 >= tight);
    }

    #[test]
    fn ei_is_bounded_below_by_mean_improvement(p in prediction(), tau in -10.0..10.0f64) {
        // EI >= max(tau - mu, 0) for any Gaussian (Jensen / convexity of max).
        let lower = (tau - p.mean).max(0.0);
        prop_assert!(expected_improvement(&p, tau) + 1e-9 >= lower);
    }

    #[test]
    fn probability_of_improvement_is_a_probability(p in prediction(), tau in -10.0..10.0f64) {
        let v = probability_of_improvement(&p, tau);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn feasibility_probability_decreases_with_the_constraint_mean(
        mean in -5.0..5.0f64,
        shift in 0.0..5.0f64,
        var in 0.01..9.0f64,
    ) {
        let easier = feasibility_probability(&Prediction::new(mean, var));
        let harder = feasibility_probability(&Prediction::new(mean + shift, var));
        prop_assert!(harder <= easier + 1e-12);
    }

    #[test]
    fn joint_feasibility_never_exceeds_any_single_factor(
        preds in prop::collection::vec(prediction(), 1..5)
    ) {
        let joint = joint_feasibility(&preds);
        prop_assert!((0.0..=1.0).contains(&joint));
        for p in &preds {
            prop_assert!(joint <= feasibility_probability(p) + 1e-12);
        }
    }

    #[test]
    fn wei_is_bounded_by_unweighted_ei(
        obj in prediction(),
        cons in prop::collection::vec(prediction(), 0..4),
        tau in -5.0..5.0f64,
    ) {
        let wei = weighted_expected_improvement(&obj, &cons, Some(tau));
        let ei = expected_improvement(&obj, tau);
        prop_assert!(wei <= ei + 1e-12);
        prop_assert!(wei >= 0.0);
    }

    #[test]
    fn latin_hypercube_is_stratified_in_every_dimension(
        n in 2..30usize,
        dim in 1..8usize,
        seed in 0..1000u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = latin_hypercube(n, dim, &mut rng);
        prop_assert_eq!(points.len(), n);
        for d in 0..dim {
            let mut counts = vec![0usize; n];
            for p in &points {
                prop_assert!((0.0..=1.0).contains(&p[d]));
                let stratum = ((p[d] * n as f64).floor() as usize).min(n - 1);
                counts[stratum] += 1;
            }
            prop_assert!(counts.iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn uniform_samples_stay_inside_the_unit_cube(
        n in 1..40usize,
        dim in 1..10usize,
        seed in 0..1000u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = uniform_random(n, dim, &mut rng);
        prop_assert_eq!(points.len(), n);
        prop_assert!(points.iter().flatten().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn design_space_roundtrip_is_identity(
        bounds in prop::collection::vec((-100.0..100.0f64, 0.1..100.0f64), 1..8),
        coords in prop::collection::vec(0.0..1.0f64, 8),
    ) {
        let bounds: Vec<(f64, f64)> = bounds.iter().map(|(lo, w)| (*lo, lo + w)).collect();
        let dim = bounds.len();
        let space = DesignSpace::new(bounds);
        let x = &coords[..dim];
        let phys = space.denormalize(x);
        let back = space.normalize(&phys);
        for (a, b) in back.iter().zip(x.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        // Physical values respect the bounds.
        for (v, (lo, hi)) in phys.iter().zip(space.bounds().iter()) {
            prop_assert!(*v >= lo - 1e-12 && *v <= hi + 1e-12);
        }
    }

    #[test]
    fn prediction_std_is_sqrt_of_variance(p in prediction()) {
        prop_assert!((p.std() * p.std() - p.variance).abs() < 1e-9);
    }

    /// wEI and EI are non-negative for every prediction, incumbent and
    /// constraint set (LCB and PI·pf are separately bounded: PI in [0, 1],
    /// LCB unbounded by design).
    #[test]
    fn wei_and_ei_evaluations_are_nonnegative(
        obj in prediction(),
        cons in prop::collection::vec(prediction(), 0..4),
        tau_value in -5.0..5.0f64,
    ) {
        for tau in [Some(tau_value), None] {
            for kind in [
                AcquisitionKind::WeightedExpectedImprovement,
                AcquisitionKind::ExpectedImprovement,
            ] {
                let score = evaluate(kind, &obj, &cons, tau);
                prop_assert!(score >= 0.0, "{kind:?} gave {score}");
            }
            let pi = evaluate(AcquisitionKind::ProbabilityOfImprovement, &obj, &cons, tau);
            prop_assert!((0.0..=1.0).contains(&pi));
        }
    }

    /// The lower-confidence-bound score is monotone non-decreasing in the
    /// exploration weight κ: more exploration can only raise the optimism.
    #[test]
    fn lcb_score_is_monotone_in_kappa(
        obj in prediction(),
        cons in prop::collection::vec(prediction(), 0..4),
        kappa in 0.0..5.0f64,
        extra in 0.0..5.0f64,
        tau_value in -5.0..5.0f64,
    ) {
        for tau in [Some(tau_value), None] {
            let tight = evaluate(AcquisitionKind::LowerConfidenceBound { kappa }, &obj, &cons, tau);
            let loose = evaluate(
                AcquisitionKind::LowerConfidenceBound { kappa: kappa + extra },
                &obj,
                &cons,
                tau,
            );
            prop_assert!(loose + 1e-12 >= tight, "kappa {kappa}+{extra}: {loose} < {tight}");
        }
    }

    /// The argmax over a candidate set is invariant under positive-affine
    /// transformations of the objective (means/incumbent shifted and scaled
    /// together, standard deviations scaled): for every variant without
    /// constraints, and for the multiplicative variants (wEI, PI) under
    /// constraints too.  Near-ties are skipped — an affine shift legitimately
    /// re-rounds the scores.
    #[test]
    fn acquisition_argmax_is_invariant_under_affine_objective_shifts(
        objs in prop::collection::vec(prediction(), 2..8),
        cons_means in prop::collection::vec(-3.0..3.0f64, 2..8),
        tau in -5.0..5.0f64,
        shift in -50.0..50.0f64,
        log_scale in -2.0..2.0f64,
    ) {
        let scale = log_scale.exp();
        let affine = |p: &Prediction| Prediction::new(scale * p.mean + shift, scale * scale * p.variance);
        let no_cons: Vec<Vec<Prediction>> = vec![Vec::new(); objs.len()];
        let with_cons: Vec<Vec<Prediction>> = cons_means
            .iter()
            .cycle()
            .take(objs.len())
            .map(|&m| vec![Prediction::new(m, 0.5)])
            .collect();
        for kind in ALL_KINDS {
            for cons in [&no_cons, &with_cons] {
                let constrained = cons.iter().any(|c| !c.is_empty());
                // LCB's additive form and EI's additive penalty are only
                // affine-equivariant without constraints.
                if constrained
                    && !matches!(
                        kind,
                        AcquisitionKind::WeightedExpectedImprovement
                            | AcquisitionKind::ProbabilityOfImprovement
                    )
                {
                    continue;
                }
                let base: Vec<f64> = objs
                    .iter()
                    .zip(cons.iter())
                    .map(|(o, c)| evaluate(kind, o, c, Some(tau)))
                    .collect();
                let (best, margin) = argmax_with_margin(&base);
                let spread = base
                    .iter()
                    .fold(0.0f64, |acc, s| acc.max(s.abs()));
                if margin <= 1e-6 * (1.0 + spread) {
                    continue; // near-tie: rounding may legitimately flip it
                }
                let shifted: Vec<f64> = objs
                    .iter()
                    .zip(cons.iter())
                    .map(|(o, c)| evaluate(kind, &affine(o), c, Some(scale * tau + shift)))
                    .collect();
                let (best_shifted, _) = argmax_with_margin(&shifted);
                prop_assert!(
                    best == best_shifted,
                    "{kind:?} (constrained: {constrained}): argmax moved under x -> {scale}·x + {shift}"
                );
            }
        }
    }

    /// σ → 0 limits: with deterministic predictions every variant collapses
    /// to its documented closed form.
    #[test]
    fn degenerate_variance_limits_match_closed_forms(
        mu in -5.0..5.0f64,
        tau in -5.0..5.0f64,
        cons_means in prop::collection::vec(-2.0..2.0f64, 0..4),
        kappa in 0.1..3.0f64,
    ) {
        let obj = Prediction::new(mu, 0.0);
        let cons: Vec<Prediction> = cons_means.iter().map(|&m| Prediction::new(m, 0.0)).collect();
        let feasible = cons.iter().all(|c| c.mean < 0.0);
        let indicator = if feasible { 1.0 } else { 0.0 };

        let wei = evaluate(AcquisitionKind::WeightedExpectedImprovement, &obj, &cons, Some(tau));
        prop_assert!((wei - (tau - mu).max(0.0) * indicator).abs() < 1e-12);

        let violation: f64 = cons.iter().map(|c| c.mean.max(0.0)).sum();
        let ei = evaluate(AcquisitionKind::ExpectedImprovement, &obj, &cons, Some(tau));
        prop_assert!((ei - (tau - (mu + 10.0 * violation)).max(0.0)).abs() < 1e-12);

        let lcb = evaluate(AcquisitionKind::LowerConfidenceBound { kappa }, &obj, &cons, Some(tau));
        prop_assert!((lcb - (-mu) * indicator.max(1e-6)).abs() < 1e-12);

        let pi = evaluate(AcquisitionKind::ProbabilityOfImprovement, &obj, &cons, Some(tau));
        let pi_expected = if mu < tau { indicator } else { 0.0 };
        prop_assert!((pi - pi_expected).abs() < 1e-12);
    }

    #[test]
    fn ensemble_warm_fit_is_deterministic_and_never_non_finite(seed in 0..200u64) {
        let config = EnsembleConfig {
            members: 2,
            parallel: false,
            member_config: NeuralGpConfig {
                hidden_dims: vec![6],
                feature_dim: 4,
                epochs: 12,
                warm_epochs: 5,
                ..NeuralGpConfig::fast()
            },
        };
        let (xs, ys) = surrogate_training_data(12);
        let mut rng = StdRng::seed_from_u64(seed);
        let prev = NeuralGpEnsemble::fit(&xs, &ys, &config, &mut rng).unwrap();
        let warm_fit = || {
            NeuralGpEnsemble::fit_warm(
                &xs,
                &ys,
                &config,
                &mut StdRng::seed_from_u64(seed + 1),
                Some(&prev),
            )
            .unwrap()
        };
        let warm1 = warm_fit();
        let warm2 = warm_fit();
        prop_assert_eq!(warm1.len(), warm2.len());
        for (a, b) in warm1.members().iter().zip(warm2.members().iter()) {
            prop_assert!(a.nll().is_finite());
            prop_assert_eq!(a.nll(), b.nll());
        }
        let q = [0.3, 0.6];
        prop_assert_eq!(warm1.predict(&q).mean, warm2.predict(&q).mean);
        prop_assert_eq!(warm1.predict(&q).variance, warm2.predict(&q).variance);
    }
}
