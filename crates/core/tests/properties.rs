//! Property-based tests of the optimizer building blocks: acquisition functions,
//! sampling, design-space transforms and the surrogate abstraction.

use nnbo_core::acquisition::{
    expected_improvement, feasibility_probability, joint_feasibility, normal_cdf, normal_pdf,
    probability_of_improvement, weighted_expected_improvement,
};
use nnbo_core::{
    latin_hypercube, uniform_random, DesignSpace, EnsembleConfig, NeuralGp, NeuralGpConfig,
    NeuralGpEnsemble, Prediction, SurrogateModel,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn surrogate_training_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![i as f64 / (n - 1) as f64, ((i * 13) % n) as f64 / n as f64])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (5.0 * x[0]).sin() + x[1] * x[1] - 0.3 * x[0] * x[1])
        .collect();
    (xs, ys)
}

fn query_grid(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![(i as f64 * 0.37) % 1.0, (i as f64 * 0.61 + 0.11) % 1.0])
        .collect()
}

/// `predict_batch` must return exactly what per-point `predict` calls would —
/// the acquisition maximiser depends on the two paths being interchangeable.
#[test]
fn neural_gp_predict_batch_matches_per_point_exactly() {
    let (xs, ys) = surrogate_training_data(24);
    let mut rng = StdRng::seed_from_u64(5);
    let model = NeuralGp::fit(&xs, &ys, &NeuralGpConfig::fast(), &mut rng).unwrap();
    let queries = query_grid(33);
    let batch = model.predict_batch(&queries);
    assert_eq!(batch.len(), queries.len());
    for (q, b) in queries.iter().zip(batch.iter()) {
        let single = model.predict(q);
        assert_eq!(single.mean, b.mean, "mean mismatch at {q:?}");
        assert_eq!(single.variance, b.variance, "variance mismatch at {q:?}");
    }
    assert!(model.predict_batch(&[]).is_empty());
}

#[test]
fn ensemble_predict_batch_matches_per_point_exactly() {
    let (xs, ys) = surrogate_training_data(20);
    let mut rng = StdRng::seed_from_u64(7);
    let ensemble = NeuralGpEnsemble::fit(&xs, &ys, &EnsembleConfig::fast(), &mut rng).unwrap();
    // Cross the parallel-prediction threshold to also exercise the threaded path.
    let queries = query_grid(300);
    let batch = ensemble.predict_batch(&queries);
    for (q, b) in queries.iter().zip(batch.iter()) {
        let single = ensemble.predict(q);
        assert_eq!(single.mean, b.mean, "mean mismatch at {q:?}");
        assert_eq!(single.variance, b.variance, "variance mismatch at {q:?}");
    }
}

#[test]
fn neural_gp_append_observation_absorbs_the_new_point() {
    let (xs, ys) = surrogate_training_data(18);
    let mut rng = StdRng::seed_from_u64(9);
    let model = NeuralGp::fit(&xs, &ys, &NeuralGpConfig::fast(), &mut rng).unwrap();
    let x_new = vec![0.45_f64, 0.55];
    let y_new = (5.0 * x_new[0]).sin() + x_new[1] * x_new[1] - 0.3 * x_new[0] * x_new[1];
    let updated = model.append_observation(&x_new, y_new).unwrap();
    assert_eq!(updated.train_size(), model.train_size() + 1);
    let before = model.predict(&x_new);
    let after = updated.predict(&x_new);
    assert!((after.mean - y_new).abs() <= (before.mean - y_new).abs() + 1e-9);
    assert!(after.variance <= before.variance + 1e-12);
    // Batched prediction stays consistent on the updated model too.
    let queries = query_grid(10);
    let batch = updated.predict_batch(&queries);
    for (q, b) in queries.iter().zip(batch.iter()) {
        let single = updated.predict(q);
        assert_eq!(single.mean, b.mean);
        assert_eq!(single.variance, b.variance);
    }
    assert!(model.append_observation(&[f64::NAN, 0.0], 0.0).is_err());
}

/// The warm-start plumbing must leave the cold path untouched: `fit` and
/// `fit_warm` without a previous model are the same code path, bit for bit.
#[test]
fn neural_gp_cold_path_is_unchanged_by_the_warm_plumbing() {
    let (xs, ys) = surrogate_training_data(16);
    let config = NeuralGpConfig::fast();
    let a = NeuralGp::fit(&xs, &ys, &config, &mut StdRng::seed_from_u64(33)).unwrap();
    let b = NeuralGp::fit_warm(&xs, &ys, &config, &mut StdRng::seed_from_u64(33), None).unwrap();
    assert_eq!(a.nll(), b.nll());
    let q = [0.4, 0.2];
    assert_eq!(a.predict(&q).mean, b.predict(&q).mean);
    assert_eq!(a.predict(&q).variance, b.predict(&q).variance);
}

/// `append_observation` freezes the standardiser at fit-time statistics; a
/// later warm refit re-standardises on the extended data while continuing
/// from the appended model's network, and must still report in original units.
#[test]
fn warm_refit_after_append_respects_the_frozen_standardizer_contract() {
    let xs: Vec<Vec<f64>> = (0..20)
        .map(|i| vec![i as f64 / 19.0, (i % 5) as f64 / 4.0])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 500.0 + 40.0 * x[0] + 10.0 * x[1])
        .collect();
    let config = NeuralGpConfig::fast();
    let mut rng = StdRng::seed_from_u64(21);
    let fitted = NeuralGp::fit(&xs, &ys, &config, &mut rng).unwrap();

    let x_new = vec![0.5, 0.5];
    let y_new = 500.0 + 40.0 * 0.5 + 10.0 * 0.5;
    let appended = fitted.append_observation(&x_new, y_new).unwrap();

    let mut xs2 = xs.clone();
    xs2.push(x_new.clone());
    let mut ys2 = ys.clone();
    ys2.push(y_new);
    let warm = NeuralGp::fit_warm(
        &xs2,
        &ys2,
        &config,
        &mut StdRng::seed_from_u64(22),
        Some(&appended),
    )
    .unwrap();
    assert_eq!(warm.train_size(), 21);
    assert!(warm.nll().is_finite());
    // Predictions come back in original units despite the re-standardisation.
    let p = warm.predict(&x_new);
    assert!((p.mean - y_new).abs() < 30.0, "mean {}", p.mean);
}

#[test]
fn ensemble_append_observation_updates_every_member() {
    let (xs, ys) = surrogate_training_data(16);
    let mut rng = StdRng::seed_from_u64(11);
    let ensemble = NeuralGpEnsemble::fit(&xs, &ys, &EnsembleConfig::fast(), &mut rng).unwrap();
    let x_new = vec![0.3_f64, 0.7];
    let updated = ensemble.append_observation(&x_new, 0.25).unwrap();
    assert_eq!(updated.len(), ensemble.len());
    for member in updated.members() {
        assert_eq!(member.train_size(), xs.len() + 1);
    }
}

fn prediction() -> impl Strategy<Value = Prediction> {
    (-10.0..10.0f64, 0.0..25.0f64).prop_map(|(m, v)| Prediction::new(m, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn normal_cdf_is_monotone_and_bounded(a in -8.0..8.0f64, b in -8.0..8.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (cl, ch) = (normal_cdf(lo), normal_cdf(hi));
        prop_assert!(cl <= ch + 1e-12);
        prop_assert!((0.0..=1.0).contains(&cl) && (0.0..=1.0).contains(&ch));
        // Symmetry: Φ(-x) = 1 - Φ(x).
        prop_assert!((normal_cdf(-a) - (1.0 - normal_cdf(a))).abs() < 1e-6);
    }

    #[test]
    fn normal_pdf_is_nonnegative_and_symmetric(x in -10.0..10.0f64) {
        prop_assert!(normal_pdf(x) >= 0.0);
        prop_assert!((normal_pdf(x) - normal_pdf(-x)).abs() < 1e-12);
    }

    #[test]
    fn expected_improvement_is_nonnegative(p in prediction(), tau in -10.0..10.0f64) {
        prop_assert!(expected_improvement(&p, tau) >= 0.0);
    }

    #[test]
    fn expected_improvement_grows_with_a_looser_incumbent(
        p in prediction(),
        tau in -5.0..5.0f64,
        delta in 0.0..5.0f64,
    ) {
        // A larger (worse) incumbent can only make improvement easier.
        let tight = expected_improvement(&p, tau);
        let loose = expected_improvement(&p, tau + delta);
        prop_assert!(loose + 1e-12 >= tight);
    }

    #[test]
    fn ei_is_bounded_below_by_mean_improvement(p in prediction(), tau in -10.0..10.0f64) {
        // EI >= max(tau - mu, 0) for any Gaussian (Jensen / convexity of max).
        let lower = (tau - p.mean).max(0.0);
        prop_assert!(expected_improvement(&p, tau) + 1e-9 >= lower);
    }

    #[test]
    fn probability_of_improvement_is_a_probability(p in prediction(), tau in -10.0..10.0f64) {
        let v = probability_of_improvement(&p, tau);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn feasibility_probability_decreases_with_the_constraint_mean(
        mean in -5.0..5.0f64,
        shift in 0.0..5.0f64,
        var in 0.01..9.0f64,
    ) {
        let easier = feasibility_probability(&Prediction::new(mean, var));
        let harder = feasibility_probability(&Prediction::new(mean + shift, var));
        prop_assert!(harder <= easier + 1e-12);
    }

    #[test]
    fn joint_feasibility_never_exceeds_any_single_factor(
        preds in prop::collection::vec(prediction(), 1..5)
    ) {
        let joint = joint_feasibility(&preds);
        prop_assert!((0.0..=1.0).contains(&joint));
        for p in &preds {
            prop_assert!(joint <= feasibility_probability(p) + 1e-12);
        }
    }

    #[test]
    fn wei_is_bounded_by_unweighted_ei(
        obj in prediction(),
        cons in prop::collection::vec(prediction(), 0..4),
        tau in -5.0..5.0f64,
    ) {
        let wei = weighted_expected_improvement(&obj, &cons, Some(tau));
        let ei = expected_improvement(&obj, tau);
        prop_assert!(wei <= ei + 1e-12);
        prop_assert!(wei >= 0.0);
    }

    #[test]
    fn latin_hypercube_is_stratified_in_every_dimension(
        n in 2..30usize,
        dim in 1..8usize,
        seed in 0..1000u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = latin_hypercube(n, dim, &mut rng);
        prop_assert_eq!(points.len(), n);
        for d in 0..dim {
            let mut counts = vec![0usize; n];
            for p in &points {
                prop_assert!((0.0..=1.0).contains(&p[d]));
                let stratum = ((p[d] * n as f64).floor() as usize).min(n - 1);
                counts[stratum] += 1;
            }
            prop_assert!(counts.iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn uniform_samples_stay_inside_the_unit_cube(
        n in 1..40usize,
        dim in 1..10usize,
        seed in 0..1000u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = uniform_random(n, dim, &mut rng);
        prop_assert_eq!(points.len(), n);
        prop_assert!(points.iter().flatten().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn design_space_roundtrip_is_identity(
        bounds in prop::collection::vec((-100.0..100.0f64, 0.1..100.0f64), 1..8),
        coords in prop::collection::vec(0.0..1.0f64, 8),
    ) {
        let bounds: Vec<(f64, f64)> = bounds.iter().map(|(lo, w)| (*lo, lo + w)).collect();
        let dim = bounds.len();
        let space = DesignSpace::new(bounds);
        let x = &coords[..dim];
        let phys = space.denormalize(x);
        let back = space.normalize(&phys);
        for (a, b) in back.iter().zip(x.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        // Physical values respect the bounds.
        for (v, (lo, hi)) in phys.iter().zip(space.bounds().iter()) {
            prop_assert!(*v >= lo - 1e-12 && *v <= hi + 1e-12);
        }
    }

    #[test]
    fn prediction_std_is_sqrt_of_variance(p in prediction()) {
        prop_assert!((p.std() * p.std() - p.variance).abs() < 1e-9);
    }

    #[test]
    fn ensemble_warm_fit_is_deterministic_and_never_non_finite(seed in 0..200u64) {
        let config = EnsembleConfig {
            members: 2,
            parallel: false,
            member_config: NeuralGpConfig {
                hidden_dims: vec![6],
                feature_dim: 4,
                epochs: 12,
                warm_epochs: 5,
                ..NeuralGpConfig::fast()
            },
        };
        let (xs, ys) = surrogate_training_data(12);
        let mut rng = StdRng::seed_from_u64(seed);
        let prev = NeuralGpEnsemble::fit(&xs, &ys, &config, &mut rng).unwrap();
        let warm_fit = || {
            NeuralGpEnsemble::fit_warm(
                &xs,
                &ys,
                &config,
                &mut StdRng::seed_from_u64(seed + 1),
                Some(&prev),
            )
            .unwrap()
        };
        let warm1 = warm_fit();
        let warm2 = warm_fit();
        prop_assert_eq!(warm1.len(), warm2.len());
        for (a, b) in warm1.members().iter().zip(warm2.members().iter()) {
            prop_assert!(a.nll().is_finite());
            prop_assert_eq!(a.nll(), b.nll());
        }
        let q = [0.3, 0.6];
        prop_assert_eq!(warm1.predict(&q).mean, warm2.predict(&q).mean);
        prop_assert_eq!(warm1.predict(&q).variance, warm2.predict(&q).variance);
    }
}
