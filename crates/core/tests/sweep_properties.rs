//! Property-based tests of the corner-sweep aggregation laws.
//!
//! [`SweepProblem::aggregate`] is public exactly so these laws are testable
//! in isolation from the circuit simulators:
//!
//! * the worst-case aggregate is the componentwise maximum, and is monotone
//!   in every single corner's objective;
//! * aggregating a single corner is the identity, for every aggregation;
//! * a sweep over one nominal corner *is* the plain testbench;
//! * a failed corner surfaces as an honest [`EvalOutcome::Failed`] naming
//!   the corner — never a silent `NaN` — and the loop's [`FailurePolicy`]
//!   turns it into a recorded, finite, imputed observation.

use nnbo_core::problems::{CornerContext, CornerSweep, PvtCorner, Testbench};
use nnbo_core::{
    BayesOpt, BoConfig, EvalOutcome, Evaluation, FailurePolicy, Problem, SweepAggregation,
    SweepProblem,
};
use proptest::prelude::*;

/// A cheap deterministic 3-parameter bench whose output depends on both the
/// corner's electrical parameters and its index (like the charge pump's
/// mismatch sign does).
#[derive(Clone)]
struct ToyBench;

impl Testbench for ToyBench {
    type Output = f64;

    fn name(&self) -> &str {
        "toy"
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![(0.0, 2.0), (-1.0, 1.0), (0.5, 1.5)]
    }

    fn measure(&self, x: &[f64], ctx: &CornerContext) -> Result<f64, String> {
        let base = x[0] + 2.0 * x[1] - x[2];
        Ok(base * (ctx.corner.vdd / 1.1) + 0.01 * ctx.index as f64)
    }
}

/// A bench that fails deterministically at one corner index.
#[derive(Clone)]
struct FailsAtCorner {
    at: usize,
}

impl Testbench for FailsAtCorner {
    type Output = f64;

    fn name(&self) -> &str {
        "fails-at-corner"
    }

    fn bounds(&self) -> Vec<(f64, f64)> {
        vec![(0.0, 1.0); 2]
    }

    fn measure(&self, x: &[f64], ctx: &CornerContext) -> Result<f64, String> {
        if ctx.index == self.at {
            return Err("solver did not converge".to_string());
        }
        Ok(x[0] - x[1] + 0.1 * ctx.index as f64)
    }
}

const NC: usize = 3;

/// A sweep problem whose `aggregate` carries `NC` base constraints; the
/// bench and spec are irrelevant to the aggregation laws.
fn toy_problem(aggregation: SweepAggregation) -> SweepProblem<ToyBench> {
    SweepProblem::new(
        CornerSweep::new(ToyBench, PvtCorner::standard_18()),
        "toy-pvt",
        NC,
        |out: &f64| Evaluation::new(*out, vec![*out - 1.0, -out, out * 0.5]),
    )
    .with_aggregation(aggregation)
}

fn evaluation() -> impl Strategy<Value = Evaluation> {
    prop::collection::vec(-5.0..5.0f64, NC + 1).prop_map(|mut v| {
        let objective = v.pop().expect("NC + 1 values");
        Evaluation::new(objective, v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The worst-case aggregate is exactly the componentwise maximum over
    /// the corners, and raising any single corner's objective never lowers
    /// the aggregate objective (monotonicity).
    #[test]
    fn worst_case_is_the_componentwise_max_and_monotone(
        evals in prop::collection::vec(evaluation(), 2..6),
        pick in 0usize..6,
        bump in 0.0..3.0f64,
    ) {
        let mut evals = evals;
        let problem = toy_problem(SweepAggregation::WorstCase);
        let agg = problem.aggregate(&evals);
        let max_obj = evals.iter().map(|e| e.objective).fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(agg.objective, max_obj);
        for i in 0..NC {
            let max_g = evals.iter().map(|e| e.constraints[i]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(agg.constraints[i], max_g);
        }
        // Monotone: bump one corner's objective upward, aggregate can only rise.
        let k = pick % evals.len();
        evals[k].objective += bump;
        let bumped = problem.aggregate(&evals);
        prop_assert!(bumped.objective >= agg.objective);
        // And feasibility is corner-wise: the aggregate is feasible iff
        // every corner is.
        prop_assert_eq!(agg.is_feasible(), evals.iter().all(Evaluation::is_feasible));
    }

    /// Aggregating a single corner is the identity under every aggregation.
    #[test]
    fn single_corner_aggregation_is_the_identity(eval in evaluation()) {
        for aggregation in [
            SweepAggregation::WorstCase,
            SweepAggregation::Nominal,
            SweepAggregation::PerCornerConstraints,
        ] {
            let problem = toy_problem(aggregation);
            let agg = problem.aggregate(std::slice::from_ref(&eval));
            prop_assert!(
                agg == eval,
                "{:?} is not the identity on one corner: {:?} vs {:?}",
                aggregation, agg, eval
            );
        }
    }

    /// A sweep over just the nominal corner evaluates to exactly the plain
    /// testbench measurement passed through the spec — the sweep layer adds
    /// nothing of its own.
    #[test]
    fn a_one_corner_sweep_is_the_plain_testbench(
        x in prop::collection::vec(0.0..1.0f64, NC),
    ) {
        let problem = SweepProblem::new(
            CornerSweep::new(ToyBench, vec![PvtCorner::nominal()]),
            "toy-nominal",
            NC,
            |out: &f64| Evaluation::new(*out, vec![*out - 1.0, -out, out * 0.5]),
        );
        let phys = ToyBench.denormalize(&x);
        let direct = ToyBench.measure(&phys, &CornerContext::nominal()).unwrap();
        let expected = Evaluation::new(direct, vec![direct - 1.0, -direct, direct * 0.5]);
        prop_assert_eq!(problem.try_evaluate(&x), EvalOutcome::Ok(expected));
    }

    /// A failing corner makes the whole sweep an honest failure naming that
    /// corner — and the infallible projection stays finite, so a failed
    /// corner can never smuggle a `NaN` into the optimizer.
    #[test]
    fn a_failed_corner_is_an_honest_failure_never_a_nan(
        at in 0usize..18,
        x in prop::collection::vec(0.0..1.0f64, 2),
    ) {
        let problem = SweepProblem::new(
            CornerSweep::new(FailsAtCorner { at }, PvtCorner::standard_18()),
            "flaky-pvt",
            0,
            |_: &f64| Evaluation::unconstrained(0.0),
        );
        match problem.try_evaluate(&x) {
            EvalOutcome::Failed(reason) => {
                prop_assert!(reason.contains("flaky-pvt sweep failed"), "{}", reason);
                prop_assert!(
                    reason.contains(&format!("({}/18)", at + 1)),
                    "failure must name the corner position: {}", reason
                );
                prop_assert!(reason.contains("solver did not converge"), "{}", reason);
            }
            other => prop_assert!(false, "expected a failure, got {:?}", other),
        }
        let projected = problem.evaluate(&x);
        prop_assert!(projected.objective.is_finite());
        prop_assert!(projected.constraints.iter().all(|g| g.is_finite()));
    }
}

/// End to end: the optimization loop's failure policy turns failing sweeps
/// into finite imputed observations — the run completes, the failures are
/// counted, every recorded value is finite, and the imputed stand-ins are
/// excluded from the reported optimum.
#[test]
fn the_failure_policy_absorbs_failing_sweeps_without_nans() {
    // Fails at corner 7 whenever x[0] lands in the upper quarter of the
    // design space, so the run sees both clean and failing evaluations.
    #[derive(Clone)]
    struct FlakyRegion;
    impl Testbench for FlakyRegion {
        type Output = f64;
        fn name(&self) -> &str {
            "flaky-region"
        }
        fn bounds(&self) -> Vec<(f64, f64)> {
            vec![(0.0, 1.0); 2]
        }
        fn measure(&self, x: &[f64], ctx: &CornerContext) -> Result<f64, String> {
            if ctx.index == 7 && x[0] > 0.75 {
                return Err("corner 7 diverged".to_string());
            }
            Ok((3.0 * x[0]).sin() + x[1] * x[1] + 0.01 * ctx.index as f64)
        }
    }

    let problem = SweepProblem::new(
        CornerSweep::new(FlakyRegion, PvtCorner::standard_18()),
        "flaky-region-pvt",
        1,
        |out: &f64| Evaluation::new(*out, vec![*out - 10.0]),
    );
    let config = BoConfig::fast(6, 10)
        .with_seed(11)
        .with_failure_policy(FailurePolicy::no_retries());
    let result = BayesOpt::neural(config)
        .run(&problem)
        .expect("run completes");

    let recovery = result.recovery();
    assert_eq!(recovery.imputed.len(), recovery.eval_failures);
    for (i, (x, eval)) in result.evaluations().iter().enumerate() {
        assert!(eval.objective.is_finite(), "non-finite objective at {i}");
        assert!(
            eval.constraints.iter().all(|g| g.is_finite()),
            "non-finite constraint at {i}"
        );
        // Points in the failing region must have been imputed, not measured.
        if x[0] > 0.75 {
            assert!(
                recovery.imputed.contains(&i),
                "failure at {i} was not imputed"
            );
        }
    }
    if let Some((best_x, _)) = result.best() {
        let best_index = result
            .evaluations()
            .iter()
            .position(|(x, _)| x.as_slice() == best_x)
            .expect("optimum comes from the history");
        assert!(
            !recovery.imputed.contains(&best_index),
            "an imputed stand-in must never be the reported optimum"
        );
    }
}
