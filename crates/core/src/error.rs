//! Error type of the Bayesian-optimization loop.

use std::error::Error;
use std::fmt;

/// Error produced by the Bayesian-optimization components.
#[derive(Debug, Clone, PartialEq)]
pub enum BoError {
    /// A surrogate model could not be trained (degenerate data, factorization
    /// failure after retries, ...).
    SurrogateTraining {
        /// Which output the surrogate was modelling ("objective" or a constraint index).
        target: String,
        /// Underlying reason.
        reason: String,
    },
    /// The configuration is inconsistent (e.g. more initial samples than the total
    /// evaluation budget).
    InvalidConfig {
        /// Description of the inconsistency.
        details: String,
    },
    /// The problem definition is inconsistent (e.g. zero-dimensional design space).
    InvalidProblem {
        /// Description of the inconsistency.
        details: String,
    },
}

impl fmt::Display for BoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoError::SurrogateTraining { target, reason } => {
                write!(f, "failed to train surrogate for {target}: {reason}")
            }
            BoError::InvalidConfig { details } => write!(f, "invalid configuration: {details}"),
            BoError::InvalidProblem { details } => write!(f, "invalid problem: {details}"),
        }
    }
}

impl Error for BoError {}
