//! Error type of the Bayesian-optimization loop.

use std::error::Error;
use std::fmt;

/// Error produced by the Bayesian-optimization components.
#[derive(Debug, Clone, PartialEq)]
pub enum BoError {
    /// A surrogate model could not be trained (degenerate data, factorization
    /// failure after retries, ...).
    SurrogateTraining {
        /// Which output the surrogate was modelling ("objective" or a constraint index).
        target: String,
        /// Underlying reason.
        reason: String,
    },
    /// The configuration is inconsistent (e.g. more initial samples than the total
    /// evaluation budget).
    InvalidConfig {
        /// Description of the inconsistency.
        details: String,
    },
    /// The problem definition is inconsistent (e.g. zero-dimensional design space).
    InvalidProblem {
        /// Description of the inconsistency.
        details: String,
    },
    /// An internal invariant of the loop was violated (e.g. a trainer returned
    /// the wrong number of models).  Unlike [`BoError::SurrogateTraining`],
    /// which the loop recovers from by falling back to a space-filling
    /// suggestion, an internal error aborts the run: continuing past a broken
    /// invariant would silently corrupt the optimization state.
    Internal {
        /// Description of the violated invariant.
        details: String,
    },
    /// A checkpoint could not be restored (version mismatch, configuration
    /// mismatch, or a model payload that no longer deserializes).
    SnapshotMismatch {
        /// Description of the incompatibility.
        details: String,
    },
}

impl fmt::Display for BoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoError::SurrogateTraining { target, reason } => {
                write!(f, "failed to train surrogate for {target}: {reason}")
            }
            BoError::InvalidConfig { details } => write!(f, "invalid configuration: {details}"),
            BoError::InvalidProblem { details } => write!(f, "invalid problem: {details}"),
            BoError::Internal { details } => write!(f, "internal invariant violated: {details}"),
            BoError::SnapshotMismatch { details } => {
                write!(f, "snapshot cannot be restored: {details}")
            }
        }
    }
}

impl Error for BoError {}
