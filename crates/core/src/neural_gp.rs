//! The neural-network Gaussian process (weight-space view) — the paper's surrogate.

use nnbo_linalg::{Cholesky, Matrix, Standardizer};
use nnbo_nn::{Activation, Adam, Mlp, MlpConfig, Optimizer};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::surrogate::{Prediction, SurrogateModel, SurrogateTrainer};

/// Configuration of a [`NeuralGp`] surrogate.
///
/// The defaults follow the paper's architecture (Fig. 1): a fully-connected network
/// with two hidden ReLU layers feeding an `M`-dimensional linear feature layer, and
/// joint maximum-likelihood training of the network weights with the prior scale
/// `σp` and the noise level `σn`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuralGpConfig {
    /// Hidden-layer widths of the feature network (two hidden layers by default).
    pub hidden_dims: Vec<usize>,
    /// Feature dimension `M` (width of the network's output layer).
    pub feature_dim: usize,
    /// Number of Adam iterations on the negative log marginal likelihood.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Initial `log σn` (noise standard deviation, in standardised target units).
    pub init_log_noise: f64,
    /// Initial `log σp` (prior weight scale).
    pub init_log_prior: f64,
    /// Lower clamp for `log σn`, keeping the likelihood well conditioned.
    pub min_log_noise: f64,
    /// Whether targets are standardised before fitting.
    pub standardize_targets: bool,
    /// Jitter added to the feature Gram matrix when its Cholesky factorization
    /// fails.
    pub jitter: f64,
}

impl Default for NeuralGpConfig {
    fn default() -> Self {
        NeuralGpConfig {
            hidden_dims: vec![50, 50],
            feature_dim: 32,
            epochs: 200,
            learning_rate: 0.01,
            init_log_noise: (0.1_f64).ln(),
            init_log_prior: 0.0,
            min_log_noise: (1e-3_f64).ln(),
            standardize_targets: true,
            jitter: 1e-8,
        }
    }
}

impl NeuralGpConfig {
    /// A cheaper configuration for tests and smoke experiments.
    pub fn fast() -> Self {
        NeuralGpConfig {
            hidden_dims: vec![32, 32],
            feature_dim: 16,
            epochs: 80,
            ..NeuralGpConfig::default()
        }
    }
}

/// A fitted neural-network Gaussian process (eqs. 8–12 of the paper).
///
/// The model is `f(x) = wᵀ φ(x)` with `w ~ N(0, σp²/M · I)` and observation noise
/// `σn²`; `φ` is the output of the feature network.  After training, prediction only
/// needs the `M × M` factorization of `A = ΦΦᵀ + (Mσn²/σp²)·I` and the vector
/// `A⁻¹Φy`, so its cost is independent of the number of training points.
#[derive(Debug, Clone)]
pub struct NeuralGp {
    mlp: Mlp,
    log_noise: f64,
    chol: Cholesky,
    alpha: Vec<f64>,
    /// Projected targets `v = Φ y` (standardised units), kept so a single
    /// appended observation can update `α = A⁻¹ v` in `O(M²)`.
    v: Vec<f64>,
    standardizer: Standardizer,
    train_size: usize,
    final_nll: f64,
}

impl NeuralGp {
    /// Trains a neural GP on `(xs, ys)` where `xs` are normalised design points.
    ///
    /// # Errors
    ///
    /// Returns a description of the failure when the training set is degenerate or
    /// the feature Gram matrix cannot be factored even with jitter.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &NeuralGpConfig,
        rng: &mut StdRng,
    ) -> Result<Self, String> {
        validate(xs, ys)?;
        let dim = xs[0].len();
        let x = Matrix::from_rows(xs);
        let (y, standardizer) = if config.standardize_targets {
            let (v, s) = nnbo_linalg::standardize(ys);
            (v, s)
        } else {
            (ys.to_vec(), Standardizer::identity())
        };

        let mlp_config = MlpConfig::new(dim, &config.hidden_dims, config.feature_dim)
            .with_hidden_activation(Activation::ReLU);
        let mut mlp = Mlp::new(&mlp_config, rng);
        let mut log_noise = config.init_log_noise + rng.gen_range(-0.1..0.1);
        let mut log_prior = config.init_log_prior + rng.gen_range(-0.1..0.1);

        let mut adam = Adam::with_learning_rate(config.learning_rate);
        let mut nn_params = mlp.flat_params();
        let mut last_nll = f64::INFINITY;
        for _ in 0..config.epochs {
            mlp.set_flat_params(&nn_params);
            let Some((nll, grad)) = loss_and_grad(&mlp, log_noise, log_prior, &x, &y, config)
            else {
                break;
            };
            last_nll = nll;
            // Flat parameter vector: [log σn, log σp, network weights...].
            let mut flat = Vec::with_capacity(2 + nn_params.len());
            flat.push(log_noise);
            flat.push(log_prior);
            flat.extend_from_slice(&nn_params);
            adam.step(&mut flat, &grad);
            log_noise = flat[0].clamp(config.min_log_noise, (2.0_f64).ln());
            log_prior = flat[1].clamp(-3.0, 3.0);
            nn_params.copy_from_slice(&flat[2..]);
        }
        mlp.set_flat_params(&nn_params);

        // Final factorization for prediction.
        let (chol, alpha, v, nll) = factorize(&mlp, log_noise, log_prior, &x, &y, config)
            .ok_or_else(|| "feature Gram matrix could not be factored".to_string())?;
        Ok(NeuralGp {
            mlp,
            log_noise,
            chol,
            alpha,
            v,
            standardizer,
            train_size: xs.len(),
            final_nll: if nll.is_finite() { nll } else { last_nll },
        })
    }

    /// Incorporates one new observation in `O(M²)` without retraining the
    /// feature network: the weight-space normal matrix `A = ΦΦᵀ + λI` grows by
    /// exactly `φ(x) φ(x)ᵀ`, which is a rank-1 Cholesky update, and
    /// `α = A⁻¹ Φy` follows from one `O(M²)` solve.
    ///
    /// The network weights, noise level and target standardiser stay frozen at
    /// their last trained values (the LinEasyBO-style trade); the stored
    /// likelihood is left at its last trained value as well.
    ///
    /// # Errors
    ///
    /// Returns a description when the appended observation is non-finite.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the network input dimension.
    pub fn append_observation(&self, x: &[f64], y: f64) -> Result<NeuralGp, String> {
        if x.iter().any(|v| !v.is_finite()) || !y.is_finite() {
            return Err("non-finite values in appended observation".to_string());
        }
        let phi = self.mlp.forward(x);
        let y_std = self.standardizer.transform(y);
        let mut chol = self.chol.clone();
        chol.rank_one_update(&phi);
        let mut v = self.v.clone();
        for (vi, p) in v.iter_mut().zip(phi.iter()) {
            *vi += p * y_std;
        }
        let alpha = chol.solve_vec(&v);
        Ok(NeuralGp {
            mlp: self.mlp.clone(),
            log_noise: self.log_noise,
            chol,
            alpha,
            v,
            standardizer: self.standardizer,
            train_size: self.train_size + 1,
            final_nll: self.final_nll,
        })
    }

    /// Number of training points the model was fitted on.
    pub fn train_size(&self) -> usize {
        self.train_size
    }

    /// Feature dimension `M`.
    pub fn feature_dim(&self) -> usize {
        self.mlp.output_dim()
    }

    /// Negative log marginal likelihood at the end of training (standardised units).
    pub fn nll(&self) -> f64 {
        self.final_nll
    }

    /// Fitted observation-noise standard deviation (standardised units).
    pub fn noise_std(&self) -> f64 {
        self.log_noise.exp()
    }
}

impl SurrogateModel for NeuralGp {
    /// Delegates to the batched path with a single row, so single-point and
    /// batched predictions are arithmetically identical.
    fn predict(&self, x: &[f64]) -> Prediction {
        self.predict_batch(std::slice::from_ref(&x.to_vec()))
            .pop()
            .expect("one query row yields one prediction")
    }

    /// Batched prediction: one feature-network forward pass over all queries,
    /// one mean matvec against `α`, and one vectorised batched triangular
    /// solve for the `M × M` weight-space system shared by the whole batch.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        if xs.is_empty() {
            return Vec::new();
        }
        let phi = self.mlp.forward_batch(&Matrix::from_rows(xs)); // Q×M
        let means = phi.matvec(&self.alpha);
        let v = self.chol.solve_lower_matrix(&phi.transpose()); // M×Q
        let mut quad = vec![0.0; xs.len()];
        for row in v.rows_iter() {
            for (q, u) in quad.iter_mut().zip(row.iter()) {
                *q += u * u;
            }
        }
        let noise_var = (2.0 * self.log_noise).exp();
        means
            .into_iter()
            .zip(quad)
            .map(|(mean_std, q)| {
                let var_std = noise_var * (1.0 + q);
                Prediction::new(
                    self.standardizer.inverse(mean_std),
                    self.standardizer.inverse_variance(var_std),
                )
            })
            .collect()
    }
}

/// Trainer for a single [`NeuralGp`] (implements [`SurrogateTrainer`]).
#[derive(Debug, Clone, Default)]
pub struct NeuralGpTrainer {
    /// Configuration used for every fit.
    pub config: NeuralGpConfig,
}

impl NeuralGpTrainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: NeuralGpConfig) -> Self {
        NeuralGpTrainer { config }
    }
}

impl SurrogateTrainer for NeuralGpTrainer {
    type Model = NeuralGp;

    fn fit(&self, xs: &[Vec<f64>], ys: &[f64], rng: &mut StdRng) -> Result<NeuralGp, String> {
        NeuralGp::fit(xs, ys, &self.config, rng)
    }

    fn update(
        &self,
        prev: &NeuralGp,
        x: &[f64],
        y: f64,
        _rng: &mut StdRng,
    ) -> Option<Result<NeuralGp, String>> {
        Some(prev.append_observation(x, y))
    }
}

fn validate(xs: &[Vec<f64>], ys: &[f64]) -> Result<(), String> {
    if xs.is_empty() {
        return Err("training set is empty".to_string());
    }
    if xs.len() != ys.len() {
        return Err(format!("{} inputs but {} targets", xs.len(), ys.len()));
    }
    let dim = xs[0].len();
    if dim == 0 || xs.iter().any(|x| x.len() != dim) {
        return Err("inconsistent input dimensions".to_string());
    }
    if xs.iter().flatten().any(|v| !v.is_finite()) || ys.iter().any(|v| !v.is_finite()) {
        return Err("non-finite training values".to_string());
    }
    Ok(())
}

/// Builds `A = ΦΦᵀ + λI`, its Cholesky factor and `α = A⁻¹Φy` at the given
/// parameters.  Returns `None` if the factorization fails.
fn factorize(
    mlp: &Mlp,
    log_noise: f64,
    log_prior: f64,
    x: &Matrix,
    y: &[f64],
    config: &NeuralGpConfig,
) -> Option<(Cholesky, Vec<f64>, Vec<f64>, f64)> {
    let out = mlp.forward_batch(x);
    let m = out.ncols();
    let n = out.nrows();
    let noise_var = (2.0 * log_noise).exp();
    let prior_var = (2.0 * log_prior).exp();
    let lambda = m as f64 * noise_var / prior_var;
    let mut a = out.transpose_matmul(&out);
    a.add_diag(lambda);
    let (chol, _) = Cholesky::decompose_with_jitter(&a, config.jitter, 10).ok()?;
    let v = out.vecmat(y);
    let alpha = chol.solve_vec(&v);
    // Negative log marginal likelihood (eq. 11, negated).
    let yty: f64 = y.iter().map(|t| t * t).sum();
    let v_alpha: f64 = v.iter().zip(alpha.iter()).map(|(a, b)| a * b).sum();
    let nll = 0.5 / noise_var * (yty - v_alpha) + 0.5 * chol.log_det()
        - 0.5 * m as f64 * lambda.ln()
        + 0.5 * n as f64 * (2.0 * std::f64::consts::PI * noise_var).ln();
    Some((chol, alpha, v, nll))
}

/// Negative log marginal likelihood (eq. 11, negated) and its gradient with respect
/// to `[log σn, log σp, network parameters...]` (eq. 12 for the network part).
pub(crate) fn loss_and_grad(
    mlp: &Mlp,
    log_noise: f64,
    log_prior: f64,
    x: &Matrix,
    y: &[f64],
    config: &NeuralGpConfig,
) -> Option<(f64, Vec<f64>)> {
    let cache = mlp.forward_cached(x);
    let out = cache.output();
    let n = out.nrows();
    let m = out.ncols();
    let noise_var = (2.0 * log_noise).exp();
    let prior_var = (2.0 * log_prior).exp();
    let lambda = m as f64 * noise_var / prior_var;

    let mut a = out.transpose_matmul(out);
    a.add_diag(lambda);
    let (chol, _) = Cholesky::decompose_with_jitter(&a, config.jitter, 10).ok()?;
    let v = out.vecmat(y);
    let alpha = chol.solve_vec(&v);
    let pred = out.matvec(&alpha);
    let residual: Vec<f64> = y.iter().zip(pred.iter()).map(|(t, p)| t - p).collect();

    let yty: f64 = y.iter().map(|t| t * t).sum();
    let v_alpha: f64 = v.iter().zip(alpha.iter()).map(|(a, b)| a * b).sum();
    let fit_term = 0.5 / noise_var * (yty - v_alpha);
    let log_det = chol.log_det();
    let nll = fit_term + 0.5 * log_det - 0.5 * m as f64 * lambda.ln()
        + 0.5 * n as f64 * (2.0 * std::f64::consts::PI * noise_var).ln();
    if !nll.is_finite() {
        return None;
    }

    // Gradient with respect to the feature matrix (in N x M orientation):
    //   ∂nll/∂Out = -(1/σn²)·r·αᵀ + Out·A⁻¹.
    let b = chol.inverse();
    let mut grad_out = out.matmul(&b);
    for i in 0..n {
        let scale = -residual[i] / noise_var;
        let row = grad_out.row_mut(i);
        for (g, a) in row.iter_mut().zip(alpha.iter()) {
            *g += scale * a;
        }
    }
    let (nn_grad, _) = mlp.backward(&cache, &grad_out);

    // Gradients with respect to log σn and log σp.
    let alpha_sq: f64 = alpha.iter().map(|a| a * a).sum();
    let trace_b = b.trace().expect("A is square");
    let lambda_sensitivity = alpha_sq / (2.0 * noise_var) + 0.5 * trace_b;
    let d_log_noise = -2.0 * fit_term + 2.0 * lambda * lambda_sensitivity - m as f64 + n as f64;
    let d_log_prior = -2.0 * lambda * lambda_sensitivity + m as f64;

    let mut grad = Vec::with_capacity(2 + mlp.num_params());
    grad.push(d_log_noise);
    grad.push(d_log_prior);
    grad.extend_from_slice(&nn_grad.to_flat());
    if grad.iter().any(|g| !g.is_finite()) {
        return None;
    }
    Some((nll, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnbo_nn::finite_difference_gradient;
    use rand::SeedableRng;

    fn toy_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (5.0 * x[0]).sin() + x[1] * x[1] - 0.5 * x[0] * x[1])
            .collect();
        (xs, ys)
    }

    #[test]
    fn nll_gradient_matches_finite_differences() {
        let (xs, ys) = toy_data(14, 1);
        let x = Matrix::from_rows(&xs);
        let (y, _) = nnbo_linalg::standardize(&ys);
        let config = NeuralGpConfig {
            hidden_dims: vec![6],
            feature_dim: 5,
            ..NeuralGpConfig::default()
        };
        let mlp_config = MlpConfig::new(2, &config.hidden_dims, config.feature_dim)
            .with_hidden_activation(Activation::Tanh);
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = Mlp::new(&mlp_config, &mut rng);
        let log_noise = (0.2_f64).ln();
        let log_prior = 0.3;

        let (_, analytic) = loss_and_grad(&mlp, log_noise, log_prior, &x, &y, &config).unwrap();

        let nn_params = mlp.flat_params();
        let mut flat = vec![log_noise, log_prior];
        flat.extend_from_slice(&nn_params);
        let f = |p: &[f64]| {
            let mut m = mlp.clone();
            m.set_flat_params(&p[2..]);
            loss_and_grad(&m, p[0], p[1], &x, &y, &config).unwrap().0
        };
        let fd = finite_difference_gradient(&f, &flat, 1e-5);
        let mut max_err = 0.0_f64;
        for (a, b) in analytic.iter().zip(fd.iter()) {
            max_err = max_err.max((a - b).abs() / (1.0 + b.abs()));
        }
        assert!(max_err < 1e-4, "max relative gradient error {max_err}");
    }

    #[test]
    fn fit_learns_a_smooth_function() {
        let (xs, ys) = toy_data(60, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let config = NeuralGpConfig {
            epochs: 400,
            ..NeuralGpConfig::default()
        };
        let model = NeuralGp::fit(&xs, &ys, &config, &mut rng).unwrap();
        // In-sample accuracy: RMSE well below the target standard deviation.
        let rmse = (xs
            .iter()
            .zip(ys.iter())
            .map(|(x, y)| {
                let p = model.predict(x);
                (p.mean - y) * (p.mean - y)
            })
            .sum::<f64>()
            / xs.len() as f64)
            .sqrt();
        let spread = nnbo_linalg::sample_std(&ys);
        assert!(
            rmse < 0.35 * spread,
            "rmse {rmse} vs target spread {spread}"
        );
    }

    #[test]
    fn prediction_interpolates_and_uncertainty_grows_off_data() {
        let xs: Vec<Vec<f64>> = (0..25).map(|i| vec![0.3 + 0.4 * i as f64 / 24.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).cos()).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let config = NeuralGpConfig {
            epochs: 400,
            ..NeuralGpConfig::default()
        };
        let model = NeuralGp::fit(&xs, &ys, &config, &mut rng).unwrap();
        let inside = model.predict(&[0.5]);
        assert!((inside.mean - (3.0_f64).cos()).abs() < 0.3);
        let far = model.predict(&[0.95]);
        assert!(far.variance > inside.variance);
    }

    #[test]
    fn predictions_are_in_original_units() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 500.0 + 100.0 * x[0]).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let model = NeuralGp::fit(&xs, &ys, &NeuralGpConfig::fast(), &mut rng).unwrap();
        let p = model.predict(&[0.5]);
        assert!((p.mean - 550.0).abs() < 30.0, "mean {}", p.mean);
    }

    #[test]
    fn degenerate_training_sets_are_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(NeuralGp::fit(&[], &[], &NeuralGpConfig::fast(), &mut rng).is_err());
        assert!(NeuralGp::fit(
            &[vec![0.1], vec![0.2]],
            &[1.0],
            &NeuralGpConfig::fast(),
            &mut rng
        )
        .is_err());
        assert!(
            NeuralGp::fit(&[vec![f64::NAN]], &[1.0], &NeuralGpConfig::fast(), &mut rng).is_err()
        );
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (xs, ys) = toy_data(20, 8);
        let fit = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = NeuralGp::fit(&xs, &ys, &NeuralGpConfig::fast(), &mut rng).unwrap();
            m.predict(&[0.3, 0.7]).mean
        };
        assert_eq!(fit(11), fit(11));
        assert_ne!(fit(11), fit(12));
    }

    #[test]
    fn prediction_cost_does_not_grow_with_training_set() {
        // The feature dimension, not the training-set size, determines the size of
        // the factorization used at prediction time.
        let (xs_small, ys_small) = toy_data(15, 9);
        let (xs_large, ys_large) = toy_data(120, 10);
        let mut rng = StdRng::seed_from_u64(13);
        let config = NeuralGpConfig::fast();
        let small = NeuralGp::fit(&xs_small, &ys_small, &config, &mut rng).unwrap();
        let large = NeuralGp::fit(&xs_large, &ys_large, &config, &mut rng).unwrap();
        assert_eq!(small.feature_dim(), large.feature_dim());
        assert_eq!(large.train_size(), 120);
    }
}
