//! The neural-network Gaussian process (weight-space view) — the paper's surrogate.

use nnbo_linalg::{Cholesky, Matrix, Standardizer};
use nnbo_nn::{Activation, Adam, Mlp, MlpConfig, Optimizer};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::surrogate::{Prediction, SurrogateModel, SurrogateTrainer};

/// Configuration of a [`NeuralGp`] surrogate.
///
/// The defaults follow the paper's architecture (Fig. 1): a fully-connected network
/// with two hidden ReLU layers feeding an `M`-dimensional linear feature layer, and
/// joint maximum-likelihood training of the network weights with the prior scale
/// `σp` and the noise level `σn`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuralGpConfig {
    /// Hidden-layer widths of the feature network (two hidden layers by default).
    pub hidden_dims: Vec<usize>,
    /// Feature dimension `M` (width of the network's output layer).
    pub feature_dim: usize,
    /// Number of Adam iterations on the negative log marginal likelihood.
    pub epochs: usize,
    /// Adam iterations of a warm-started refit ([`NeuralGp::fit_warm`]): the
    /// descent continues from the previous fit's parameters, so it needs far
    /// fewer steps than a cold training run.
    pub warm_epochs: usize,
    /// Gradient-RMS threshold below which a warm descent stops early (the
    /// continuation has already converged; spending the remaining
    /// [`NeuralGpConfig::warm_epochs`] would be wasted work).
    pub warm_grad_tol: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Initial `log σn` (noise standard deviation, in standardised target units).
    pub init_log_noise: f64,
    /// Initial `log σp` (prior weight scale).
    pub init_log_prior: f64,
    /// Lower clamp for `log σn`, keeping the likelihood well conditioned.
    pub min_log_noise: f64,
    /// Upper clamp for `log σn` during training (in standardised target units;
    /// the default `ln 2` was previously hard-coded in the training loop).
    pub max_log_noise: f64,
    /// Symmetric clamp for `log σp`: the prior scale is kept inside
    /// `[-prior_log_clamp, prior_log_clamp]` during training (the default `3`
    /// was previously hard-coded).
    pub prior_log_clamp: f64,
    /// Whether targets are standardised before fitting.
    pub standardize_targets: bool,
    /// Jitter added to the feature Gram matrix when its Cholesky factorization
    /// fails.
    pub jitter: f64,
}

impl Default for NeuralGpConfig {
    fn default() -> Self {
        NeuralGpConfig {
            hidden_dims: vec![50, 50],
            feature_dim: 32,
            epochs: 200,
            warm_epochs: 60,
            warm_grad_tol: 1e-4,
            learning_rate: 0.01,
            init_log_noise: (0.1_f64).ln(),
            init_log_prior: 0.0,
            min_log_noise: (1e-3_f64).ln(),
            max_log_noise: (2.0_f64).ln(),
            prior_log_clamp: 3.0,
            standardize_targets: true,
            jitter: 1e-8,
        }
    }
}

impl NeuralGpConfig {
    /// A cheaper configuration for tests and smoke experiments.
    pub fn fast() -> Self {
        NeuralGpConfig {
            hidden_dims: vec![32, 32],
            feature_dim: 16,
            epochs: 80,
            warm_epochs: 25,
            ..NeuralGpConfig::default()
        }
    }
}

/// A fitted neural-network Gaussian process (eqs. 8–12 of the paper).
///
/// The model is `f(x) = wᵀ φ(x)` with `w ~ N(0, σp²/M · I)` and observation noise
/// `σn²`; `φ` is the output of the feature network.  After training, prediction only
/// needs the `M × M` factorization of `A = ΦΦᵀ + (Mσn²/σp²)·I` and the vector
/// `A⁻¹Φy`, so its cost is independent of the number of training points.
///
/// The model serializes (all state is plain data — network weights, the
/// Cholesky factor, sufficient statistics), which is what lets the
/// optimization loop checkpoint and resume bit-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeuralGp {
    mlp: Mlp,
    log_noise: f64,
    /// `log σp` of the joint optimum, kept so a warm-started refit
    /// ([`NeuralGp::fit_warm`]) can continue the descent from the full flat
    /// parameter vector `[log σn, log σp, network weights...]`.
    log_prior: f64,
    chol: Cholesky,
    alpha: Vec<f64>,
    /// Projected targets `v = Φ y` (standardised units), kept so a single
    /// appended observation can update `α = A⁻¹ v` in `O(M²)`.
    v: Vec<f64>,
    /// `yᵀy` of the standardised targets, kept so an appended observation can
    /// refresh the likelihood in `O(M)` (the fit term needs `yᵀy − vᵀα`).
    yty: f64,
    standardizer: Standardizer,
    train_size: usize,
    final_nll: f64,
    /// Jitter the fit-time factorization of `A` needed (`0.0` for a clean
    /// factorization) — the per-model recovery record
    /// [`crate::SurrogateModel::resilience`] reports.
    fit_jitter: f64,
}

/// Reusable buffers of one training descent: the flat `[log σn, log σp,
/// weights...]` parameter vector handed to Adam, the matching gradient, and
/// the `M × M` matrices of the per-epoch symmetric inverse `A⁻¹`.
/// Allocated once per fit and reused across every epoch, so the warm loop's
/// per-epoch cost is the likelihood evaluation alone.
struct TrainScratch {
    flat: Vec<f64>,
    grad: Vec<f64>,
    inv: Matrix,
    inv_work: Matrix,
}

impl TrainScratch {
    fn new(num_params: usize) -> Self {
        TrainScratch {
            flat: Vec::with_capacity(num_params),
            grad: Vec::with_capacity(num_params),
            inv: Matrix::zeros(0, 0),
            inv_work: Matrix::zeros(0, 0),
        }
    }
}

/// End state of one Adam descent on the joint NLL: the clamped
/// hyper-parameters (the network weights are left in the `Mlp` itself).
struct Descent {
    log_noise: f64,
    log_prior: f64,
}

impl NeuralGp {
    /// Trains a neural GP on `(xs, ys)` where `xs` are normalised design points.
    ///
    /// # Errors
    ///
    /// Returns a description of the failure when the training set is
    /// degenerate, the feature Gram matrix cannot be factored even with
    /// jitter, or no finite likelihood is ever reached.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &NeuralGpConfig,
        rng: &mut StdRng,
    ) -> Result<Self, String> {
        Self::fit_warm(xs, ys, config, rng, None)
    }

    /// Trains a neural GP, optionally continuing Adam from a previous fit's
    /// parameters (the DNN-Opt-style amortized retraining of the ensemble
    /// members, mirroring `GpModel::fit_warm` for the classical GP).
    ///
    /// With `prev = None` this is exactly [`NeuralGp::fit`]: a cold training
    /// run of [`NeuralGpConfig::epochs`] Adam steps from a random network
    /// initialisation.  With `prev = Some(m)` (matching architecture;
    /// mismatches fall back to the cold path) the descent continues from `m`'s
    /// flat parameters `[log σn, log σp, network weights...]` for at most
    /// [`NeuralGpConfig::warm_epochs`] steps, stopping early once the gradient
    /// RMS drops below [`NeuralGpConfig::warm_grad_tol`].  The warm result is
    /// accepted unless its final NLL regresses past the evaluated likelihood
    /// of the cold initial point (the same random initialisation a cold fit
    /// would have started from), in which case the full cold training runs as
    /// a fallback and the best of warm, cold and the initial point itself is
    /// kept — so the returned NLL never exceeds the cold initial NLL.
    ///
    /// The rng is consumed identically on both paths (the cold initial state
    /// is always drawn, warm start taken or not), so a `fit_warm` call leaves
    /// the rng stream exactly where a `fit` call would.
    ///
    /// Targets are re-standardised on the data passed here; `prev` only seeds
    /// the optimizer, so it may come from [`NeuralGp::append_observation`]
    /// (whose standardiser is frozen at its own fit-time statistics) without
    /// affecting the new model's units.
    ///
    /// # Errors
    ///
    /// Same contract as [`NeuralGp::fit`].
    pub fn fit_warm(
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &NeuralGpConfig,
        rng: &mut StdRng,
        prev: Option<&NeuralGp>,
    ) -> Result<Self, String> {
        validate(xs, ys)?;
        if config.max_log_noise.is_nan()
            || config.min_log_noise.is_nan()
            || config.max_log_noise < config.min_log_noise
        {
            return Err(format!(
                "invalid log-noise clamp band [{}, {}]",
                config.min_log_noise, config.max_log_noise
            ));
        }
        if config.prior_log_clamp.is_nan() || config.prior_log_clamp < 0.0 {
            return Err(format!(
                "prior_log_clamp must be non-negative, got {}",
                config.prior_log_clamp
            ));
        }
        let dim = xs[0].len();
        let x = Matrix::from_rows(xs);
        let (y, standardizer) = if config.standardize_targets {
            let (v, s) = nnbo_linalg::standardize(ys);
            (v, s)
        } else {
            (ys.to_vec(), Standardizer::identity())
        };

        let mlp_config = MlpConfig::new(dim, &config.hidden_dims, config.feature_dim)
            .with_hidden_activation(Activation::ReLU);
        // Cold initial state — always drawn, in the same order as a cold fit,
        // so the rng stream is identical whether or not a warm start is taken.
        let cold_mlp = Mlp::new(&mlp_config, rng);
        let cold_log_noise = config.init_log_noise + rng.gen_range(-0.1..0.1);
        let cold_log_prior = config.init_log_prior + rng.gen_range(-0.1..0.1);
        let mut scratch = TrainScratch::new(2 + cold_mlp.num_params());

        let warm_prev = prev.filter(|p| p.mlp.config() == &mlp_config);
        let Some(prev) = warm_prev else {
            let mut mlp = cold_mlp;
            let descent = run_adam(
                &mut mlp,
                cold_log_noise,
                cold_log_prior,
                &x,
                &y,
                config,
                config.epochs,
                None,
                &mut scratch,
            );
            return finalize(mlp, descent, &x, &y, config, standardizer);
        };

        // Warm descent: continue Adam from the previous fit's parameters for
        // a reduced budget with a gradient-norm early stop.
        let mut warm_mlp = prev.mlp.clone();
        let warm_descent = run_adam(
            &mut warm_mlp,
            prev.log_noise
                .clamp(config.min_log_noise, config.max_log_noise),
            prev.log_prior
                .clamp(-config.prior_log_clamp, config.prior_log_clamp),
            &x,
            &y,
            config,
            config.warm_epochs,
            Some(config.warm_grad_tol),
            &mut scratch,
        );
        let warm_model = finalize(warm_mlp, warm_descent, &x, &y, config, standardizer);

        // Anchor: the likelihood of the *untrained* cold initial point — the
        // cheap reference that detects a stale or diverged warm start.
        let anchor_model = factorize(&cold_mlp, cold_log_noise, cold_log_prior, &x, &y, config)
            .and_then(|f| {
                f.nll.is_finite().then(|| NeuralGp {
                    mlp: cold_mlp.clone(),
                    log_noise: cold_log_noise,
                    log_prior: cold_log_prior,
                    chol: f.chol,
                    alpha: f.alpha,
                    v: f.v,
                    yty: f.yty,
                    standardizer,
                    train_size: xs.len(),
                    final_nll: f.nll,
                    fit_jitter: f.jitter,
                })
            });
        match (&warm_model, &anchor_model) {
            (Ok(w), Some(a)) if w.final_nll <= a.final_nll => return warm_model,
            (Ok(_), None) => return warm_model,
            _ => {}
        }

        // Regression fallback: the warm continuation is worse than not
        // training at all (or failed) — run the full cold training and keep
        // the best of warm, cold and the cold initial point itself.
        let mut cold_trained = cold_mlp;
        let cold_descent = run_adam(
            &mut cold_trained,
            cold_log_noise,
            cold_log_prior,
            &x,
            &y,
            config,
            config.epochs,
            None,
            &mut scratch,
        );
        let cold_model = finalize(cold_trained, cold_descent, &x, &y, config, standardizer);
        let first_error = warm_model.as_ref().err().cloned();
        let candidates = [warm_model.ok(), cold_model.ok(), anchor_model];
        candidates
            .into_iter()
            .flatten()
            .min_by(|a, b| {
                a.final_nll
                    .partial_cmp(&b.final_nll)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .ok_or_else(|| {
                first_error.unwrap_or_else(|| "no finite fit candidate survived".to_string())
            })
    }

    /// Incorporates one new observation in `O(M²)` without retraining the
    /// feature network: the weight-space normal matrix `A = ΦΦᵀ + λI` grows by
    /// exactly `φ(x) φ(x)ᵀ`, which is a rank-1 Cholesky update, and
    /// `α = A⁻¹ Φy` follows from one `O(M²)` solve.
    ///
    /// The network weights, noise level and target standardiser stay frozen at
    /// their last trained values (the LinEasyBO-style trade); the stored
    /// likelihood is *refreshed* for the extended data set under those frozen
    /// parameters (an `O(M)` update of the fit term plus the updated factor's
    /// log-determinant) — this is the drift signal the Bayesian-optimization
    /// loop's `RefitPolicy::NllDrift` reads to decide when the incremental
    /// model has degraded enough to warrant a full warm refit.
    ///
    /// # Errors
    ///
    /// Returns a description when the appended observation is non-finite.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the network input dimension.
    pub fn append_observation(&self, x: &[f64], y: f64) -> Result<NeuralGp, String> {
        if x.iter().any(|v| !v.is_finite()) || !y.is_finite() {
            return Err("non-finite values in appended observation".to_string());
        }
        let phi = self.mlp.forward(x);
        let y_std = self.standardizer.transform(y);
        let mut chol = self.chol.clone();
        chol.rank_one_update(&phi);
        let mut v = self.v.clone();
        for (vi, p) in v.iter_mut().zip(phi.iter()) {
            *vi += p * y_std;
        }
        let alpha = chol.solve_vec(&v);
        let yty = self.yty + y_std * y_std;
        // Likelihood of the extended data under the frozen parameters — the
        // shared closed form `factorize` evaluates, with every O(N·M²)
        // sufficient statistic already maintained incrementally.
        let v_alpha: f64 = v.iter().zip(alpha.iter()).map(|(a, b)| a * b).sum();
        let nll = weight_space_nll(
            yty,
            v_alpha,
            chol.log_det(),
            self.feature_dim() as f64,
            (self.train_size + 1) as f64,
            (2.0 * self.log_noise).exp(),
            (2.0 * self.log_prior).exp(),
        );
        Ok(NeuralGp {
            mlp: self.mlp.clone(),
            log_noise: self.log_noise,
            log_prior: self.log_prior,
            chol,
            alpha,
            v,
            yty,
            standardizer: self.standardizer,
            train_size: self.train_size + 1,
            final_nll: nll,
            fit_jitter: self.fit_jitter,
        })
    }

    /// Number of training points the model was fitted on.
    pub fn train_size(&self) -> usize {
        self.train_size
    }

    /// Feature dimension `M`.
    pub fn feature_dim(&self) -> usize {
        self.mlp.output_dim()
    }

    /// Negative log marginal likelihood of the model on its training set
    /// (standardised units): the end-of-training value for a fitted model,
    /// refreshed under the frozen parameters by every
    /// [`NeuralGp::append_observation`].  Always finite after a fit: trainings
    /// that never reach a finite likelihood are rejected with an error
    /// instead of storing `∞`, so warm-start regression comparisons are
    /// always meaningful.
    pub fn nll(&self) -> f64 {
        self.final_nll
    }

    /// Fitted observation-noise standard deviation (standardised units).
    pub fn noise_std(&self) -> f64 {
        self.log_noise.exp()
    }
}

impl SurrogateModel for NeuralGp {
    /// Delegates to the batched path with a single row, so single-point and
    /// batched predictions are arithmetically identical.
    fn predict(&self, x: &[f64]) -> Prediction {
        self.predict_batch(std::slice::from_ref(&x.to_vec()))
            .pop()
            .expect("one query row yields one prediction")
    }

    /// The model's maintained likelihood (see [`NeuralGp::nll`]), exposed as
    /// the drift signal for adaptive refit policies.
    fn training_nll(&self) -> Option<f64> {
        Some(self.final_nll)
    }

    /// Reports whether this model's fit-time factorization needed the jitter
    /// ladder.
    fn resilience(&self) -> crate::resilience::ModelResilience {
        crate::resilience::ModelResilience {
            jitter_recoveries: usize::from(self.fit_jitter > 0.0),
            dropped_members: 0,
        }
    }

    /// Batched prediction: one feature-network forward pass over all queries,
    /// one mean matvec against `α`, and one vectorised batched triangular
    /// solve for the `M × M` weight-space system shared by the whole batch.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        if xs.is_empty() {
            return Vec::new();
        }
        let phi = self.mlp.forward_batch(&Matrix::from_rows(xs)); // Q×M
        let means = phi.matvec(&self.alpha);
        let v = self.chol.solve_lower_matrix(&phi.transpose()); // M×Q
        let mut quad = vec![0.0; xs.len()];
        for row in v.rows_iter() {
            for (q, u) in quad.iter_mut().zip(row.iter()) {
                *q += u * u;
            }
        }
        let noise_var = (2.0 * self.log_noise).exp();
        means
            .into_iter()
            .zip(quad)
            .map(|(mean_std, q)| {
                let var_std = noise_var * (1.0 + q);
                Prediction::new(
                    self.standardizer.inverse(mean_std),
                    self.standardizer.inverse_variance(var_std),
                )
            })
            .collect()
    }
}

/// Trainer for a single [`NeuralGp`] (implements [`SurrogateTrainer`]).
#[derive(Debug, Clone, Default)]
pub struct NeuralGpTrainer {
    /// Configuration used for every fit.
    pub config: NeuralGpConfig,
}

impl NeuralGpTrainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: NeuralGpConfig) -> Self {
        NeuralGpTrainer { config }
    }
}

impl SurrogateTrainer for NeuralGpTrainer {
    type Model = NeuralGp;

    fn fit(&self, xs: &[Vec<f64>], ys: &[f64], rng: &mut StdRng) -> Result<NeuralGp, String> {
        NeuralGp::fit(xs, ys, &self.config, rng)
    }

    fn update(
        &self,
        prev: &NeuralGp,
        x: &[f64],
        y: f64,
        _rng: &mut StdRng,
    ) -> Option<Result<NeuralGp, String>> {
        Some(prev.append_observation(x, y))
    }
}

fn validate(xs: &[Vec<f64>], ys: &[f64]) -> Result<(), String> {
    if xs.is_empty() {
        return Err("training set is empty".to_string());
    }
    if xs.len() != ys.len() {
        return Err(format!("{} inputs but {} targets", xs.len(), ys.len()));
    }
    let dim = xs[0].len();
    if dim == 0 || xs.iter().any(|x| x.len() != dim) {
        return Err("inconsistent input dimensions".to_string());
    }
    if xs.iter().flatten().any(|v| !v.is_finite()) || ys.iter().any(|v| !v.is_finite()) {
        return Err("non-finite training values".to_string());
    }
    Ok(())
}

/// Runs up to `epochs` Adam steps on the joint NLL from the given network and
/// hyper-parameter state, mutating `mlp` in place.  With `grad_tol = Some(t)`
/// the descent stops early once the gradient RMS drops below `t` (the
/// warm-continuation mode); `None` reproduces the cold training loop exactly.
/// All per-epoch buffers live in `scratch`.
#[allow(clippy::too_many_arguments)] // internal descent core; one call site per mode
fn run_adam(
    mlp: &mut Mlp,
    mut log_noise: f64,
    mut log_prior: f64,
    x: &Matrix,
    y: &[f64],
    config: &NeuralGpConfig,
    epochs: usize,
    grad_tol: Option<f64>,
    scratch: &mut TrainScratch,
) -> Descent {
    let mut adam = Adam::with_learning_rate(config.learning_rate);
    let mut nn_params = mlp.flat_params();
    for _ in 0..epochs {
        mlp.set_flat_params(&nn_params);
        if loss_and_grad_into(
            mlp,
            log_noise,
            log_prior,
            x,
            y,
            config,
            &mut scratch.grad,
            &mut scratch.inv,
            &mut scratch.inv_work,
        )
        .is_none()
        {
            break;
        }
        if let Some(tol) = grad_tol {
            let rms = (scratch.grad.iter().map(|g| g * g).sum::<f64>() / scratch.grad.len() as f64)
                .sqrt();
            if rms <= tol {
                break;
            }
        }
        // Flat parameter vector: [log σn, log σp, network weights...].
        let flat = &mut scratch.flat;
        flat.clear();
        flat.push(log_noise);
        flat.push(log_prior);
        flat.extend_from_slice(&nn_params);
        adam.step(flat, &scratch.grad);
        log_noise = flat[0].clamp(config.min_log_noise, config.max_log_noise);
        log_prior = flat[1].clamp(-config.prior_log_clamp, config.prior_log_clamp);
        nn_params.copy_from_slice(&flat[2..]);
    }
    mlp.set_flat_params(&nn_params);
    Descent {
        log_noise,
        log_prior,
    }
}

/// Final factorization after a descent: builds the prediction state and
/// stores the likelihood *at the final parameters*.  A descent whose end
/// point has no finite likelihood is an error, never a model carrying `∞` or
/// a stale earlier-epoch value — the warm-start regression comparison depends
/// on `nll()` describing exactly the parameters the model predicts with.
fn finalize(
    mlp: Mlp,
    descent: Descent,
    x: &Matrix,
    y: &[f64],
    config: &NeuralGpConfig,
    standardizer: Standardizer,
) -> Result<NeuralGp, String> {
    let f = factorize(&mlp, descent.log_noise, descent.log_prior, x, y, config)
        .ok_or_else(|| "feature Gram matrix could not be factored".to_string())?;
    if !f.nll.is_finite() {
        return Err("no finite likelihood at the final parameters".to_string());
    }
    Ok(NeuralGp {
        mlp,
        log_noise: descent.log_noise,
        log_prior: descent.log_prior,
        chol: f.chol,
        alpha: f.alpha,
        v: f.v,
        yty: f.yty,
        standardizer,
        train_size: x.nrows(),
        final_nll: f.nll,
        fit_jitter: f.jitter,
    })
}

/// Negative log marginal likelihood (eq. 11, negated) of the weight-space
/// model from its sufficient statistics — the single closed form shared by
/// [`factorize`], the training loop's [`loss_and_grad_into`] and the
/// incremental [`NeuralGp::append_observation`], so the fit-time and
/// incrementally refreshed likelihoods (the drift signal) can never drift
/// apart through divergent copies of the formula.
fn weight_space_nll(
    yty: f64,
    v_alpha: f64,
    log_det: f64,
    m: f64,
    n: f64,
    noise_var: f64,
    prior_var: f64,
) -> f64 {
    let lambda = m * noise_var / prior_var;
    0.5 / noise_var * (yty - v_alpha) + 0.5 * log_det - 0.5 * m * lambda.ln()
        + 0.5 * n * (2.0 * std::f64::consts::PI * noise_var).ln()
}

/// Prediction-state pieces of one factorization at fixed parameters:
/// the Cholesky factor of `A = ΦΦᵀ + λI`, `α = A⁻¹Φy`, the projected targets
/// `v = Φy`, `yᵀy` and the likelihood.
struct Factorized {
    chol: Cholesky,
    alpha: Vec<f64>,
    v: Vec<f64>,
    yty: f64,
    nll: f64,
    /// Jitter the factorization needed (`0.0` when the plain decomposition
    /// succeeded) — kept as the model's recovery record.
    jitter: f64,
}

/// Builds `A = ΦΦᵀ + λI`, its Cholesky factor, `α = A⁻¹Φy`, `yᵀy` and the
/// likelihood at the given parameters.  Returns `None` if the factorization
/// fails.
fn factorize(
    mlp: &Mlp,
    log_noise: f64,
    log_prior: f64,
    x: &Matrix,
    y: &[f64],
    config: &NeuralGpConfig,
) -> Option<Factorized> {
    let out = mlp.forward_batch(x);
    let m = out.ncols();
    let n = out.nrows();
    let noise_var = (2.0 * log_noise).exp();
    let prior_var = (2.0 * log_prior).exp();
    let lambda = m as f64 * noise_var / prior_var;
    let mut a = out.transpose_matmul_self();
    a.add_diag(lambda);
    let (chol, jitter) = Cholesky::decompose_with_jitter(&a, config.jitter, 10).ok()?;
    let v = out.vecmat(y);
    let alpha = chol.solve_vec(&v);
    // Negative log marginal likelihood (eq. 11, negated).
    let yty: f64 = y.iter().map(|t| t * t).sum();
    let v_alpha: f64 = v.iter().zip(alpha.iter()).map(|(a, b)| a * b).sum();
    let nll = weight_space_nll(
        yty,
        v_alpha,
        chol.log_det(),
        m as f64,
        n as f64,
        noise_var,
        prior_var,
    );
    Some(Factorized {
        chol,
        alpha,
        v,
        yty,
        nll,
        jitter,
    })
}

/// Negative log marginal likelihood (eq. 11, negated) and its gradient with respect
/// to `[log σn, log σp, network parameters...]` (eq. 12 for the network part).
/// Exposed for the finite-difference and warm-anchor tests; the training loop
/// itself goes through the buffer-reusing [`loss_and_grad_into`].
#[cfg(test)]
pub(crate) fn loss_and_grad(
    mlp: &Mlp,
    log_noise: f64,
    log_prior: f64,
    x: &Matrix,
    y: &[f64],
    config: &NeuralGpConfig,
) -> Option<(f64, Vec<f64>)> {
    let mut grad = Vec::new();
    let mut inv = Matrix::zeros(0, 0);
    let mut inv_work = Matrix::zeros(0, 0);
    loss_and_grad_into(
        mlp,
        log_noise,
        log_prior,
        x,
        y,
        config,
        &mut grad,
        &mut inv,
        &mut inv_work,
    )
    .map(|nll| (nll, grad))
}

/// [`loss_and_grad`] writing the gradient into a caller-owned buffer and the
/// symmetric inverse into caller-owned matrices, so the training loop reuses
/// one set of allocations across every epoch.
#[allow(clippy::too_many_arguments)]
fn loss_and_grad_into(
    mlp: &Mlp,
    log_noise: f64,
    log_prior: f64,
    x: &Matrix,
    y: &[f64],
    config: &NeuralGpConfig,
    grad: &mut Vec<f64>,
    inv: &mut Matrix,
    inv_work: &mut Matrix,
) -> Option<f64> {
    let cache = mlp.forward_cached(x);
    let out = cache.output();
    let n = out.nrows();
    let m = out.ncols();
    let noise_var = (2.0 * log_noise).exp();
    let prior_var = (2.0 * log_prior).exp();
    let lambda = m as f64 * noise_var / prior_var;

    let mut a = out.transpose_matmul_self();
    a.add_diag(lambda);
    let (chol, _) = Cholesky::decompose_with_jitter(&a, config.jitter, 10).ok()?;
    let v = out.vecmat(y);
    let alpha = chol.solve_vec(&v);
    let pred = out.matvec(&alpha);
    let residual: Vec<f64> = y.iter().zip(pred.iter()).map(|(t, p)| t - p).collect();

    let yty: f64 = y.iter().map(|t| t * t).sum();
    let v_alpha: f64 = v.iter().zip(alpha.iter()).map(|(a, b)| a * b).sum();
    // `fit_term` is reused by the log-noise gradient below; the likelihood
    // itself goes through the shared closed form.
    let fit_term = 0.5 / noise_var * (yty - v_alpha);
    let nll = weight_space_nll(
        yty,
        v_alpha,
        chol.log_det(),
        m as f64,
        n as f64,
        noise_var,
        prior_var,
    );
    if !nll.is_finite() {
        return None;
    }

    // Gradient with respect to the feature matrix (in N x M orientation):
    //   ∂nll/∂Out = -(1/σn²)·r·αᵀ + Out·A⁻¹.
    chol.symmetric_inverse_into(inv, inv_work);
    let b = &*inv;
    let mut grad_out = out.matmul(b);
    for i in 0..n {
        let scale = -residual[i] / noise_var;
        let row = grad_out.row_mut(i);
        for (g, a) in row.iter_mut().zip(alpha.iter()) {
            *g += scale * a;
        }
    }
    let (nn_grad, _) = mlp.backward(&cache, &grad_out);

    // Gradients with respect to log σn and log σp.
    let alpha_sq: f64 = alpha.iter().map(|a| a * a).sum();
    let trace_b = b.trace().expect("A is square");
    let lambda_sensitivity = alpha_sq / (2.0 * noise_var) + 0.5 * trace_b;
    let d_log_noise = -2.0 * fit_term + 2.0 * lambda * lambda_sensitivity - m as f64 + n as f64;
    let d_log_prior = -2.0 * lambda * lambda_sensitivity + m as f64;

    grad.clear();
    grad.reserve(2 + mlp.num_params());
    grad.push(d_log_noise);
    grad.push(d_log_prior);
    nn_grad.append_flat(grad);
    if grad.iter().any(|g| !g.is_finite()) {
        return None;
    }
    Some(nll)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnbo_nn::finite_difference_gradient;
    use rand::SeedableRng;

    fn toy_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (5.0 * x[0]).sin() + x[1] * x[1] - 0.5 * x[0] * x[1])
            .collect();
        (xs, ys)
    }

    #[test]
    fn nll_gradient_matches_finite_differences() {
        let (xs, ys) = toy_data(14, 1);
        let x = Matrix::from_rows(&xs);
        let (y, _) = nnbo_linalg::standardize(&ys);
        let config = NeuralGpConfig {
            hidden_dims: vec![6],
            feature_dim: 5,
            ..NeuralGpConfig::default()
        };
        let mlp_config = MlpConfig::new(2, &config.hidden_dims, config.feature_dim)
            .with_hidden_activation(Activation::Tanh);
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = Mlp::new(&mlp_config, &mut rng);
        let log_noise = (0.2_f64).ln();
        let log_prior = 0.3;

        let (_, analytic) = loss_and_grad(&mlp, log_noise, log_prior, &x, &y, &config).unwrap();

        let nn_params = mlp.flat_params();
        let mut flat = vec![log_noise, log_prior];
        flat.extend_from_slice(&nn_params);
        let f = |p: &[f64]| {
            let mut m = mlp.clone();
            m.set_flat_params(&p[2..]);
            loss_and_grad(&m, p[0], p[1], &x, &y, &config).unwrap().0
        };
        let fd = finite_difference_gradient(&f, &flat, 1e-5);
        let mut max_err = 0.0_f64;
        for (a, b) in analytic.iter().zip(fd.iter()) {
            max_err = max_err.max((a - b).abs() / (1.0 + b.abs()));
        }
        assert!(max_err < 1e-4, "max relative gradient error {max_err}");
    }

    #[test]
    fn fit_learns_a_smooth_function() {
        let (xs, ys) = toy_data(60, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let config = NeuralGpConfig {
            epochs: 400,
            ..NeuralGpConfig::default()
        };
        let model = NeuralGp::fit(&xs, &ys, &config, &mut rng).unwrap();
        // In-sample accuracy: RMSE well below the target standard deviation.
        let rmse = (xs
            .iter()
            .zip(ys.iter())
            .map(|(x, y)| {
                let p = model.predict(x);
                (p.mean - y) * (p.mean - y)
            })
            .sum::<f64>()
            / xs.len() as f64)
            .sqrt();
        let spread = nnbo_linalg::sample_std(&ys);
        assert!(
            rmse < 0.35 * spread,
            "rmse {rmse} vs target spread {spread}"
        );
    }

    #[test]
    fn prediction_interpolates_and_uncertainty_grows_off_data() {
        let xs: Vec<Vec<f64>> = (0..25).map(|i| vec![0.3 + 0.4 * i as f64 / 24.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).cos()).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let config = NeuralGpConfig {
            epochs: 400,
            ..NeuralGpConfig::default()
        };
        let model = NeuralGp::fit(&xs, &ys, &config, &mut rng).unwrap();
        let inside = model.predict(&[0.5]);
        assert!((inside.mean - (3.0_f64).cos()).abs() < 0.3);
        let far = model.predict(&[0.95]);
        assert!(far.variance > inside.variance);
    }

    #[test]
    fn predictions_are_in_original_units() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 500.0 + 100.0 * x[0]).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let model = NeuralGp::fit(&xs, &ys, &NeuralGpConfig::fast(), &mut rng).unwrap();
        let p = model.predict(&[0.5]);
        assert!((p.mean - 550.0).abs() < 30.0, "mean {}", p.mean);
    }

    #[test]
    fn degenerate_training_sets_are_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(NeuralGp::fit(&[], &[], &NeuralGpConfig::fast(), &mut rng).is_err());
        assert!(NeuralGp::fit(
            &[vec![0.1], vec![0.2]],
            &[1.0],
            &NeuralGpConfig::fast(),
            &mut rng
        )
        .is_err());
        assert!(
            NeuralGp::fit(&[vec![f64::NAN]], &[1.0], &NeuralGpConfig::fast(), &mut rng).is_err()
        );
    }

    #[test]
    fn warm_refit_never_regresses_past_the_cold_initial_point() {
        // The regression-fallback contract: whatever the warm continuation
        // does, the returned NLL never exceeds the likelihood of the cold
        // initial point the same rng would have started a cold fit from.
        let config = NeuralGpConfig {
            hidden_dims: vec![16, 16],
            feature_dim: 8,
            epochs: 60,
            warm_epochs: 15,
            ..NeuralGpConfig::default()
        };
        for seed in [1u64, 2, 3, 4, 5] {
            let (xs, ys) = toy_data(22, seed);
            let mut rng = StdRng::seed_from_u64(seed * 10 + 1);
            let prev = NeuralGp::fit(&xs, &ys, &config, &mut rng).unwrap();

            let mut xs2 = xs.clone();
            let mut ys2 = ys.clone();
            xs2.push(vec![0.51, 0.49]);
            ys2.push((5.0 * 0.51_f64).sin() + 0.49 * 0.49 - 0.5 * 0.51 * 0.49);
            let warm_seed = seed * 10 + 2;
            let mut warm_rng = StdRng::seed_from_u64(warm_seed);
            let warm = NeuralGp::fit_warm(&xs2, &ys2, &config, &mut warm_rng, Some(&prev)).unwrap();
            assert!(warm.nll().is_finite());

            // Replay the cold initial point the same seed would draw and
            // evaluate (not train) its likelihood.
            let mut replay = StdRng::seed_from_u64(warm_seed);
            let mlp_config = MlpConfig::new(2, &config.hidden_dims, config.feature_dim)
                .with_hidden_activation(Activation::ReLU);
            let cold_mlp = Mlp::new(&mlp_config, &mut replay);
            let ln = config.init_log_noise + replay.gen_range(-0.1..0.1);
            let lp = config.init_log_prior + replay.gen_range(-0.1..0.1);
            let (y_std, _) = nnbo_linalg::standardize(&ys2);
            let x = Matrix::from_rows(&xs2);
            let anchor = factorize(&cold_mlp, ln, lp, &x, &y_std, &config)
                .unwrap()
                .nll;
            assert!(
                warm.nll() <= anchor + 1e-9,
                "warm NLL {} regressed past the cold initial NLL {anchor}",
                warm.nll()
            );

            // The rng stream ends exactly where a cold fit's would.
            let mut cold_rng = StdRng::seed_from_u64(warm_seed);
            let _ = NeuralGp::fit(&xs2, &ys2, &config, &mut cold_rng).unwrap();
            assert_eq!(warm_rng.gen::<u64>(), cold_rng.gen::<u64>());
        }
    }

    #[test]
    fn append_observation_refreshes_the_nll_under_frozen_parameters() {
        let (xs, ys) = toy_data(20, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let model = NeuralGp::fit(&xs, &ys, &NeuralGpConfig::fast(), &mut rng).unwrap();
        let x_new = vec![0.41_f64, 0.59];
        let y_new = (5.0 * x_new[0]).sin() + x_new[1] * x_new[1] - 0.5 * x_new[0] * x_new[1];
        let updated = model.append_observation(&x_new, y_new).unwrap();
        assert!(updated.nll().is_finite());
        assert_ne!(updated.nll(), model.nll(), "NLL must be refreshed");
        // Reference: re-factorize the extended data set at the frozen
        // parameters and the frozen standardiser.
        let mut xs2 = xs.clone();
        xs2.push(x_new);
        let y2_std: Vec<f64> = ys
            .iter()
            .chain(std::iter::once(&y_new))
            .map(|&v| model.standardizer.transform(v))
            .collect();
        let x2 = Matrix::from_rows(&xs2);
        let reference = factorize(
            &model.mlp,
            model.log_noise,
            model.log_prior,
            &x2,
            &y2_std,
            &NeuralGpConfig::fast(),
        )
        .unwrap()
        .nll;
        assert!(
            (updated.nll() - reference).abs() < 1e-6 * (1.0 + reference.abs()),
            "incremental NLL {} vs refactorized {reference}",
            updated.nll()
        );
    }

    #[test]
    fn warm_refit_is_deterministic() {
        let (xs, ys) = toy_data(20, 14);
        let config = NeuralGpConfig::fast();
        let mut rng = StdRng::seed_from_u64(15);
        let prev = NeuralGp::fit(&xs, &ys, &config, &mut rng).unwrap();
        let refit = |seed: u64| {
            let mut r = StdRng::seed_from_u64(seed);
            let m = NeuralGp::fit_warm(&xs, &ys, &config, &mut r, Some(&prev)).unwrap();
            (m.nll(), m.predict(&[0.3, 0.7]).mean)
        };
        assert_eq!(refit(16), refit(16));
    }

    #[test]
    fn architecture_mismatch_falls_back_to_the_cold_path() {
        let (xs, ys) = toy_data(18, 6);
        let small = NeuralGpConfig {
            hidden_dims: vec![8],
            feature_dim: 4,
            epochs: 20,
            ..NeuralGpConfig::default()
        };
        let big = NeuralGpConfig {
            hidden_dims: vec![12],
            feature_dim: 6,
            epochs: 20,
            ..NeuralGpConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let prev = NeuralGp::fit(&xs, &ys, &small, &mut rng).unwrap();
        let warm =
            NeuralGp::fit_warm(&xs, &ys, &big, &mut StdRng::seed_from_u64(3), Some(&prev)).unwrap();
        let cold = NeuralGp::fit(&xs, &ys, &big, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(warm.nll(), cold.nll());
        let q = [0.3, 0.7];
        assert_eq!(warm.predict(&q).mean, cold.predict(&q).mean);
        assert_eq!(warm.predict(&q).variance, cold.predict(&q).variance);
    }

    #[test]
    fn noise_and_prior_clamps_come_from_config() {
        // The defaults reproduce the previously hard-coded training bounds.
        let defaults = NeuralGpConfig::default();
        assert_eq!(defaults.max_log_noise, (2.0_f64).ln());
        assert_eq!(defaults.prior_log_clamp, 3.0);
        // A degenerate clamp band pins the fitted noise to the configured value.
        let pinned = (0.05_f64).ln();
        let config = NeuralGpConfig {
            min_log_noise: pinned,
            max_log_noise: pinned,
            epochs: 30,
            ..NeuralGpConfig::fast()
        };
        let (xs, ys) = toy_data(16, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let model = NeuralGp::fit(&xs, &ys, &config, &mut rng).unwrap();
        assert!(
            (model.noise_std() - 0.05).abs() < 1e-12,
            "noise {} escaped the configured clamp",
            model.noise_std()
        );
    }

    #[test]
    fn inverted_clamp_bands_are_rejected_not_panicking() {
        let (xs, ys) = toy_data(10, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let inverted = NeuralGpConfig {
            max_log_noise: -10.0, // below the default min_log_noise
            ..NeuralGpConfig::fast()
        };
        assert!(NeuralGp::fit(&xs, &ys, &inverted, &mut rng).is_err());
        let negative_prior = NeuralGpConfig {
            prior_log_clamp: -1.0,
            ..NeuralGpConfig::fast()
        };
        assert!(NeuralGp::fit(&xs, &ys, &negative_prior, &mut rng).is_err());
    }

    #[test]
    fn unreachable_likelihood_is_an_error_not_an_infinite_model() {
        // Unstandardised astronomically-scaled targets overflow yᵀy, so no
        // epoch (and no final factorization) ever yields a finite likelihood;
        // the fit must fail instead of storing final_nll = ∞, which would
        // poison every warm-start regression comparison downstream.
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
        let ys: Vec<f64> = (0..12)
            .map(|i| if i % 2 == 0 { 1e160 } else { -1e160 })
            .collect();
        let config = NeuralGpConfig {
            standardize_targets: false,
            ..NeuralGpConfig::fast()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let err = NeuralGp::fit(&xs, &ys, &config, &mut rng).unwrap_err();
        assert!(err.contains("finite"), "unexpected error: {err}");
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (xs, ys) = toy_data(20, 8);
        let fit = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = NeuralGp::fit(&xs, &ys, &NeuralGpConfig::fast(), &mut rng).unwrap();
            m.predict(&[0.3, 0.7]).mean
        };
        assert_eq!(fit(11), fit(11));
        assert_ne!(fit(11), fit(12));
    }

    #[test]
    fn prediction_cost_does_not_grow_with_training_set() {
        // The feature dimension, not the training-set size, determines the size of
        // the factorization used at prediction time.
        let (xs_small, ys_small) = toy_data(15, 9);
        let (xs_large, ys_large) = toy_data(120, 10);
        let mut rng = StdRng::seed_from_u64(13);
        let config = NeuralGpConfig::fast();
        let small = NeuralGp::fit(&xs_small, &ys_small, &config, &mut rng).unwrap();
        let large = NeuralGp::fit(&xs_large, &ys_large, &config, &mut rng).unwrap();
        assert_eq!(small.feature_dim(), large.feature_dim());
        assert_eq!(large.train_size(), 120);
    }
}
