//! Model averaging over independently initialised neural GPs (eq. 13).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::neural_gp::{NeuralGp, NeuralGpConfig};
use crate::surrogate::{Prediction, SurrogateModel, SurrogateTrainer};

/// Configuration of a [`NeuralGpEnsemble`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleConfig {
    /// Number of ensemble members `K` (5 in the paper).
    pub members: usize,
    /// Configuration of each member.
    pub member_config: NeuralGpConfig,
    /// Train the members on separate threads (the paper notes the ensemble can be
    /// constructed in parallel).
    pub parallel: bool,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig {
            members: 5,
            member_config: NeuralGpConfig::default(),
            parallel: true,
        }
    }
}

impl EnsembleConfig {
    /// A cheaper configuration (3 members, fast member settings) for tests.
    pub fn fast() -> Self {
        EnsembleConfig {
            members: 3,
            member_config: NeuralGpConfig::fast(),
            parallel: false,
        }
    }
}

/// An ensemble of `K` independently initialised [`NeuralGp`] models whose
/// predictions are combined by moment matching (eq. 13 of the paper):
///
/// ```text
/// µ(x)  = (1/K) Σ µ_k(x)
/// σ²(x) = (1/K) Σ (µ_k²(x) + σ_k²(x)) − µ²(x)
/// ```
///
/// The ensemble both averages out the random fluctuations of individual trainings
/// and widens the predicted uncertainty where the members disagree, which is what
/// the acquisition function needs for reliable exploration.
///
/// # Graceful degradation
///
/// A fit keeps every member that trained and drops the rest, as long as at
/// least a *quorum* — `max(1, K/2)` of the `K` configured members — survived;
/// below quorum the whole fit fails (the first member's error is reported)
/// and the optimization loop falls back to its previous surrogates.  The
/// planned member count is kept so [`NeuralGpEnsemble::dropped_members`]
/// reports how many members this ensemble is short, which the loop folds into
/// its run-level recovery log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeuralGpEnsemble {
    members: Vec<NeuralGp>,
    /// Members the configuration asked for (`members.len()` ≤ this; the
    /// difference is the drop count).
    planned_members: usize,
}

impl NeuralGpEnsemble {
    /// Trains `config.members` neural GPs with different random initialisations.
    ///
    /// # Errors
    ///
    /// Returns the first member's error message if every member fails to train; as
    /// long as at least one member trains the ensemble is usable.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &EnsembleConfig,
        rng: &mut StdRng,
    ) -> Result<Self, String> {
        Self::fit_warm(xs, ys, config, rng, None)
    }

    /// Trains the ensemble, warm-starting member `k` from `prev`'s member `k`
    /// where available ([`NeuralGp::fit_warm`]): each member continues Adam
    /// from its predecessor's network weights and hyper-parameters for the
    /// reduced [`crate::NeuralGpConfig::warm_epochs`] budget, with the
    /// per-member cold-fallback guarantee that its final NLL never exceeds the
    /// cold initial point's.  Members without a predecessor (a previously
    /// failed member, a grown ensemble, an architecture change) train cold.
    ///
    /// With `prev = None` this is exactly [`NeuralGpEnsemble::fit`], drawing
    /// the same member seeds from `rng`.
    ///
    /// # Errors
    ///
    /// Same contract as [`NeuralGpEnsemble::fit`].
    pub fn fit_warm(
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &EnsembleConfig,
        rng: &mut StdRng,
        prev: Option<&NeuralGpEnsemble>,
    ) -> Result<Self, String> {
        assert!(config.members > 0, "ensemble needs at least one member");
        let seeds: Vec<u64> = (0..config.members).map(|_| rng.gen()).collect();
        Self::fit_with_seeds(xs, ys, config, &seeds, prev)
    }

    /// Trains one member per seed (each member's rng derives solely from its
    /// seed, so the result is deterministic and independent of scheduling),
    /// warm-starting member `k` from `prev`'s member `k` when given.
    /// This is the core [`NeuralGpEnsemble::fit_warm`] delegates to, and what
    /// [`NeuralGpEnsembleTrainer::fit_many`] uses to train several outputs'
    /// ensembles concurrently from pre-drawn seeds.
    pub(crate) fn fit_with_seeds(
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &EnsembleConfig,
        seeds: &[u64],
        prev: Option<&NeuralGpEnsemble>,
    ) -> Result<Self, String> {
        assert!(!seeds.is_empty(), "ensemble needs at least one member");
        let jobs: Vec<MemberJob<'_>> = seeds
            .iter()
            .enumerate()
            .map(|(k, &seed)| MemberJob {
                ys,
                seed,
                prev: prev.and_then(|e| e.members().get(k)),
            })
            .collect();
        let results = train_members(xs, &jobs, config);
        Self::from_member_results(results)
    }

    /// Assembles an ensemble from per-member training results, applying the
    /// minimum-quorum rule: the ensemble is usable as long as at least
    /// `max(1, planned/2)` members trained (failed members are dropped and
    /// counted), otherwise the first member's error is reported.
    fn from_member_results(results: Vec<Result<NeuralGp, String>>) -> Result<Self, String> {
        let planned = results.len();
        let quorum = (planned / 2).max(1);
        let mut members = Vec::with_capacity(planned);
        let mut first_error = None;
        for r in results {
            match r {
                Ok(m) => members.push(m),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if members.len() < quorum {
            let reason = first_error.unwrap_or_else(|| "no ensemble member trained".into());
            return Err(if members.is_empty() {
                reason
            } else {
                format!(
                    "only {} of {planned} ensemble members trained (quorum {quorum}): {reason}",
                    members.len()
                )
            });
        }
        Ok(NeuralGpEnsemble {
            members,
            planned_members: planned,
        })
    }

    /// Number of successfully trained members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the ensemble has no members (never the case after a successful
    /// [`Self::fit`]).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The individual members.
    pub fn members(&self) -> &[NeuralGp] {
        &self.members
    }

    /// Members the fit planned but dropped because their training failed
    /// (zero for a fully healthy ensemble).
    pub fn dropped_members(&self) -> usize {
        self.planned_members.saturating_sub(self.members.len())
    }

    /// Incorporates one new observation into every member in `O(K·M²)` via
    /// the members' rank-1 updates ([`NeuralGp::append_observation`]), without
    /// retraining any feature network.
    ///
    /// # Errors
    ///
    /// Returns the first member's error message if any member rejects the
    /// observation (the ensemble is only replaced as a whole).
    pub fn append_observation(&self, x: &[f64], y: f64) -> Result<NeuralGpEnsemble, String> {
        let members = self
            .members
            .iter()
            .map(|m| m.append_observation(x, y))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(NeuralGpEnsemble {
            members,
            planned_members: self.planned_members,
        })
    }
}

/// One member training of a flat outputs × members fan-out: the target
/// column, the seed its rng derives from, and (for warm-started refits) the
/// previous refit's corresponding member.
struct MemberJob<'a> {
    ys: &'a [f64],
    seed: u64,
    prev: Option<&'a NeuralGp>,
}

/// Trains one [`NeuralGp`] per job over the shared design points, in job
/// order, warm-starting from each job's previous member when present.
///
/// With `config.parallel` on a multi-core machine the flat job list is split
/// into contiguous bands over at most `min(cores, 8, jobs)` scoped worker
/// threads — one layer of parallelism regardless of how many outputs ×
/// members the jobs span, so the thread count never exceeds the hardware.
/// Every member's rng derives solely from its job seed, making the results
/// bit-identical to the sequential loop.
fn train_members(
    xs: &[Vec<f64>],
    jobs: &[MemberJob<'_>],
    config: &EnsembleConfig,
) -> Vec<Result<NeuralGp, String>> {
    let participants = nnbo_pool::WorkerPool::global().participants();
    let workers = if config.parallel {
        participants.min(8).min(jobs.len())
    } else {
        1
    };
    train_members_with_workers(xs, jobs, config, workers)
}

/// [`train_members`] with an explicit worker count, so tests can force the
/// banded scoped-thread path (and its panic handling) on any machine.
fn train_members_with_workers(
    xs: &[Vec<f64>],
    jobs: &[MemberJob<'_>],
    config: &EnsembleConfig,
    workers: usize,
) -> Vec<Result<NeuralGp, String>> {
    let fit_job = |job: &MemberJob<'_>| {
        let mut member_rng = StdRng::seed_from_u64(job.seed);
        NeuralGp::fit_warm(xs, job.ys, &config.member_config, &mut member_rng, job.prev)
    };
    if workers <= 1 {
        return jobs.iter().map(fit_job).collect();
    }
    let band = jobs.len().div_ceil(workers);
    let mut slots: Vec<Vec<Result<NeuralGp, String>>> = Vec::new();
    slots.resize_with(jobs.len().div_ceil(band), Vec::new);
    let fit_job = &fit_job;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = jobs
        .chunks(band)
        .zip(slots.iter_mut())
        .map(|(band_jobs, slot)| {
            Box::new(move || {
                // A panicking member must not poison the whole batch: the
                // payload is caught per band and surfaced as that band's
                // training errors, naming the actual assertion so a CI
                // failure is actionable instead of a generic placeholder.
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    band_jobs.iter().map(fit_job).collect::<Vec<_>>()
                }));
                *slot = caught.unwrap_or_else(|payload| {
                    let reason = panic_message(payload.as_ref());
                    band_jobs
                        .iter()
                        .map(|_| Err(format!("member thread panicked: {reason}")))
                        .collect()
                });
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    nnbo_pool::WorkerPool::global().run_batch(tasks);
    slots.into_iter().flatten().collect()
}

/// Best-effort extraction of a thread panic payload's message (`panic!` with a
/// literal yields `&str`, with a format string `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Batch size from which scoring the members on separate scoped threads pays
/// for the spawn/join overhead.
const PARALLEL_PREDICT_MIN_BATCH: usize = 256;

impl SurrogateModel for NeuralGpEnsemble {
    /// Mean of the members' maintained likelihoods ([`NeuralGp::nll`]) — the
    /// drift signal adaptive refit policies read.  Every member refreshes its
    /// likelihood on `append_observation`, so the mean tracks the whole
    /// ensemble's quality between full refits.
    fn training_nll(&self) -> Option<f64> {
        if self.members.is_empty() {
            return None;
        }
        Some(self.members.iter().map(NeuralGp::nll).sum::<f64>() / self.members.len() as f64)
    }

    /// Sums the members' recovery counters and adds the members this fit
    /// dropped.
    fn resilience(&self) -> crate::resilience::ModelResilience {
        let mut total = self
            .members
            .iter()
            .map(|m| m.resilience())
            .fold(crate::resilience::ModelResilience::default(), |a, b| {
                a.merged(b)
            });
        total.dropped_members += self.dropped_members();
        total
    }

    fn predict(&self, x: &[f64]) -> Prediction {
        self.predict_batch(std::slice::from_ref(&x.to_vec()))
            .pop()
            .expect("one query row yields one prediction")
    }

    /// Batched moment matching (eq. 13): every member scores the whole batch
    /// through its own vectorised path, and large batches fan the members out
    /// over scoped threads.  Combination runs in member order regardless of
    /// thread scheduling, so the result is deterministic and identical to the
    /// per-point path.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        if xs.is_empty() {
            return Vec::new();
        }
        let member_preds: Vec<Vec<Prediction>> = if self.members.len() > 1
            && xs.len() >= PARALLEL_PREDICT_MIN_BATCH
        {
            let mut slots: Vec<Vec<Prediction>> = Vec::new();
            slots.resize_with(self.members.len(), Vec::new);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = self
                .members
                .iter()
                .zip(slots.iter_mut())
                .map(|(m, slot)| {
                    Box::new(move || *slot = m.predict_batch(xs)) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            nnbo_pool::WorkerPool::global().run_batch(tasks);
            slots
        } else {
            self.members.iter().map(|m| m.predict_batch(xs)).collect()
        };

        let k = self.members.len() as f64;
        let mut out = Vec::with_capacity(xs.len());
        for i in 0..xs.len() {
            let mut mean = 0.0;
            let mut second_moment = 0.0;
            for preds in &member_preds {
                let p = preds[i];
                mean += p.mean;
                second_moment += p.mean * p.mean + p.variance;
            }
            mean /= k;
            second_moment /= k;
            out.push(Prediction::new(mean, second_moment - mean * mean));
        }
        out
    }
}

/// Trainer producing [`NeuralGpEnsemble`] models (implements [`SurrogateTrainer`]).
///
/// This is the surrogate used by the paper's algorithm ("Ours" in Tables I and II).
#[derive(Debug, Clone, Default)]
pub struct NeuralGpEnsembleTrainer {
    /// Configuration used for every fit.
    pub config: EnsembleConfig,
}

impl NeuralGpEnsembleTrainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: EnsembleConfig) -> Self {
        NeuralGpEnsembleTrainer { config }
    }
}

impl SurrogateTrainer for NeuralGpEnsembleTrainer {
    type Model = NeuralGpEnsemble;

    fn fit(
        &self,
        xs: &[Vec<f64>],
        ys: &[f64],
        rng: &mut StdRng,
    ) -> Result<NeuralGpEnsemble, String> {
        NeuralGpEnsemble::fit(xs, ys, &self.config, rng)
    }

    /// Multi-output training with one flat scoped-thread fan-out: the member
    /// seeds of every output are drawn from `rng` up front (in the same order
    /// as sequential [`NeuralGpEnsemble::fit`] calls, so the rng stream and —
    /// without previous models — every trained member are bit-identical to
    /// the sequential path), then all `outputs × members` trainings run as
    /// one flat, core-capped job list ([`train_members`]) — the constraint
    /// surrogates no longer wait for the objective's ensemble to finish, and
    /// the thread count never exceeds the hardware.
    ///
    /// When `prev` carries the previous refit's ensembles (one per target, as
    /// `BayesOpt::refresh_models` passes them), output `t`'s member `k`
    /// warm-starts from `prev[t]`'s member `k` ([`NeuralGp::fit_warm`]):
    /// the feature networks continue Adam from their previous weights for
    /// the reduced warm budget instead of retraining from random
    /// initialisation, with a per-member cold fallback when the warm descent
    /// regresses.
    fn fit_many(
        &self,
        xs: &[Vec<f64>],
        targets: &[Vec<f64>],
        prev: Option<&[&NeuralGpEnsemble]>,
        rng: &mut StdRng,
    ) -> Result<Vec<NeuralGpEnsemble>, String> {
        let members = self.config.members;
        assert!(members > 0, "ensemble needs at least one member");
        let jobs: Vec<MemberJob<'_>> = targets
            .iter()
            .enumerate()
            .flat_map(|(t, ys)| {
                (0..members)
                    .map(|k| MemberJob {
                        ys: ys.as_slice(),
                        seed: rng.gen(),
                        prev: prev
                            .and_then(|ensembles| ensembles.get(t))
                            .and_then(|e| e.members().get(k)),
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut results = train_members(xs, &jobs, &self.config).into_iter();
        targets
            .iter()
            .map(|_| {
                NeuralGpEnsemble::from_member_results(results.by_ref().take(members).collect())
            })
            .collect()
    }

    fn update(
        &self,
        prev: &NeuralGpEnsemble,
        x: &[f64],
        y: f64,
        _rng: &mut StdRng,
    ) -> Option<Result<NeuralGpEnsemble, String>> {
        Some(prev.append_observation(x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (4.0 * x[0]).sin() + x[0]).collect();
        (xs, ys)
    }

    #[test]
    fn ensemble_mean_is_average_of_member_means() {
        let (xs, ys) = toy_data(20);
        let mut rng = StdRng::seed_from_u64(1);
        let ens = NeuralGpEnsemble::fit(&xs, &ys, &EnsembleConfig::fast(), &mut rng).unwrap();
        assert_eq!(ens.len(), 3);
        let x = [0.37];
        let expected: f64 = ens
            .members()
            .iter()
            .map(|m| m.predict(&x).mean)
            .sum::<f64>()
            / ens.len() as f64;
        let p = ens.predict(&x);
        assert!((p.mean - expected).abs() < 1e-12);
    }

    #[test]
    fn ensemble_variance_includes_member_disagreement() {
        let (xs, ys) = toy_data(20);
        let mut rng = StdRng::seed_from_u64(2);
        let ens = NeuralGpEnsemble::fit(&xs, &ys, &EnsembleConfig::fast(), &mut rng).unwrap();
        // Far outside the data, the members disagree, so the combined variance must
        // be at least as large as the average member variance.
        let x = [3.0];
        let avg_member_var: f64 = ens
            .members()
            .iter()
            .map(|m| m.predict(&x).variance)
            .sum::<f64>()
            / ens.len() as f64;
        let p = ens.predict(&x);
        assert!(p.variance >= avg_member_var - 1e-12);
    }

    #[test]
    fn parallel_and_sequential_training_agree() {
        let (xs, ys) = toy_data(16);
        let config_seq = EnsembleConfig {
            parallel: false,
            ..EnsembleConfig::fast()
        };
        let config_par = EnsembleConfig {
            parallel: true,
            ..EnsembleConfig::fast()
        };
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let a = NeuralGpEnsemble::fit(&xs, &ys, &config_seq, &mut rng1).unwrap();
        let b = NeuralGpEnsemble::fit(&xs, &ys, &config_par, &mut rng2).unwrap();
        let x = [0.61];
        assert!((a.predict(&x).mean - b.predict(&x).mean).abs() < 1e-12);
        assert!((a.predict(&x).variance - b.predict(&x).variance).abs() < 1e-12);
    }

    #[test]
    fn fit_many_is_bit_identical_to_sequential_fits() {
        use crate::surrogate::SurrogateTrainer;
        let (xs, ys_a) = toy_data(16);
        let ys_b: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
        let targets = vec![ys_a, ys_b];
        for parallel in [false, true] {
            let trainer = NeuralGpEnsembleTrainer::new(EnsembleConfig {
                parallel,
                ..EnsembleConfig::fast()
            });
            let mut rng_many = StdRng::seed_from_u64(9);
            let many = trainer
                .fit_many(&xs, &targets, None, &mut rng_many)
                .unwrap();
            let mut rng_seq = StdRng::seed_from_u64(9);
            let sequential: Vec<_> = targets
                .iter()
                .map(|ys| trainer.fit(&xs, ys, &mut rng_seq).unwrap())
                .collect();
            // Same models *and* the same rng stream afterwards.
            assert_eq!(rng_many.gen::<u64>(), rng_seq.gen::<u64>());
            let q = [0.47];
            for (a, b) in many.iter().zip(sequential.iter()) {
                assert_eq!(a.len(), b.len());
                assert_eq!(a.predict(&q).mean, b.predict(&q).mean);
                assert_eq!(a.predict(&q).variance, b.predict(&q).variance);
            }
        }
    }

    #[test]
    fn warm_members_never_regress_past_their_cold_anchors() {
        use crate::neural_gp::loss_and_grad;
        use nnbo_linalg::Matrix;
        use nnbo_nn::{Activation, Mlp, MlpConfig};

        let (xs, ys) = toy_data(18);
        let config = EnsembleConfig {
            parallel: false,
            ..EnsembleConfig::fast()
        };
        let mut rng = StdRng::seed_from_u64(31);
        let prev = NeuralGpEnsemble::fit(&xs, &ys, &config, &mut rng).unwrap();

        let mut xs2 = xs.clone();
        let mut ys2 = ys.clone();
        xs2.push(vec![0.123]);
        ys2.push((4.0 * 0.123_f64).sin() + 0.123);
        let master_seed = 77u64;
        let mut warm_rng = StdRng::seed_from_u64(master_seed);
        let warm =
            NeuralGpEnsemble::fit_warm(&xs2, &ys2, &config, &mut warm_rng, Some(&prev)).unwrap();
        assert_eq!(warm.len(), config.members);

        // Replay each member's seed and cold initial draw, and evaluate (not
        // train) the likelihood at that initial point: the per-member
        // regression fallback guarantees no warm member ends above it.
        let mut seed_rng = StdRng::seed_from_u64(master_seed);
        let seeds: Vec<u64> = (0..config.members).map(|_| seed_rng.gen()).collect();
        let (y_std, _) = nnbo_linalg::standardize(&ys2);
        let x = Matrix::from_rows(&xs2);
        let mc = &config.member_config;
        let mlp_config = MlpConfig::new(1, &mc.hidden_dims, mc.feature_dim)
            .with_hidden_activation(Activation::ReLU);
        for (member, &seed) in warm.members().iter().zip(seeds.iter()) {
            let mut member_rng = StdRng::seed_from_u64(seed);
            let cold_mlp = Mlp::new(&mlp_config, &mut member_rng);
            let ln = mc.init_log_noise + member_rng.gen_range(-0.1..0.1);
            let lp = mc.init_log_prior + member_rng.gen_range(-0.1..0.1);
            let (anchor, _) = loss_and_grad(&cold_mlp, ln, lp, &x, &y_std, mc).unwrap();
            assert!(
                member.nll() <= anchor + 1e-9,
                "member NLL {} regressed past its cold anchor {anchor}",
                member.nll()
            );
        }
    }

    #[test]
    fn fit_many_warm_matches_sequential_fit_warm_calls() {
        use crate::surrogate::SurrogateTrainer;
        let (xs, ys_a) = toy_data(16);
        let ys_b: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
        let targets = vec![ys_a, ys_b];
        for parallel in [false, true] {
            let config = EnsembleConfig {
                parallel,
                ..EnsembleConfig::fast()
            };
            let trainer = NeuralGpEnsembleTrainer::new(config.clone());
            let mut prev_rng = StdRng::seed_from_u64(3);
            let prev: Vec<NeuralGpEnsemble> = targets
                .iter()
                .map(|ys| NeuralGpEnsemble::fit(&xs, ys, &config, &mut prev_rng).unwrap())
                .collect();
            let prev_refs: Vec<&NeuralGpEnsemble> = prev.iter().collect();

            let mut rng_many = StdRng::seed_from_u64(4);
            let many = trainer
                .fit_many(&xs, &targets, Some(&prev_refs), &mut rng_many)
                .unwrap();
            let mut rng_seq = StdRng::seed_from_u64(4);
            let sequential: Vec<_> = targets
                .iter()
                .zip(prev.iter())
                .map(|(ys, p)| {
                    NeuralGpEnsemble::fit_warm(&xs, ys, &config, &mut rng_seq, Some(p)).unwrap()
                })
                .collect();
            // Same models *and* the same rng stream afterwards.
            assert_eq!(rng_many.gen::<u64>(), rng_seq.gen::<u64>());
            let q = [0.47];
            for (a, b) in many.iter().zip(sequential.iter()) {
                assert_eq!(a.len(), b.len());
                assert_eq!(a.predict(&q).mean, b.predict(&q).mean);
                assert_eq!(a.predict(&q).variance, b.predict(&q).variance);
            }
        }
    }

    #[test]
    fn member_thread_panics_propagate_their_message() {
        // feature_dim = 0 makes MlpConfig::new panic inside the member
        // threads; the banded fan-out must surface that assertion text, not a
        // generic placeholder.  The worker count is forced so the threaded
        // path runs even on a single-core machine.
        let (xs, ys) = toy_data(10);
        let config = EnsembleConfig {
            members: 2,
            member_config: NeuralGpConfig {
                feature_dim: 0,
                ..NeuralGpConfig::fast()
            },
            parallel: true,
        };
        let jobs: Vec<MemberJob<'_>> = [1u64, 2]
            .iter()
            .map(|&seed| MemberJob {
                ys: &ys,
                seed,
                prev: None,
            })
            .collect();
        let results = train_members_with_workers(&xs, &jobs, &config, 2);
        assert_eq!(results.len(), 2);
        for r in results {
            let err = r.unwrap_err();
            assert!(err.contains("member thread panicked"), "{err}");
            assert!(err.contains("output dimension must be positive"), "{err}");
        }
    }

    #[test]
    fn quorum_drops_failed_members_but_rejects_a_decimated_ensemble() {
        let (xs, ys) = toy_data(14);
        let mut rng = StdRng::seed_from_u64(21);
        let config = EnsembleConfig {
            members: 1,
            parallel: false,
            ..EnsembleConfig::fast()
        };
        let healthy = NeuralGpEnsemble::fit(&xs, &ys, &config, &mut rng).unwrap();
        let member = healthy.members()[0].clone();

        // 4 planned, 2 trained: exactly at quorum (max(1, 4/2) = 2) — usable,
        // with the two failures reported as drops.
        let at_quorum = NeuralGpEnsemble::from_member_results(vec![
            Ok(member.clone()),
            Err("boom".into()),
            Ok(member.clone()),
            Err("boom".into()),
        ])
        .unwrap();
        assert_eq!(at_quorum.len(), 2);
        assert_eq!(at_quorum.dropped_members(), 2);
        assert_eq!(at_quorum.resilience().dropped_members, 2);

        // 4 planned, 1 trained: below quorum — the whole fit fails.
        let below = NeuralGpEnsemble::from_member_results(vec![
            Err("first failure".into()),
            Ok(member.clone()),
            Err("boom".into()),
            Err("boom".into()),
        ]);
        let err = below.unwrap_err();
        assert!(err.contains("quorum"), "{err}");
        assert!(err.contains("first failure"), "{err}");

        // All failed: the first error comes back verbatim.
        let none = NeuralGpEnsemble::from_member_results(vec![Err("a".into()), Err("b".into())]);
        assert_eq!(none.unwrap_err(), "a");

        // Drops survive incremental updates.
        let appended = at_quorum.append_observation(&[0.77], 1.1).unwrap();
        assert_eq!(appended.dropped_members(), 2);
    }

    #[test]
    fn single_member_ensemble_matches_plain_neural_gp_variance_form() {
        let (xs, ys) = toy_data(14);
        let config = EnsembleConfig {
            members: 1,
            parallel: false,
            ..EnsembleConfig::fast()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let ens = NeuralGpEnsemble::fit(&xs, &ys, &config, &mut rng).unwrap();
        let x = [0.4];
        let member = &ens.members()[0];
        let pm = member.predict(&x);
        let pe = ens.predict(&x);
        assert!((pm.mean - pe.mean).abs() < 1e-12);
        assert!((pm.variance - pe.variance).abs() < 1e-9);
    }
}
