//! The constrained single-objective Bayesian-optimization loop (Algorithm 1),
//! hardened for failing evaluation backends: failure-aware evaluations with
//! retry/imputation policies, graceful surrogate degradation, and versioned
//! checkpoint/resume ([`BoSnapshot`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};

use crate::acquisition::{self, AcquisitionKind};
use crate::ensemble::{EnsembleConfig, NeuralGpEnsembleTrainer};
use crate::error::BoError;
use crate::problems::{EvalOutcome, Evaluation, Problem};
use crate::resilience::{FailureAction, FailurePolicy, ModelResilience, RecoveryLog};
use crate::sampling::latin_hypercube;
use crate::strategy::{AcquisitionOracle, SuggestContext, SuggestStrategy};
use crate::surrogate::{SurrogateModel, SurrogateTrainer};

/// When the loop performs a *full* surrogate refit (hyper-parameter
/// optimization / network retraining) versus absorbing the newest observation
/// through the trainers' `O(N²)` incremental updates
/// ([`crate::SurrogateTrainer::update`]).
///
/// The paper's Algorithm 1 refits at every iteration
/// ([`RefitPolicy::Fixed`]`(1)`, the default).  A fixed larger cadence
/// amortizes the fit cost but is blind to what the incremental model actually
/// does between refits: it wastes full fits when the frozen hyper-parameters
/// still explain the data, and tolerates drift when they do not.
/// [`RefitPolicy::NllDrift`] closes that gap by watching the surrogates' own
/// maintained likelihood ([`crate::SurrogateModel::training_nll`], refreshed
/// in `O(M)`/`O(N²)` by every incremental update) and refitting only when the
/// per-point NLL has moved past a threshold since the last full fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RefitPolicy {
    /// Full refit every `k` evaluations; iterations in between use the
    /// incremental updates.  `Fixed(1)` is the paper's always-refit loop.
    Fixed(usize),
    /// Adaptive: after each incremental update, compare the models' per-point
    /// NLL (averaged over the objective and every constraint) against its
    /// value at the last full fit, and refit once the absolute change reaches
    /// `threshold` — but never before `min_gap` evaluations have accumulated
    /// since the last full fit, and always once `max_gap` have.
    ///
    /// With `threshold = 0` every measured drift (the comparison is
    /// `drift ≥ threshold`) triggers a refit, reproducing `Fixed(min_gap)` —
    /// in particular `Fixed(1)` for `min_gap = 1` — bit for bit.  When a
    /// surrogate does not expose a likelihood
    /// ([`crate::SurrogateModel::training_nll`] returns `None`) the drift is
    /// unknown and the policy conservatively refits on the `min_gap` cadence.
    NllDrift {
        /// Absolute per-point NLL change (standardised units, averaged over
        /// outputs) at which a full refit triggers.
        threshold: f64,
        /// Evaluations that must accumulate since the last full fit before
        /// drift can trigger one (≥ 1).
        min_gap: usize,
        /// Evaluations after which a full refit happens regardless of drift
        /// (≥ `min_gap`).
        max_gap: usize,
    },
}

impl Default for RefitPolicy {
    fn default() -> Self {
        RefitPolicy::Fixed(1)
    }
}

impl RefitPolicy {
    /// A drift policy with the default gap band: drift may trigger from the
    /// first incremental update, and a refit is forced after 25 evaluations
    /// without one.
    pub fn nll_drift(threshold: f64) -> Self {
        RefitPolicy::NllDrift {
            threshold,
            min_gap: 1,
            max_gap: 25,
        }
    }

    /// Decides whether a full refit is due, `gap` evaluations after the last
    /// full fit, given the observed absolute per-point NLL `drift` (`None`
    /// when the surrogates do not expose a likelihood).
    ///
    /// An unknown (`None`) or non-finite drift is treated conservatively as
    /// "refit": a NaN drift means the incremental model's likelihood itself
    /// degenerated (e.g. a near-duplicate observation drove the bordered
    /// factor singular), which is precisely when keeping it would be wrong.
    ///
    /// This is the exact decision rule the loop applies after each
    /// incremental update; it is public so benchmarks and external
    /// surrogate-lifecycle drivers replicate the loop's behaviour.
    pub fn due(&self, gap: usize, drift: Option<f64>) -> bool {
        match *self {
            RefitPolicy::Fixed(k) => gap >= k.max(1),
            RefitPolicy::NllDrift {
                threshold,
                min_gap,
                max_gap,
            } => {
                gap >= max_gap
                    || (gap >= min_gap && drift.is_none_or(|d| !d.is_finite() || d >= threshold))
            }
        }
    }

    /// Human-readable validity check, used by [`BayesOpt::run`]'s config
    /// validation.
    fn validate(&self) -> Result<(), String> {
        match *self {
            RefitPolicy::Fixed(0) => Err("refit cadence must be at least 1".to_string()),
            RefitPolicy::Fixed(_) => Ok(()),
            RefitPolicy::NllDrift {
                threshold,
                min_gap,
                max_gap,
            } => {
                if threshold.is_nan() || threshold < 0.0 {
                    return Err(format!("drift threshold must be >= 0, got {threshold}"));
                }
                if min_gap == 0 {
                    return Err("drift min_gap must be at least 1".to_string());
                }
                if max_gap < min_gap {
                    return Err(format!(
                        "drift max_gap {max_gap} must be >= min_gap {min_gap}"
                    ));
                }
                Ok(())
            }
        }
    }
}

/// Configuration of a [`BayesOpt`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoConfig {
    /// Number of initial (Latin-hypercube) samples before the model-guided phase
    /// (30 for Table I, 100 for Table II in the paper).
    pub initial_samples: usize,
    /// Total evaluation budget, including the initial samples.
    pub max_evaluations: usize,
    /// Acquisition function (wEI by default, as in the paper).
    pub acquisition: AcquisitionKind,
    /// Number of uniformly random candidates considered when maximising the
    /// acquisition function.
    pub candidate_pool: usize,
    /// Number of additional candidates drawn as Gaussian perturbations of the
    /// incumbent (local refinement of the acquisition search).
    pub local_candidates: usize,
    /// How the acquisition is maximised each iteration (see
    /// [`SuggestStrategy`]): the paper's full-pool scoring by default, or the
    /// LinEasyBO-style one-dimensional subspace search whose per-iteration
    /// cost does not grow with the candidate pool.
    pub strategy: SuggestStrategy,
    /// When the surrogates are refitted from scratch versus incrementally
    /// updated (see [`RefitPolicy`]; the default refits every iteration,
    /// exactly as the paper's Algorithm 1 does).
    pub refit: RefitPolicy,
    /// How failed or timed-out evaluations are retried and imputed (see
    /// [`FailurePolicy`]).  On a failure-free run the policy is inert: no
    /// extra random draws happen, so results are bit-identical across
    /// policies.
    pub failure: FailurePolicy,
    /// Random seed; every stochastic component of the run derives from it.
    pub seed: u64,
}

impl BoConfig {
    /// Creates a configuration with the paper-style defaults for the candidate
    /// search.
    pub fn new(initial_samples: usize, max_evaluations: usize) -> Self {
        BoConfig {
            initial_samples,
            max_evaluations,
            acquisition: AcquisitionKind::WeightedExpectedImprovement,
            candidate_pool: 1024,
            local_candidates: 256,
            strategy: SuggestStrategy::FullPool,
            refit: RefitPolicy::Fixed(1),
            failure: FailurePolicy::default(),
            seed: 0,
        }
    }

    /// A cheaper configuration (smaller candidate pool) for tests and smoke runs.
    pub fn fast(initial_samples: usize, max_evaluations: usize) -> Self {
        BoConfig {
            candidate_pool: 128,
            local_candidates: 32,
            ..BoConfig::new(initial_samples, max_evaluations)
        }
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the acquisition function.
    pub fn with_acquisition(mut self, acquisition: AcquisitionKind) -> Self {
        self.acquisition = acquisition;
        self
    }

    /// Sets a fixed full-refit cadence.
    ///
    /// Deprecated shim over [`BoConfig::with_refit_policy`]: equivalent to
    /// `with_refit_policy(RefitPolicy::Fixed(refit_every))`.
    ///
    /// # Panics
    ///
    /// Panics if `refit_every` is zero.
    #[deprecated(
        note = "use with_refit_policy(RefitPolicy::Fixed(k)) — or RefitPolicy::NllDrift for the adaptive policy"
    )]
    pub fn with_refit_every(self, refit_every: usize) -> Self {
        assert!(refit_every > 0, "refit_every must be at least 1");
        self.with_refit_policy(RefitPolicy::Fixed(refit_every))
    }

    /// Sets the surrogate refit policy (see [`RefitPolicy`]).
    pub fn with_refit_policy(mut self, refit: RefitPolicy) -> Self {
        self.refit = refit;
        self
    }

    /// Sets the acquisition-maximization strategy (see [`SuggestStrategy`]).
    pub fn with_strategy(mut self, strategy: SuggestStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the evaluation-failure policy (see [`FailurePolicy`]).
    pub fn with_failure_policy(mut self, failure: FailurePolicy) -> Self {
        self.failure = failure;
        self
    }
}

/// Cumulative acquisition-maximization cost of a run: how many model-guided
/// suggestions were made and the wall-clock they took.
///
/// The nanoseconds cover candidate generation, batched surrogate scoring and
/// the argmax — *not* surrogate (re)fits, which
/// [`OptimizationResult::full_refits`] tracks separately.  This is the
/// counter strategy comparisons read ([`SuggestStrategy::FullPool`] scores
/// `candidate_pool + local_candidates` points per iteration, the LinEasyBO
/// line search a small constant), without needing the bench binary's external
/// timers.  `calls` is deterministic; `nanos` is wall-clock and therefore
/// machine-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SuggestCost {
    /// Model-guided suggestions performed (one per acquisition maximisation;
    /// space-filling fallbacks after a surrogate-training failure are not
    /// counted — [`RecoveryLog::fallback_suggests`] tracks those).
    pub calls: usize,
    /// Total wall-clock nanoseconds spent maximising the acquisition.
    pub nanos: u64,
}

impl SuggestCost {
    /// Mean nanoseconds per suggestion (`0.0` before any call).
    pub fn mean_nanos(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.nanos as f64 / self.calls as f64
        }
    }

    /// Accumulates one suggestion of `nanos` wall-clock nanoseconds.
    pub(crate) fn record(&mut self, nanos: u64) {
        self.calls += 1;
        self.nanos += nanos;
    }
}

/// The result of one optimization run: every evaluated point in order, plus
/// convenience accessors for the best feasible design and convergence statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationResult {
    evaluations: Vec<(Vec<f64>, Evaluation)>,
    initial_samples: usize,
    /// Number of *full* surrogate refits the run performed (0 for
    /// histories built by [`OptimizationResult::from_history`]).
    full_refits: usize,
    /// Acquisition-maximization cost (zero for histories built by
    /// [`OptimizationResult::from_history`]).
    suggest_cost: SuggestCost,
    /// Audit trail of every recovery the run performed (empty for histories
    /// built by [`OptimizationResult::from_history`]).
    recovery: RecoveryLog,
}

impl OptimizationResult {
    /// Builds a result from a raw evaluation history.
    ///
    /// This is how the non-Bayesian baselines (differential evolution, GASPAD,
    /// random search) report their runs so that every algorithm is summarised by
    /// the same statistics code.  The full-refit counter is zero for such
    /// histories — it is only meaningful for surrogate-driven [`BayesOpt`]
    /// runs.
    pub fn from_history(evaluations: Vec<(Vec<f64>, Evaluation)>, initial_samples: usize) -> Self {
        OptimizationResult {
            evaluations,
            initial_samples,
            full_refits: 0,
            suggest_cost: SuggestCost::default(),
            recovery: RecoveryLog::default(),
        }
    }

    /// Cumulative acquisition-maximization cost of the run (see
    /// [`SuggestCost`]); zero for histories built by
    /// [`OptimizationResult::from_history`].
    pub fn suggest_cost(&self) -> SuggestCost {
        self.suggest_cost
    }

    /// The run's recovery log: evaluation failures and retries, imputed
    /// observations, surrogate degradations and space-filling fallbacks.  A
    /// [`RecoveryLog::is_clean`] log means the run needed no recovery at all.
    pub fn recovery(&self) -> &RecoveryLog {
        &self.recovery
    }

    /// Number of full surrogate refits (hyper-parameter optimizations /
    /// network retrainings) the run performed; iterations not counted here
    /// absorbed their observation through the trainers' incremental updates.
    /// The contrast against `max_evaluations − initial_samples` (what
    /// [`RefitPolicy::Fixed`]`(1)` performs) is the direct measure of how
    /// much surrogate maintenance an adaptive policy saved.
    pub fn full_refits(&self) -> usize {
        self.full_refits
    }

    /// All evaluated `(normalised point, evaluation)` pairs, in evaluation order.
    pub fn evaluations(&self) -> &[(Vec<f64>, Evaluation)] {
        &self.evaluations
    }

    /// Number of evaluations performed.
    pub fn num_evaluations(&self) -> usize {
        self.evaluations.len()
    }

    /// Number of initial (space-filling) samples.
    pub fn initial_samples(&self) -> usize {
        self.initial_samples
    }

    /// Index of the best feasible evaluation, if any point was feasible.
    ///
    /// Imputed evaluations (failed points the [`FailurePolicy`] replaced with
    /// a finite stand-in, see [`RecoveryLog::imputed`]) are never selected:
    /// an optimum must come from a real simulation.
    pub fn best_index(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, (_, e)) in self.evaluations.iter().enumerate() {
            if self.recovery.imputed.contains(&i) {
                continue;
            }
            if e.is_feasible() && best.is_none_or(|(_, v)| e.objective < v) {
                best = Some((i, e.objective));
            }
        }
        best.map(|(i, _)| i)
    }

    /// The best feasible point and its evaluation.
    pub fn best(&self) -> Option<(&[f64], &Evaluation)> {
        self.best_index()
            .map(|i| (self.evaluations[i].0.as_slice(), &self.evaluations[i].1))
    }

    /// Objective value of the best feasible point.
    pub fn best_objective(&self) -> Option<f64> {
        self.best().map(|(_, e)| e.objective)
    }

    /// Index (1-based count of simulations) at which the first feasible point was
    /// found.
    pub fn first_feasible_at(&self) -> Option<usize> {
        self.evaluations
            .iter()
            .position(|(_, e)| e.is_feasible())
            .map(|i| i + 1)
    }

    /// Number of simulations needed to reach within `tolerance` of the final best
    /// feasible objective (the "Avg. # Sim" statistic of the paper's tables).
    pub fn simulations_to_converge(&self, tolerance: f64) -> Option<usize> {
        let target = self.best_objective()? + tolerance;
        let mut best_so_far = f64::INFINITY;
        for (i, (_, e)) in self.evaluations.iter().enumerate() {
            if e.is_feasible() && e.objective < best_so_far {
                best_so_far = e.objective;
            }
            if best_so_far <= target {
                return Some(i + 1);
            }
        }
        None
    }

    /// Best feasible objective value after each evaluation (∞ before the first
    /// feasible point) — the convergence curve of the run.
    pub fn convergence_curve(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.evaluations
            .iter()
            .map(|(_, e)| {
                if e.is_feasible() && e.objective < best {
                    best = e.objective;
                }
                best
            })
            .collect()
    }
}

/// The constrained Bayesian-optimization driver (Algorithm 1 of the paper),
/// generic over the surrogate trainer so that both the paper's neural-GP ensemble
/// and the classical-GP baselines can run through the same loop.
#[derive(Debug, Clone)]
pub struct BayesOpt<T: SurrogateTrainer> {
    config: BoConfig,
    trainer: T,
}

impl BayesOpt<NeuralGpEnsembleTrainer> {
    /// Creates the paper's algorithm: neural-GP ensemble surrogate (K = 5) with the
    /// wEI acquisition.
    pub fn neural(config: BoConfig) -> Self {
        BayesOpt {
            config,
            trainer: NeuralGpEnsembleTrainer::default(),
        }
    }

    /// Creates the paper's algorithm with a custom ensemble configuration.
    pub fn neural_with(config: BoConfig, ensemble: EnsembleConfig) -> Self {
        BayesOpt {
            config,
            trainer: NeuralGpEnsembleTrainer::new(ensemble),
        }
    }
}

impl<T: SurrogateTrainer> BayesOpt<T> {
    /// Creates a driver with an arbitrary surrogate trainer (used by the WEIBO
    /// baseline, which plugs in the classical GP).
    pub fn with_trainer(config: BoConfig, trainer: T) -> Self {
        BayesOpt { config, trainer }
    }

    /// The configuration of this driver.
    pub fn config(&self) -> &BoConfig {
        &self.config
    }

    /// Runs the optimization on `problem`.
    ///
    /// Equivalent to [`BayesOpt::start`], [`BayesOpt::step`] until the budget
    /// is exhausted, then [`BayesOpt::finish`] — drive those directly to
    /// interleave checkpoints ([`BayesOpt::snapshot`]) or external work
    /// between evaluations.
    ///
    /// # Errors
    ///
    /// Returns [`BoError::InvalidConfig`] / [`BoError::InvalidProblem`] for
    /// inconsistent setups and [`BoError::Internal`] if a trainer violates
    /// the loop's invariants.  Evaluation failures and surrogate-training
    /// failures do *not* abort the run: they are retried, imputed, or worked
    /// around per the configured [`FailurePolicy`], and every such recovery
    /// is recorded in [`OptimizationResult::recovery`].
    pub fn run(&self, problem: &dyn Problem) -> Result<OptimizationResult, BoError> {
        let mut state = self.start(problem)?;
        while self.step(problem, &mut state)? {}
        Ok(self.finish(state))
    }

    /// Validates the setup and performs the space-filling initial design
    /// (phase 1 of Algorithm 1), returning the loop state that
    /// [`BayesOpt::step`] advances one evaluation at a time.
    ///
    /// # Errors
    ///
    /// Returns [`BoError::InvalidConfig`] / [`BoError::InvalidProblem`] for
    /// inconsistent setups.
    pub fn start(&self, problem: &dyn Problem) -> Result<BoState<T::Model>, BoError> {
        self.validate(problem)?;
        let dim = problem.dim();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut history: Vec<(Vec<f64>, Evaluation)> = Vec::new();
        let mut recovery = RecoveryLog::default();
        for x in latin_hypercube(self.config.initial_samples, dim, &mut rng) {
            let (x, eval, _) =
                self.evaluate_with_policy(problem, x, &mut rng, &mut recovery, &history);
            history.push((x, eval));
        }
        Ok(BoState {
            history,
            rng,
            surrogate: SurrogateState {
                models: None,
                scores: ScoreBuffers::new(),
                full_refits: 0,
                suggest: SuggestCost::default(),
                recovery,
                consecutive_failure_refits: 0,
            },
        })
    }

    /// Performs one model-guided iteration (phase 2 of Algorithm 1):
    /// refreshes the surrogates per the [`RefitPolicy`], maximises the
    /// acquisition over a fresh candidate set, and evaluates the winner under
    /// the [`FailurePolicy`].  Returns `Ok(false)` once the evaluation budget
    /// is exhausted (the state is then ready for [`BayesOpt::finish`]).
    ///
    /// The fitted surrogates persist inside `state` across iterations so
    /// that, between full refits, the single observation appended per
    /// iteration can be absorbed through the trainers' incremental Cholesky
    /// updates; the scoring buffers persist too, so the prediction path
    /// reuses its allocations.
    ///
    /// A recoverable surrogate-training failure never aborts the step: the
    /// iteration falls back to a space-filling candidate (recorded in
    /// [`RecoveryLog::fallback_suggests`]) and the run continues.
    ///
    /// # Errors
    ///
    /// Returns [`BoError::Internal`] only for violated loop invariants.
    pub fn step(
        &self,
        problem: &dyn Problem,
        state: &mut BoState<T::Model>,
    ) -> Result<bool, BoError> {
        if state.history.len() >= self.config.max_evaluations {
            return Ok(false);
        }
        let dim = problem.dim();
        let candidate = match self.next_candidate(
            problem,
            &state.history,
            &mut state.surrogate,
            &mut state.rng,
        ) {
            Ok(x) => x,
            Err(BoError::SurrogateTraining { .. }) => {
                // Graceful degradation, last line: no usable surrogate this
                // iteration — a space-filling point keeps the run going.
                state.surrogate.models = None;
                state.surrogate.recovery.fallback_suggests += 1;
                (0..dim).map(|_| state.rng.gen_range(0.0..1.0)).collect()
            }
            Err(e) => return Err(e),
        };
        let (x, eval, imputed) = self.evaluate_with_policy(
            problem,
            candidate,
            &mut state.rng,
            &mut state.surrogate.recovery,
            &state.history,
        );
        if !imputed {
            // A real observation ends any failure burst: drift refits are
            // trustworthy again (see FailurePolicy::max_failure_refits).
            state.surrogate.consecutive_failure_refits = 0;
        }
        state.history.push((x, eval));
        Ok(true)
    }

    /// Consumes the loop state into the run's [`OptimizationResult`].
    pub fn finish(&self, state: BoState<T::Model>) -> OptimizationResult {
        OptimizationResult {
            evaluations: state.history,
            initial_samples: self.config.initial_samples,
            full_refits: state.surrogate.full_refits,
            suggest_cost: state.surrogate.suggest,
            recovery: state.surrogate.recovery,
        }
    }

    /// Captures the loop state as a versioned, serializable checkpoint.
    ///
    /// The snapshot records everything [`BayesOpt::resume`] needs to continue
    /// the run *bit-identically*: the evaluation history, the exact rng
    /// stream position, the fitted surrogates (serialized through the
    /// self-describing value tree, which round-trips every `f64` exactly),
    /// the refit-policy bookkeeping and the recovery log.
    pub fn snapshot(&self, state: &BoState<T::Model>) -> BoSnapshot
    where
        T::Model: Serialize,
    {
        BoSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config.clone(),
            history: state.history.clone(),
            rng_state: state.rng.state(),
            full_refits: state.surrogate.full_refits,
            suggest_cost: state.surrogate.suggest,
            recovery: state.surrogate.recovery.clone(),
            consecutive_failure_refits: state.surrogate.consecutive_failure_refits,
            models: state.surrogate.models.as_ref().map(|f| ModelSnapshot {
                objective: f.objective.to_value(),
                constraints: f.constraints.iter().map(|m| m.to_value()).collect(),
                trained_on: f.trained_on,
                last_full_fit: f.last_full_fit,
                fit_nll_per_point: f.fit_nll_per_point,
            }),
        }
    }

    /// Restores the loop state from a checkpoint taken by
    /// [`BayesOpt::snapshot`], continuing the run bit-identically (same
    /// future evaluations, same rng stream) as if it had never stopped.
    ///
    /// # Errors
    ///
    /// Returns [`BoError::SnapshotMismatch`] when the snapshot's version or
    /// configuration differs from this driver's, or when a model payload no
    /// longer deserializes.
    pub fn resume(&self, snapshot: &BoSnapshot) -> Result<BoState<T::Model>, BoError>
    where
        T::Model: for<'de> Deserialize<'de>,
    {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(BoError::SnapshotMismatch {
                details: format!(
                    "snapshot version {} (this build writes {SNAPSHOT_VERSION})",
                    snapshot.version
                ),
            });
        }
        if snapshot.config != self.config {
            return Err(BoError::SnapshotMismatch {
                details: "snapshot was taken under a different configuration".to_string(),
            });
        }
        let models = match &snapshot.models {
            None => None,
            Some(ms) => {
                let objective =
                    T::Model::from_value(&ms.objective).map_err(|e| BoError::SnapshotMismatch {
                        details: format!("objective model payload: {e}"),
                    })?;
                let constraints = ms
                    .constraints
                    .iter()
                    .map(T::Model::from_value)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| BoError::SnapshotMismatch {
                        details: format!("constraint model payload: {e}"),
                    })?;
                Some(FittedModels {
                    objective,
                    constraints,
                    trained_on: ms.trained_on,
                    last_full_fit: ms.last_full_fit,
                    fit_nll_per_point: ms.fit_nll_per_point,
                })
            }
        };
        Ok(BoState {
            history: snapshot.history.clone(),
            rng: StdRng::from_state(snapshot.rng_state),
            surrogate: SurrogateState {
                models,
                scores: ScoreBuffers::new(),
                full_refits: snapshot.full_refits,
                suggest: snapshot.suggest_cost,
                recovery: snapshot.recovery.clone(),
                consecutive_failure_refits: snapshot.consecutive_failure_refits,
            },
        })
    }

    /// Fits fresh surrogates to `history` and returns the next design point
    /// the acquisition function proposes.
    ///
    /// This is the stateless one-shot variant of the loop body — useful for
    /// serving "give me the next point to simulate" requests against an
    /// externally managed evaluation history.  [`BayesOpt::run`] uses the same
    /// machinery but keeps the fitted surrogates alive across iterations so
    /// incremental updates can kick in.
    ///
    /// # Errors
    ///
    /// Returns [`BoError::SurrogateTraining`] when surrogate training fails
    /// (there is no previous model to degrade to here) and
    /// [`BoError::Internal`] if a trainer violates the loop's invariants.
    pub fn suggest(
        &self,
        problem: &dyn Problem,
        history: &[(Vec<f64>, Evaluation)],
        rng: &mut StdRng,
    ) -> Result<Vec<f64>, BoError> {
        let mut state = SurrogateState {
            models: None,
            scores: ScoreBuffers::new(),
            full_refits: 0,
            suggest: SuggestCost::default(),
            recovery: RecoveryLog::default(),
            consecutive_failure_refits: 0,
        };
        self.next_candidate(problem, history, &mut state, rng)
    }

    /// Evaluates `x` under the configured [`FailurePolicy`]: failed or
    /// timed-out attempts are retried up to `max_retries` times at
    /// deterministically jittered points (rng draws happen *only* on the
    /// failure path, so clean runs are bit-identical across policies), and an
    /// exhausted point is replaced by a finite imputed evaluation recorded in
    /// [`RecoveryLog::imputed`].  Returns the point actually recorded, its
    /// evaluation, and whether it was imputed.
    fn evaluate_with_policy(
        &self,
        problem: &dyn Problem,
        x: Vec<f64>,
        rng: &mut StdRng,
        recovery: &mut RecoveryLog,
        history: &[(Vec<f64>, Evaluation)],
    ) -> (Vec<f64>, Evaluation, bool) {
        let policy = &self.config.failure;
        let original = x.clone();
        let mut point = x;
        for attempt in 0..=policy.max_retries {
            let outcome = problem.try_evaluate(&point);
            match outcome {
                EvalOutcome::Ok(eval)
                    if eval.objective.is_finite()
                        && eval.constraints.iter().all(|g| g.is_finite()) =>
                {
                    return (point, eval, false);
                }
                // An override returning Ok with non-finite values is a
                // failure regardless — the surrogates must never see NaN.
                EvalOutcome::Ok(_) | EvalOutcome::Failed(_) => recovery.eval_failures += 1,
                EvalOutcome::Timeout => recovery.eval_timeouts += 1,
            }
            if attempt < policy.max_retries {
                recovery.eval_retries += 1;
                for v in point.iter_mut() {
                    *v = (*v + policy.retry_jitter * standard_normal(rng)).clamp(0.0, 1.0);
                }
            }
        }
        let eval = self.impute_failure(problem, history, recovery);
        recovery.imputed.push(history.len());
        (original, eval, true)
    }

    /// Builds the finite stand-in evaluation for a point whose retries are
    /// exhausted, per [`FailureAction`].  Only *real* (non-imputed) history
    /// entries inform the imputed values, so repeated failures cannot ratchet
    /// the imputation ever further.
    fn impute_failure(
        &self,
        problem: &dyn Problem,
        history: &[(Vec<f64>, Evaluation)],
        recovery: &RecoveryLog,
    ) -> Evaluation {
        let action = self.config.failure.on_exhausted;
        let real: Vec<&Evaluation> = history
            .iter()
            .enumerate()
            .filter(|(i, _)| !recovery.imputed.contains(i))
            .map(|(_, (_, e))| e)
            .collect();
        let mut worst = f64::NEG_INFINITY;
        let mut best = f64::INFINITY;
        for e in &real {
            worst = worst.max(e.objective);
            best = best.min(e.objective);
        }
        let objective = if real.is_empty() {
            // Nothing observed yet (a failure inside the initial design
            // before any success): a neutral finite stand-in.
            0.0
        } else if let FailureAction::Penalize { margin } = action {
            let span = worst - best;
            worst + margin * if span > 0.0 { span } else { 1.0 }
        } else {
            worst
        };
        let constraints: Vec<f64> = (0..problem.num_constraints())
            .map(|c| {
                if action == FailureAction::MarkInfeasible {
                    return 1.0;
                }
                let worst_c = real
                    .iter()
                    .map(|e| e.constraints[c])
                    .fold(f64::NEG_INFINITY, f64::max);
                if worst_c.is_finite() {
                    worst_c
                } else {
                    1.0
                }
            })
            .collect();
        Evaluation::new(objective, constraints)
    }

    fn validate(&self, problem: &dyn Problem) -> Result<(), BoError> {
        if problem.dim() == 0 {
            return Err(BoError::InvalidProblem {
                details: "zero-dimensional design space".to_string(),
            });
        }
        if self.config.initial_samples < 2 {
            return Err(BoError::InvalidConfig {
                details: "need at least two initial samples".to_string(),
            });
        }
        if self.config.max_evaluations < self.config.initial_samples {
            return Err(BoError::InvalidConfig {
                details: format!(
                    "evaluation budget {} is smaller than the initial design {}",
                    self.config.max_evaluations, self.config.initial_samples
                ),
            });
        }
        if self.config.candidate_pool == 0 {
            return Err(BoError::InvalidConfig {
                details: "candidate pool must not be empty".to_string(),
            });
        }
        if let Err(details) = self.config.strategy.validate() {
            return Err(BoError::InvalidConfig { details });
        }
        if let Err(details) = self.config.refit.validate() {
            return Err(BoError::InvalidConfig { details });
        }
        if let Err(details) = self.config.failure.validate() {
            return Err(BoError::InvalidConfig { details });
        }
        Ok(())
    }

    /// Brings `models` up to date with `history` (full fit or incremental
    /// update, per the configured [`RefitPolicy`]), then maximises the
    /// acquisition function over a candidate set scored in one batch through
    /// the buffer-reusing prediction path.
    fn next_candidate(
        &self,
        problem: &dyn Problem,
        history: &[(Vec<f64>, Evaluation)],
        state: &mut SurrogateState<T::Model>,
        rng: &mut StdRng,
    ) -> Result<Vec<f64>, BoError> {
        let dim = problem.dim();
        match self.refresh_models(problem, history, state, rng) {
            Ok(true) => state.full_refits += 1,
            Ok(false) => {}
            Err(RefreshError::Fit(reason)) => {
                return Err(BoError::SurrogateTraining {
                    target: "surrogate family".to_string(),
                    reason,
                });
            }
            Err(RefreshError::Internal(details)) => {
                return Err(BoError::Internal { details });
            }
        }
        let SurrogateState {
            models,
            scores,
            suggest,
            ..
        } = state;
        let fitted = models.as_ref().ok_or_else(|| BoError::Internal {
            details: "refresh_models succeeded without populating the model slot".to_string(),
        })?;

        // Incumbent: best feasible objective, if any.
        let tau = history
            .iter()
            .filter(|(_, e)| e.is_feasible())
            .map(|(_, e)| e.objective)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            });

        // Anchor for the local candidates: best feasible point, or the point with
        // the smallest constraint violation when nothing is feasible yet.
        let anchor = history
            .iter()
            .min_by(|(_, a), (_, b)| {
                let key = |e: &Evaluation| {
                    if e.is_feasible() {
                        (0.0, e.objective)
                    } else {
                        (e.violation(), f64::INFINITY)
                    }
                };
                key(a)
                    .partial_cmp(&key(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(x, _)| x.clone())
            .unwrap_or_else(|| vec![0.5; dim]);

        // The objective surrogate's lengthscales feed the adaptive direction
        // rule; extracting them is skipped entirely for strategies that do
        // not read them.
        let lengthscales = if self.config.strategy.wants_lengthscales() {
            fitted.objective.lengthscales()
        } else {
            None
        };

        // The configured strategy generates the candidate sets (the paper's
        // full pool, or the LinEasyBO line search) and scores them through
        // the oracle below — one batch per call through the buffer-reusing
        // prediction path, band-split over the worker pool when the batch
        // size makes it worthwhile (bit-identical either way).
        let started = std::time::Instant::now();
        let context = SuggestContext {
            dim,
            anchor: &anchor,
            candidate_pool: self.config.candidate_pool,
            local_candidates: self.config.local_candidates,
            lengthscales,
        };
        let mut oracle = ModelOracle {
            fitted,
            kind: self.config.acquisition,
            tau,
            scores,
        };
        let choice = self.config.strategy.propose(&context, &mut oracle, rng);
        suggest.record(started.elapsed().as_nanos() as u64);
        Ok(choice)
    }

    /// Ensures `models` reflects `history`, returning `true` when a *full*
    /// fit was performed and `false` when the models were kept or
    /// incrementally updated.
    ///
    /// With [`RefitPolicy::Fixed`] this is the cadence logic: a full fit when
    /// due (first call, cadence reached, or the history did not grow by
    /// exactly one point), otherwise the trainers' incremental
    /// single-observation update, falling back to a full fit when a trainer
    /// does not support updates or reports a failure.
    ///
    /// With [`RefitPolicy::NllDrift`] the incremental update runs *first*
    /// (inside the `max_gap` window): it both absorbs the observation and
    /// refreshes the surrogates' maintained likelihood, whose per-point
    /// change since the last full fit is the drift the policy thresholds.
    /// When drift triggers, the full fit warm-starts from the incrementally
    /// updated models — whose hyper-parameters and networks are frozen
    /// copies of the last full fit's, so the fit is bit-identical to one
    /// warm-started from those (the `threshold = 0` ≡ always-refit
    /// equivalence the tests pin).
    ///
    /// Full fits go through [`SurrogateTrainer::fit_many`], handing the
    /// trainer every output (objective plus constraints) in one call so
    /// shareable fit structure is computed once and the per-output training
    /// can run on scoped threads; the previous refit's surrogates are passed
    /// along for trainers that warm-start (the classical GP's
    /// hyper-parameters, the neural ensemble's member networks).
    fn refresh_models(
        &self,
        problem: &dyn Problem,
        history: &[(Vec<f64>, Evaluation)],
        state: &mut SurrogateState<T::Model>,
        rng: &mut StdRng,
    ) -> Result<bool, RefreshError> {
        let n = history.len();
        let policy = self.config.refit;
        let models = &mut state.models;

        if let Some(fitted) = models.as_mut() {
            let gap = n.saturating_sub(fitted.last_full_fit);
            let grew_by_one = n == fitted.trained_on + 1;
            if n == fitted.trained_on {
                // Nothing new to learn (e.g. repeated suggest on a static
                // history); a fixed cadence may still owe a full fit after a
                // run of incremental updates.
                if !policy.due(gap, fitted.drift()) {
                    return Ok(false);
                }
            } else if grew_by_one {
                match policy {
                    RefitPolicy::Fixed(_) => {
                        if !policy.due(gap, None) {
                            let (x_new, eval) = &history[n - 1];
                            if let Some(updated) =
                                self.try_incremental_update(fitted, x_new, eval, rng)
                            {
                                *fitted = updated;
                                return Ok(false);
                            }
                            // Unsupported / failed update: full fit below.
                        }
                    }
                    RefitPolicy::NllDrift { max_gap, .. } => {
                        // Without a drift reference (the surrogates do not
                        // track an NLL) the conservative decision is known up
                        // front — skip the O(N²) incremental update whose
                        // result a full fit would immediately replace.
                        let refit_known_up_front =
                            fitted.fit_nll_per_point.is_none() && policy.due(gap, None);
                        if gap < max_gap.max(1) && !refit_known_up_front {
                            let (x_new, eval) = &history[n - 1];
                            if let Some(updated) =
                                self.try_incremental_update(fitted, x_new, eval, rng)
                            {
                                let due = policy.due(gap, updated.drift());
                                // Keep the absorbed observation either way:
                                // if a full fit follows it warm-starts from
                                // these (frozen-parameter) models.
                                *fitted = updated;
                                if !due {
                                    return Ok(false);
                                }
                                // An imputed stand-in moves the likelihood by
                                // construction, so drift it triggers is not a
                                // model-quality signal.  Cap how many
                                // consecutive failure-driven full refits the
                                // policy may charge (FailurePolicy::
                                // max_failure_refits); suppressed ones stay
                                // on the incremental path.
                                let latest_imputed =
                                    n > 0 && state.recovery.imputed.last() == Some(&(n - 1));
                                if latest_imputed {
                                    if state.consecutive_failure_refits
                                        >= self.config.failure.max_failure_refits
                                    {
                                        state.recovery.failure_refits_suppressed += 1;
                                        return Ok(false);
                                    }
                                    state.consecutive_failure_refits += 1;
                                }
                            }
                            // Unsupported / failed update: full fit below
                            // (drift unknown, conservative).
                        }
                    }
                }
            }
            // Any other history shape (shrunk, jumped): full fit below.
        }

        let xs: Vec<Vec<f64>> = history.iter().map(|(x, _)| x.clone()).collect();
        let num_constraints = problem.num_constraints();
        let mut targets: Vec<Vec<f64>> = Vec::with_capacity(1 + num_constraints);
        targets.push(history.iter().map(|(_, e)| e.objective).collect());
        for c in 0..num_constraints {
            targets.push(history.iter().map(|(_, e)| e.constraints[c]).collect());
        }
        // Previous surrogates (objective first, constraints in order) seed the
        // trainers' warm starts when their shape matches the new fit.
        let prev: Option<Vec<&T::Model>> = models.as_ref().and_then(|fitted| {
            (fitted.constraints.len() == num_constraints).then(|| {
                std::iter::once(&fitted.objective)
                    .chain(fitted.constraints.iter())
                    .collect()
            })
        });
        let mut trained = match self.trainer.fit_many(&xs, &targets, prev.as_deref(), rng) {
            Ok(trained) => trained,
            Err(reason) => {
                if models.is_some() {
                    // Graceful degradation: the previous surrogates are a
                    // usable (if stale) posterior — keep scoring with them
                    // rather than discarding the iteration.  Their
                    // `trained_on` no longer matches the history, so the
                    // next iteration attempts a full fit again.
                    state.recovery.degraded_refits += 1;
                    return Ok(false);
                }
                return Err(RefreshError::Fit(reason));
            }
        };
        if trained.len() != targets.len() {
            return Err(RefreshError::Internal(format!(
                "trainer returned {} models for {} targets",
                trained.len(),
                targets.len()
            )));
        }
        let constraints = trained.split_off(1);
        let objective = trained.pop().ok_or_else(|| {
            RefreshError::Internal("fit_many returned no objective model".to_string())
        })?;
        let mut fitted = FittedModels {
            objective,
            constraints,
            trained_on: n,
            last_full_fit: n,
            fit_nll_per_point: None,
        };
        // Anchor the drift reference at the freshly fitted models' quality.
        fitted.fit_nll_per_point = fitted.nll_per_point();
        // Surface what the surrogates had to recover from while fitting
        // (jittered factorizations, dropped ensemble members) in the
        // run-level log.
        let resilience = fitted.resilience_total();
        state.recovery.jitter_promotions += resilience.jitter_recoveries;
        state.recovery.member_drops += resilience.dropped_members;
        *models = Some(fitted);
        Ok(true)
    }

    /// Applies the trainer's incremental update to the objective model and
    /// every constraint model for one appended evaluation.  Returns `None`
    /// (meaning "do a full fit instead") if the trainer does not support
    /// updates or any individual update fails.
    fn try_incremental_update(
        &self,
        fitted: &FittedModels<T::Model>,
        x_new: &[f64],
        eval: &Evaluation,
        rng: &mut StdRng,
    ) -> Option<FittedModels<T::Model>> {
        let objective = match self
            .trainer
            .update(&fitted.objective, x_new, eval.objective, rng)?
        {
            Ok(m) => m,
            Err(_) => return None,
        };
        let mut constraints = Vec::with_capacity(fitted.constraints.len());
        for (model, &value) in fitted.constraints.iter().zip(eval.constraints.iter()) {
            match self.trainer.update(model, x_new, value, rng)? {
                Ok(m) => constraints.push(m),
                Err(_) => return None,
            }
        }
        Some(FittedModels {
            objective,
            constraints,
            trained_on: fitted.trained_on + 1,
            last_full_fit: fitted.last_full_fit,
            fit_nll_per_point: fitted.fit_nll_per_point,
        })
    }
}

/// Surrogates fitted to a prefix of the evaluation history, kept alive across
/// loop iterations so incremental updates can replace full refits between
/// the [`RefitPolicy`]'s full-fit boundaries.
struct FittedModels<M> {
    objective: M,
    constraints: Vec<M>,
    /// Number of history points the current models incorporate.
    trained_on: usize,
    /// History length at the last from-scratch fit.
    last_full_fit: usize,
    /// Per-point NLL (averaged over outputs) recorded at the last full fit —
    /// the reference the drift policy compares against.  `None` when the
    /// surrogates do not expose a likelihood.
    fit_nll_per_point: Option<f64>,
}

impl<M: SurrogateModel> FittedModels<M> {
    /// Current per-point NLL, averaged over the objective and every
    /// constraint model; `None` as soon as any model does not track one.
    fn nll_per_point(&self) -> Option<f64> {
        if self.trained_on == 0 {
            return None;
        }
        let mut total = self.objective.training_nll()?;
        for c in &self.constraints {
            total += c.training_nll()?;
        }
        Some(total / ((1 + self.constraints.len()) * self.trained_on) as f64)
    }

    /// Absolute change of the per-point NLL since the last full fit — the
    /// drift signal [`RefitPolicy::NllDrift`] thresholds.
    fn drift(&self) -> Option<f64> {
        Some((self.nll_per_point()? - self.fit_nll_per_point?).abs())
    }

    /// Recovery counters accumulated across the objective model and every
    /// constraint model (see [`SurrogateModel::resilience`]).
    fn resilience_total(&self) -> ModelResilience {
        self.constraints
            .iter()
            .fold(self.objective.resilience(), |acc, m| {
                acc.merged(m.resilience())
            })
    }
}

/// Why [`BayesOpt::refresh_models`] could not bring the surrogates up to
/// date: a recoverable training failure (the caller degrades gracefully) or
/// a violated loop invariant (the caller aborts).
enum RefreshError {
    /// The trainer reported a failure and no stale models exist to fall back
    /// on.  Recoverable: the loop suggests a space-filling point instead.
    Fit(String),
    /// A trainer broke the fit-many contract — not recoverable.
    Internal(String),
}

/// The surrogate side of the loop state: the fitted models, the scoring
/// buffers they are queried through, and the refit/recovery bookkeeping.
struct SurrogateState<M> {
    models: Option<FittedModels<M>>,
    scores: ScoreBuffers,
    full_refits: usize,
    /// Acquisition-maximization cost accumulated so far (see [`SuggestCost`]).
    suggest: SuggestCost,
    recovery: RecoveryLog,
    /// Consecutive full refits triggered by drift right after an *imputed*
    /// observation — capped by [`FailurePolicy::max_failure_refits`], reset
    /// by any real observation.
    consecutive_failure_refits: usize,
}

/// Resumable state of an in-flight optimization run, produced by
/// [`BayesOpt::start`] and advanced by [`BayesOpt::step`].
///
/// Checkpoint it with [`BayesOpt::snapshot`] / [`BayesOpt::resume`]; turn it
/// into the final [`OptimizationResult`] with [`BayesOpt::finish`].
pub struct BoState<M> {
    history: Vec<(Vec<f64>, Evaluation)>,
    rng: StdRng,
    surrogate: SurrogateState<M>,
}

impl<M> BoState<M> {
    /// The evaluations performed so far, in order.
    pub fn evaluations(&self) -> &[(Vec<f64>, Evaluation)] {
        &self.history
    }

    /// The recovery log accumulated so far.
    pub fn recovery(&self) -> &RecoveryLog {
        &self.surrogate.recovery
    }

    /// Number of full surrogate refits performed so far.
    pub fn full_refits(&self) -> usize {
        self.surrogate.full_refits
    }
}

/// Snapshot format version written by this build (bumped on any breaking
/// layout change; [`BayesOpt::resume`] refuses other versions).  Version 2
/// added the [`SuggestStrategy`] configuration field and the accumulated
/// [`SuggestCost`] counters.
const SNAPSHOT_VERSION: u32 = 2;

/// A versioned, serializable checkpoint of an optimization run — see
/// [`BayesOpt::snapshot`] and [`BayesOpt::resume`].
///
/// Serialize it with [`BoSnapshot::to_json`] (every finite `f64`
/// round-trips bit-exactly) or through the `serde` value tree directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoSnapshot {
    version: u32,
    config: BoConfig,
    history: Vec<(Vec<f64>, Evaluation)>,
    rng_state: [u64; 4],
    full_refits: usize,
    suggest_cost: SuggestCost,
    recovery: RecoveryLog,
    consecutive_failure_refits: usize,
    models: Option<ModelSnapshot>,
}

impl BoSnapshot {
    /// The snapshot format version this checkpoint was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Number of evaluations the checkpoint contains.
    pub fn num_evaluations(&self) -> usize {
        self.history.len()
    }

    /// Serializes the snapshot to a JSON string.
    pub fn to_json(&self) -> String {
        serde::to_json_string(self)
    }

    /// Parses a snapshot from the JSON produced by [`BoSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`BoError::SnapshotMismatch`] when the payload does not parse
    /// as a snapshot.
    pub fn from_json(text: &str) -> Result<Self, BoError> {
        serde::from_json_str(text).map_err(|e| BoError::SnapshotMismatch {
            details: format!("snapshot JSON does not parse: {e}"),
        })
    }
}

/// The surrogate payloads inside a [`BoSnapshot`], held as self-describing
/// `serde` values so the snapshot type itself stays non-generic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ModelSnapshot {
    objective: Value,
    constraints: Vec<Value>,
    trained_on: usize,
    last_full_fit: usize,
    fit_nll_per_point: Option<f64>,
}

/// Prediction buffers reused across the acquisition scoring of every loop
/// iteration (one vector per modelled output, plus per-band buffers for the
/// worker-pool split and the per-candidate acquisition values), so the
/// batched prediction path writes into stable allocations.
struct ScoreBuffers {
    objective: Vec<crate::surrogate::Prediction>,
    constraints: Vec<Vec<crate::surrogate::Prediction>>,
    /// Acquisition value of every candidate, in candidate order.
    acquisition: Vec<f64>,
    /// Per-band prediction buffers of the parallel scoring path (empty until
    /// a multi-band scoring pass runs).
    bands: Vec<BandBuffers>,
}

impl ScoreBuffers {
    fn new() -> Self {
        ScoreBuffers {
            objective: Vec::new(),
            constraints: Vec::new(),
            acquisition: Vec::new(),
            bands: Vec::new(),
        }
    }
}

/// One scoring band's private prediction buffers: each band predicts its
/// contiguous candidate chunk into its own vectors, so the parallel split
/// shares nothing but the disjoint acquisition output slices.
#[derive(Default)]
struct BandBuffers {
    objective: Vec<crate::surrogate::Prediction>,
    constraints: Vec<Vec<crate::surrogate::Prediction>>,
}

/// The loop's [`AcquisitionOracle`]: scores candidate batches under the
/// fitted surrogates through [`score_candidates`] (and therefore through the
/// persistent [`ScoreBuffers`] and the banded worker-pool split).
struct ModelOracle<'a, M: SurrogateModel> {
    fitted: &'a FittedModels<M>,
    kind: AcquisitionKind,
    tau: Option<f64>,
    scores: &'a mut ScoreBuffers,
}

impl<M: SurrogateModel> AcquisitionOracle for ModelOracle<'_, M> {
    fn score(&mut self, candidates: &[Vec<f64>]) -> &[f64] {
        score_candidates(
            self.fitted,
            candidates,
            self.kind,
            self.tau,
            self.scores,
            score_bands(candidates.len()),
        );
        &self.scores.acquisition
    }
}

/// Candidate pools below this size are scored single-threaded: the
/// per-band dispatch overhead outweighs the prediction work.
const PARALLEL_SCORE_MIN_CANDIDATES: usize = 256;

/// Minimum candidates per band, so the split never degenerates into
/// per-point dispatch (and band batches stay below the surrogates' own
/// internal fan-out thresholds).
const PARALLEL_SCORE_BAND_MIN: usize = 128;

/// Number of bands to split `n` candidates over: bounded by the pool's
/// useful fan-out and by [`PARALLEL_SCORE_BAND_MIN`] points per band; `1`
/// (the sequential reference) below the parallel threshold or on a
/// single-participant pool.
fn score_bands(n: usize) -> usize {
    if n < PARALLEL_SCORE_MIN_CANDIDATES {
        return 1;
    }
    nnbo_pool::WorkerPool::global()
        .participants()
        .min(8)
        .min(n / PARALLEL_SCORE_BAND_MIN)
        .max(1)
}

/// Scores `candidates` under the fitted surrogates, filling
/// `scores.acquisition` with one acquisition value per candidate (in
/// candidate order).
///
/// `bands <= 1` is the sequential reference: one full-batch prediction per
/// surrogate, then a sequential acquisition sweep.  `bands > 1` splits the
/// candidate set into contiguous chunks fanned out over
/// [`nnbo_pool::WorkerPool::global`]; every band predicts its chunk into
/// its own [`BandBuffers`] and writes its disjoint slice of the acquisition
/// output.  Because [`SurrogateModel::predict_batch_into`] is contractually
/// per-point (overrides must write exactly what per-point `predict` calls
/// would), chunked prediction — and therefore the whole banded path — is
/// **bit-identical** to the sequential reference, which the loop's tests
/// pin at forced band counts.
fn score_candidates<M: SurrogateModel>(
    fitted: &FittedModels<M>,
    candidates: &[Vec<f64>],
    kind: AcquisitionKind,
    tau: Option<f64>,
    scores: &mut ScoreBuffers,
    bands: usize,
) {
    let n = candidates.len();
    scores.acquisition.clear();
    scores.acquisition.resize(n, f64::NEG_INFINITY);
    if bands <= 1 || n < 2 {
        fitted
            .objective
            .predict_batch_into(candidates, &mut scores.objective);
        scores
            .constraints
            .resize_with(fitted.constraints.len(), Vec::new);
        for (model, preds) in fitted.constraints.iter().zip(scores.constraints.iter_mut()) {
            model.predict_batch_into(candidates, preds);
        }
        let mut constraint_buf = Vec::with_capacity(scores.constraints.len());
        for (idx, objective_pred) in scores.objective.iter().enumerate() {
            constraint_buf.clear();
            constraint_buf.extend(scores.constraints.iter().map(|preds| preds[idx]));
            scores.acquisition[idx] =
                acquisition::evaluate(kind, objective_pred, &constraint_buf, tau);
        }
        return;
    }

    let chunk = n.div_ceil(bands);
    let n_bands = n.div_ceil(chunk);
    if scores.bands.len() < n_bands {
        scores.bands.resize_with(n_bands, BandBuffers::default);
    }
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(n_bands);
    for ((chunk_xs, out), band) in candidates
        .chunks(chunk)
        .zip(scores.acquisition.chunks_mut(chunk))
        .zip(scores.bands.iter_mut())
    {
        tasks.push(Box::new(move || {
            fitted
                .objective
                .predict_batch_into(chunk_xs, &mut band.objective);
            band.constraints
                .resize_with(fitted.constraints.len(), Vec::new);
            for (model, preds) in fitted.constraints.iter().zip(band.constraints.iter_mut()) {
                model.predict_batch_into(chunk_xs, preds);
            }
            let mut constraint_buf = Vec::with_capacity(band.constraints.len());
            for (idx, objective_pred) in band.objective.iter().enumerate() {
                constraint_buf.clear();
                constraint_buf.extend(band.constraints.iter().map(|preds| preds[idx]));
                out[idx] = acquisition::evaluate(kind, objective_pred, &constraint_buf, tau);
            }
        }));
    }
    nnbo_pool::WorkerPool::global().run_batch(tasks);
}

/// Draws a standard-normal sample by the Box–Muller transform (avoids pulling in a
/// distribution crate).
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{ConstrainedBranin, Hartmann6};

    fn fast_neural(config: BoConfig) -> BayesOpt<NeuralGpEnsembleTrainer> {
        BayesOpt::neural_with(config, EnsembleConfig::fast())
    }

    /// A deterministic analytic surrogate: predictions depend only on the
    /// query point and a weight, so banded and sequential scoring of the
    /// same candidates must agree bit for bit.
    struct RampModel {
        w: f64,
    }

    impl SurrogateModel for RampModel {
        fn predict(&self, x: &[f64]) -> crate::surrogate::Prediction {
            let s: f64 = x
                .iter()
                .enumerate()
                .map(|(i, v)| v * (i as f64 + self.w))
                .sum();
            crate::surrogate::Prediction::new(s.sin(), 0.1 + s.cos().abs())
        }
    }

    #[test]
    fn banded_acquisition_scoring_is_bit_identical_to_sequential() {
        let fitted = FittedModels {
            objective: RampModel { w: 1.3 },
            constraints: vec![RampModel { w: 2.7 }, RampModel { w: 0.4 }],
            trained_on: 16,
            last_full_fit: 16,
            fit_nll_per_point: None,
        };
        let mut rng = StdRng::seed_from_u64(42);
        let candidates: Vec<Vec<f64>> = (0..1280)
            .map(|_| (0..6).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        for (kind, tau) in [
            (AcquisitionKind::WeightedExpectedImprovement, Some(0.2)),
            (AcquisitionKind::WeightedExpectedImprovement, None),
            (
                AcquisitionKind::LowerConfidenceBound { kappa: 2.0 },
                Some(-0.4),
            ),
        ] {
            let mut reference = ScoreBuffers::new();
            score_candidates(&fitted, &candidates, kind, tau, &mut reference, 1);
            assert_eq!(reference.acquisition.len(), candidates.len());
            // Forced band counts stand in for forced worker counts: each band
            // is one worker-pool task, whichever thread picks it up.
            for bands in [2, 3, 5, 8] {
                let mut banded = ScoreBuffers::new();
                score_candidates(&fitted, &candidates, kind, tau, &mut banded, bands);
                assert_eq!(
                    banded.acquisition, reference.acquisition,
                    "bands={bands} diverged for {kind:?}/tau={tau:?}"
                );
            }
        }
    }

    #[test]
    fn score_bands_respects_the_thresholds() {
        assert_eq!(score_bands(0), 1);
        assert_eq!(score_bands(PARALLEL_SCORE_MIN_CANDIDATES - 1), 1);
        let bands = score_bands(1280);
        assert!((1..=8).contains(&bands));
        assert!(bands <= 1280 / PARALLEL_SCORE_BAND_MIN);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let problem = ConstrainedBranin::new();
        let too_few_init = fast_neural(BoConfig::fast(1, 10));
        assert!(matches!(
            too_few_init.run(&problem),
            Err(BoError::InvalidConfig { .. })
        ));
        let budget_too_small = fast_neural(BoConfig::fast(10, 5));
        assert!(matches!(
            budget_too_small.run(&problem),
            Err(BoError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn respects_the_evaluation_budget() {
        let problem = ConstrainedBranin::new();
        let bo = fast_neural(BoConfig::fast(6, 10).with_seed(3));
        let result = bo.run(&problem).unwrap();
        assert_eq!(result.num_evaluations(), 10);
        assert_eq!(result.initial_samples(), 6);
    }

    #[test]
    fn suggest_cost_counts_model_guided_iterations_only() {
        let problem = ConstrainedBranin::new();
        let bo = fast_neural(BoConfig::fast(6, 11).with_seed(9));
        let result = bo.run(&problem).unwrap();
        let cost = result.suggest_cost();
        // One acquisition maximization per model-guided iteration; the
        // initial design and any fallback suggests are never counted.
        assert_eq!(cost.calls, 11 - 6);
        assert!(cost.nanos > 0, "scoring a candidate pool takes time");
        assert!((cost.mean_nanos() - cost.nanos as f64 / cost.calls as f64).abs() < 1e-9);
        // Histories assembled outside the loop carry no acquisition cost.
        let synthetic = OptimizationResult::from_history(result.evaluations().to_vec(), 6);
        assert_eq!(synthetic.suggest_cost(), SuggestCost::default());
        assert_eq!(synthetic.suggest_cost().mean_nanos(), 0.0);
    }

    #[test]
    fn finds_a_feasible_branin_point_and_improves_over_initial_design() {
        let problem = ConstrainedBranin::new();
        let bo = fast_neural(BoConfig::fast(10, 28).with_seed(11));
        let result = bo.run(&problem).unwrap();
        let best = result.best_objective().expect("a feasible point is found");
        // The initial-design-only best (first 10 evaluations).
        let initial_best = result.evaluations()[..10]
            .iter()
            .filter(|(_, e)| e.is_feasible())
            .map(|(_, e)| e.objective)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best <= initial_best,
            "BO best {best} vs initial {initial_best}"
        );
        assert!(
            best < 3.0,
            "best Branin value {best} is far from the optimum"
        );
    }

    #[test]
    fn unconstrained_problems_work_too() {
        let problem = Hartmann6::new();
        let bo = fast_neural(BoConfig::fast(12, 22).with_seed(5));
        let result = bo.run(&problem).unwrap();
        // Every evaluation of an unconstrained problem is feasible.
        assert_eq!(result.first_feasible_at(), Some(1));
        assert!(result.best_objective().unwrap() < -0.5);
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_seed() {
        let problem = ConstrainedBranin::new();
        let run = |seed| {
            fast_neural(BoConfig::fast(6, 12).with_seed(seed))
                .run(&problem)
                .unwrap()
                .evaluations()
                .iter()
                .map(|(_, e)| e.objective)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn convergence_curve_is_monotone_nonincreasing() {
        let problem = ConstrainedBranin::new();
        let bo = fast_neural(BoConfig::fast(8, 16).with_seed(7));
        let result = bo.run(&problem).unwrap();
        let curve = result.convergence_curve();
        assert_eq!(curve.len(), result.num_evaluations());
        for w in curve.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn simulations_to_converge_is_consistent_with_history() {
        let problem = ConstrainedBranin::new();
        let bo = fast_neural(BoConfig::fast(8, 16).with_seed(19));
        let result = bo.run(&problem).unwrap();
        if let Some(n) = result.simulations_to_converge(1e-9) {
            assert!(n <= result.num_evaluations());
            let curve = result.convergence_curve();
            assert!((curve[n - 1] - result.best_objective().unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn incremental_refit_cadence_runs_and_still_optimizes() {
        let problem = ConstrainedBranin::new();
        // Full hyper-parameter refit only every 4 evaluations; the iterations
        // in between absorb their observation through rank-1 updates.
        let bo = fast_neural(
            BoConfig::fast(10, 26)
                .with_seed(11)
                .with_refit_policy(RefitPolicy::Fixed(4)),
        );
        let result = bo.run(&problem).unwrap();
        assert_eq!(result.num_evaluations(), 26);
        // 16 model-guided iterations at cadence 4: far fewer full refits than
        // always-refit would perform.
        assert!(
            result.full_refits() < 16,
            "cadence 4 performed {} full refits",
            result.full_refits()
        );
        let best = result.best_objective().expect("a feasible point is found");
        assert!(
            best < 5.0,
            "best Branin value {best} with incremental refits"
        );
    }

    #[test]
    fn refit_every_one_matches_the_always_refit_reference() {
        // Fixed(1) must reproduce the plain always-refit loop exactly: the
        // incremental path never triggers and the rng stream is untouched.
        // The deprecated with_refit_every shim maps onto the same policy.
        let problem = ConstrainedBranin::new();
        let base = fast_neural(BoConfig::fast(6, 12).with_seed(21))
            .run(&problem)
            .unwrap();
        let explicit = fast_neural(
            BoConfig::fast(6, 12)
                .with_seed(21)
                .with_refit_policy(RefitPolicy::Fixed(1)),
        )
        .run(&problem)
        .unwrap();
        assert_eq!(base.evaluations(), explicit.evaluations());
        // Always-refit means one full fit per model-guided iteration.
        assert_eq!(base.full_refits(), 12 - 6);
        #[allow(deprecated)]
        let shim = BoConfig::fast(6, 12).with_seed(21).with_refit_every(1);
        assert_eq!(shim, BoConfig::fast(6, 12).with_seed(21));
    }

    #[test]
    fn deprecated_refit_every_shim_maps_onto_fixed_policy() {
        #[allow(deprecated)]
        let shim = BoConfig::fast(8, 20).with_refit_every(5);
        assert_eq!(shim.refit, RefitPolicy::Fixed(5));
        let problem = ConstrainedBranin::new();
        #[allow(deprecated)]
        let via_shim = fast_neural(BoConfig::fast(6, 14).with_seed(9).with_refit_every(3))
            .run(&problem)
            .unwrap();
        let via_policy = fast_neural(
            BoConfig::fast(6, 14)
                .with_seed(9)
                .with_refit_policy(RefitPolicy::Fixed(3)),
        )
        .run(&problem)
        .unwrap();
        assert_eq!(via_shim.evaluations(), via_policy.evaluations());
        assert_eq!(via_shim.full_refits(), via_policy.full_refits());
    }

    #[test]
    fn nll_drift_with_zero_threshold_is_bit_identical_to_always_refit() {
        // threshold = 0 means every measured drift (the comparison is ≥)
        // triggers a full refit on the min_gap = 1 cadence, and the full fit
        // warm-starts from incrementally updated models whose parameters are
        // frozen copies of the last fit's — so the suggestions, evaluations
        // and rng stream reproduce the always-refit loop exactly.
        let problem = ConstrainedBranin::new();
        let always = fast_neural(BoConfig::fast(6, 13).with_seed(29))
            .run(&problem)
            .unwrap();
        let drift = fast_neural(BoConfig::fast(6, 13).with_seed(29).with_refit_policy(
            RefitPolicy::NllDrift {
                threshold: 0.0,
                min_gap: 1,
                max_gap: 1000,
            },
        ))
        .run(&problem)
        .unwrap();
        assert_eq!(always.evaluations(), drift.evaluations());
        assert_eq!(always.full_refits(), drift.full_refits());
    }

    #[test]
    fn nll_drift_saves_full_refits_and_still_optimizes() {
        let problem = ConstrainedBranin::new();
        let always = fast_neural(BoConfig::fast(10, 26).with_seed(11))
            .run(&problem)
            .unwrap();
        let drift = fast_neural(
            BoConfig::fast(10, 26)
                .with_seed(11)
                .with_refit_policy(RefitPolicy::nll_drift(0.5)),
        )
        .run(&problem)
        .unwrap();
        assert_eq!(drift.num_evaluations(), always.num_evaluations());
        assert!(
            drift.full_refits() < always.full_refits(),
            "drift performed {} full refits vs always-refit's {}",
            drift.full_refits(),
            always.full_refits()
        );
        let best = drift.best_objective().expect("a feasible point is found");
        assert!(best < 5.0, "best Branin value {best} under drift refits");
    }

    #[test]
    fn invalid_refit_policies_are_rejected() {
        let problem = ConstrainedBranin::new();
        for policy in [
            RefitPolicy::Fixed(0),
            RefitPolicy::NllDrift {
                threshold: -1.0,
                min_gap: 1,
                max_gap: 4,
            },
            RefitPolicy::NllDrift {
                threshold: f64::NAN,
                min_gap: 1,
                max_gap: 4,
            },
            RefitPolicy::NllDrift {
                threshold: 0.1,
                min_gap: 0,
                max_gap: 4,
            },
            RefitPolicy::NllDrift {
                threshold: 0.1,
                min_gap: 5,
                max_gap: 4,
            },
        ] {
            let bo = fast_neural(BoConfig::fast(6, 10).with_refit_policy(policy));
            assert!(
                matches!(bo.run(&problem), Err(BoError::InvalidConfig { .. })),
                "policy {policy:?} was not rejected"
            );
        }
    }

    #[test]
    fn refit_policy_due_rule_is_the_documented_one() {
        assert!(RefitPolicy::Fixed(1).due(1, None));
        assert!(!RefitPolicy::Fixed(4).due(3, Some(1e9)));
        assert!(RefitPolicy::Fixed(4).due(4, None));
        let drift = RefitPolicy::NllDrift {
            threshold: 0.25,
            min_gap: 2,
            max_gap: 6,
        };
        // Below min_gap: never, no matter the drift.
        assert!(!drift.due(1, Some(10.0)));
        // In the band: thresholded (the comparison is ≥).
        assert!(!drift.due(2, Some(0.1)));
        assert!(drift.due(2, Some(0.25)));
        // Unknown drift: conservative refit.
        assert!(drift.due(2, None));
        // Degenerate (non-finite) drift — the incremental likelihood itself
        // broke — is also a conservative refit, not "no drift measured".
        assert!(drift.due(2, Some(f64::NAN)));
        assert!(drift.due(2, Some(f64::INFINITY)));
        // At max_gap: always.
        assert!(drift.due(6, Some(0.0)));
    }

    #[test]
    fn suggest_returns_a_point_in_the_unit_cube() {
        let problem = ConstrainedBranin::new();
        let bo = fast_neural(BoConfig::fast(6, 12).with_seed(3));
        let mut rng = StdRng::seed_from_u64(9);
        let history: Vec<_> = latin_hypercube_history(&problem, 8, &mut rng);
        let x = bo.suggest(&problem, &history, &mut rng).unwrap();
        assert_eq!(x.len(), problem.dim());
        assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    fn latin_hypercube_history(
        problem: &dyn crate::problems::Problem,
        n: usize,
        rng: &mut StdRng,
    ) -> Vec<(Vec<f64>, crate::problems::Evaluation)> {
        crate::sampling::latin_hypercube(n, problem.dim(), rng)
            .into_iter()
            .map(|x| {
                let e = problem.evaluate(&x);
                (x, e)
            })
            .collect()
    }

    #[test]
    fn alternative_acquisitions_run_end_to_end() {
        let problem = ConstrainedBranin::new();
        for kind in [
            AcquisitionKind::ExpectedImprovement,
            AcquisitionKind::LowerConfidenceBound { kappa: 2.0 },
            AcquisitionKind::ProbabilityOfImprovement,
        ] {
            let bo = fast_neural(BoConfig::fast(6, 10).with_seed(2).with_acquisition(kind));
            let result = bo.run(&problem).unwrap();
            assert_eq!(result.num_evaluations(), 10);
        }
    }

    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Fault injection: fails every `try_evaluate` whose 0-based call index
    /// falls in `fail_from..fail_until` (retries consume call indices too).
    struct BurstFailure<P> {
        inner: P,
        calls: AtomicUsize,
        fail_from: usize,
        fail_until: usize,
    }

    impl<P: Problem> BurstFailure<P> {
        fn new(inner: P, fail_from: usize, fail_until: usize) -> Self {
            BurstFailure {
                inner,
                calls: AtomicUsize::new(0),
                fail_from,
                fail_until,
            }
        }
    }

    impl<P: Problem> Problem for BurstFailure<P> {
        fn dim(&self) -> usize {
            self.inner.dim()
        }
        fn num_constraints(&self) -> usize {
            self.inner.num_constraints()
        }
        fn evaluate(&self, x: &[f64]) -> Evaluation {
            self.inner.evaluate(x)
        }
        fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
            let i = self.calls.fetch_add(1, Ordering::SeqCst);
            if i >= self.fail_from && i < self.fail_until {
                EvalOutcome::Failed(format!("injected failure on call {i}"))
            } else {
                self.inner.try_evaluate(x)
            }
        }
    }

    /// Fault injection: fails the `fit_many` calls whose 0-based call index
    /// is listed, delegating everything else to the wrapped trainer.
    struct FailNthFit<T> {
        inner: T,
        calls: AtomicUsize,
        fail_calls: Vec<usize>,
    }

    impl<T: SurrogateTrainer> SurrogateTrainer for FailNthFit<T> {
        type Model = T::Model;

        fn fit(
            &self,
            xs: &[Vec<f64>],
            ys: &[f64],
            rng: &mut StdRng,
        ) -> Result<Self::Model, String> {
            self.inner.fit(xs, ys, rng)
        }

        fn fit_many(
            &self,
            xs: &[Vec<f64>],
            targets: &[Vec<f64>],
            prev: Option<&[&Self::Model]>,
            rng: &mut StdRng,
        ) -> Result<Vec<Self::Model>, String> {
            let i = self.calls.fetch_add(1, Ordering::SeqCst);
            if self.fail_calls.contains(&i) {
                return Err(format!("injected fit failure on call {i}"));
            }
            self.inner.fit_many(xs, targets, prev, rng)
        }

        fn update(
            &self,
            prev: &Self::Model,
            x: &[f64],
            y: f64,
            rng: &mut StdRng,
        ) -> Option<Result<Self::Model, String>> {
            self.inner.update(prev, x, y, rng)
        }
    }

    #[test]
    fn failed_evaluations_are_retried_imputed_and_never_win() {
        // Calls 8..12 fail: the initial design (6 calls) stays clean, then a
        // model-guided evaluation exhausts its retries (3 calls under the
        // default policy) and is imputed, and the next one recovers through
        // a retry.
        let problem = BurstFailure::new(ConstrainedBranin::new(), 8, 12);
        let bo = fast_neural(BoConfig::fast(6, 14).with_seed(17));
        let result = bo.run(&problem).unwrap();
        assert_eq!(result.num_evaluations(), 14);
        let rec = result.recovery();
        assert!(rec.eval_failures > 0, "no failures recorded: {rec:?}");
        assert!(rec.eval_retries > 0, "no retries recorded: {rec:?}");
        assert!(!rec.imputed.is_empty(), "nothing imputed: {rec:?}");
        assert!(!rec.is_clean());
        for (i, (x, e)) in result.evaluations().iter().enumerate() {
            assert!(
                e.objective.is_finite() && e.constraints.iter().all(|g| g.is_finite()),
                "non-finite evaluation at index {i}"
            );
            assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
        }
        // An optimum must come from a real simulation, never an imputed
        // stand-in.
        let best = result.best_index().expect("a real feasible point exists");
        assert!(!rec.imputed.contains(&best));
    }

    #[test]
    fn clean_runs_are_bit_identical_across_failure_policies() {
        // The resilience layer must be inert on a failure-free run: no extra
        // rng draws, no recovery events, identical evaluations whatever the
        // policy.
        let problem = ConstrainedBranin::new();
        let base = fast_neural(BoConfig::fast(6, 12).with_seed(33))
            .run(&problem)
            .unwrap();
        assert!(base.recovery().is_clean());
        assert_eq!(base.recovery().total_events(), 0);
        for policy in [
            FailurePolicy::no_retries(),
            FailurePolicy {
                max_retries: 5,
                retry_jitter: 0.2,
                on_exhausted: FailureAction::Penalize { margin: 0.5 },
                max_failure_refits: 1,
            },
            FailurePolicy {
                on_exhausted: FailureAction::ImputeWorst,
                ..FailurePolicy::default()
            },
        ] {
            let run = fast_neural(
                BoConfig::fast(6, 12)
                    .with_seed(33)
                    .with_failure_policy(policy),
            )
            .run(&problem)
            .unwrap();
            assert_eq!(base.evaluations(), run.evaluations());
            assert!(run.recovery().is_clean());
        }
    }

    #[test]
    fn snapshot_resume_is_bit_identical_through_json() {
        let problem = ConstrainedBranin::new();
        let bo = fast_neural(BoConfig::fast(6, 14).with_seed(5));
        let reference = bo.run(&problem).unwrap();

        let mut state = bo.start(&problem).unwrap();
        for _ in 0..3 {
            assert!(bo.step(&problem, &mut state).unwrap());
        }
        let snap = bo.snapshot(&state);
        assert_eq!(snap.version(), SNAPSHOT_VERSION);
        assert_eq!(snap.num_evaluations(), 6 + 3);
        let restored = BoSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, restored);

        let mut resumed = bo.resume(&restored).unwrap();
        while bo.step(&problem, &mut state).unwrap() {}
        while bo.step(&problem, &mut resumed).unwrap() {}
        let direct = bo.finish(state);
        let from_snapshot = bo.finish(resumed);
        assert_eq!(direct.evaluations(), from_snapshot.evaluations());
        assert_eq!(direct.full_refits(), from_snapshot.full_refits());
        // And both match the uninterrupted run bit for bit.
        assert_eq!(direct.evaluations(), reference.evaluations());
        assert_eq!(direct.full_refits(), reference.full_refits());
    }

    #[test]
    fn resume_rejects_version_and_config_mismatches() {
        let problem = ConstrainedBranin::new();
        let bo = fast_neural(BoConfig::fast(6, 12).with_seed(1));
        let mut state = bo.start(&problem).unwrap();
        assert!(bo.step(&problem, &mut state).unwrap());
        let snap = bo.snapshot(&state);

        let mut wrong_version = snap.clone();
        wrong_version.version = SNAPSHOT_VERSION + 1;
        assert!(matches!(
            bo.resume(&wrong_version),
            Err(BoError::SnapshotMismatch { .. })
        ));

        let other_config = fast_neural(BoConfig::fast(6, 12).with_seed(2));
        assert!(matches!(
            other_config.resume(&snap),
            Err(BoError::SnapshotMismatch { .. })
        ));

        assert!(matches!(
            BoSnapshot::from_json("not a snapshot"),
            Err(BoError::SnapshotMismatch { .. })
        ));
    }

    #[test]
    fn drift_refits_from_imputed_observations_are_capped() {
        // Every model-guided evaluation fails and is imputed; the imputed
        // stand-ins move the likelihood, so an uncapped drift policy would
        // charge a full refit every iteration for observations that carry no
        // information.  The cap allows max_failure_refits consecutive
        // failure-driven refits, then pins the loop to the incremental path.
        let problem = BurstFailure::new(ConstrainedBranin::new(), 6, usize::MAX);
        let policy = FailurePolicy {
            max_retries: 0,
            on_exhausted: FailureAction::ImputeWorst,
            max_failure_refits: 2,
            ..FailurePolicy::default()
        };
        let bo = fast_neural(
            BoConfig::fast(6, 12)
                .with_seed(13)
                .with_failure_policy(policy)
                .with_refit_policy(RefitPolicy::NllDrift {
                    threshold: 0.0,
                    min_gap: 1,
                    max_gap: 1000,
                }),
        );
        let result = bo.run(&problem).unwrap();
        assert_eq!(result.num_evaluations(), 12);
        let rec = result.recovery();
        assert_eq!(rec.imputed.len(), 6, "all guided evaluations imputed");
        // 1 initial fit + the 2 allowed failure-driven refits.
        assert_eq!(result.full_refits(), 3, "recovery: {rec:?}");
        // The remaining 3 drift triggers were suppressed.
        assert_eq!(rec.failure_refits_suppressed, 3, "recovery: {rec:?}");
    }

    #[test]
    fn fit_failures_degrade_to_stale_models_or_space_filling() {
        let problem = ConstrainedBranin::new();
        // Fit call 2 fails with models alive: the loop keeps scoring with the
        // stale surrogates and recovers on the next iteration's full fit.
        let bo = BayesOpt::with_trainer(
            BoConfig::fast(6, 12).with_seed(7),
            FailNthFit {
                inner: NeuralGpEnsembleTrainer::new(EnsembleConfig::fast()),
                calls: AtomicUsize::new(0),
                fail_calls: vec![2],
            },
        );
        let result = bo.run(&problem).unwrap();
        assert_eq!(result.num_evaluations(), 12);
        assert_eq!(result.recovery().degraded_refits, 1);
        assert_eq!(result.recovery().fallback_suggests, 0);
        // 6 model-guided iterations, one of which kept stale models.
        assert_eq!(result.full_refits(), 5);

        // The very first fit fails with nothing to fall back on: that
        // iteration degrades all the way to a space-filling suggestion.
        let bo = BayesOpt::with_trainer(
            BoConfig::fast(6, 12).with_seed(7),
            FailNthFit {
                inner: NeuralGpEnsembleTrainer::new(EnsembleConfig::fast()),
                calls: AtomicUsize::new(0),
                fail_calls: vec![0],
            },
        );
        let result = bo.run(&problem).unwrap();
        assert_eq!(result.num_evaluations(), 12);
        assert_eq!(result.recovery().fallback_suggests, 1);
        assert_eq!(result.full_refits(), 5);
    }
}
