//! The (box-constrained) design space of a sizing problem.

use serde::{Deserialize, Serialize};

/// A rectangular design space: per-dimension lower/upper bounds plus conversion to
/// and from the normalised unit hypercube in which the surrogates and acquisition
/// optimizers operate.
///
/// # Example
///
/// ```
/// use nnbo_core::DesignSpace;
///
/// let space = DesignSpace::new(vec![(1.0, 3.0), (10.0, 30.0)]);
/// let phys = space.denormalize(&[0.5, 0.25]);
/// assert_eq!(phys, vec![2.0, 15.0]);
/// assert_eq!(space.normalize(&phys), vec![0.5, 0.25]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    bounds: Vec<(f64, f64)>,
}

impl DesignSpace {
    /// Creates a design space from per-dimension `(lower, upper)` bounds.
    ///
    /// # Panics
    ///
    /// Panics if any bound pair has `upper <= lower` or a non-finite value.
    pub fn new(bounds: Vec<(f64, f64)>) -> Self {
        assert!(
            !bounds.is_empty(),
            "design space must have at least one dimension"
        );
        for (i, (lo, hi)) in bounds.iter().enumerate() {
            assert!(
                lo.is_finite() && hi.is_finite() && hi > lo,
                "invalid bounds at dimension {i}: ({lo}, {hi})"
            );
        }
        DesignSpace { bounds }
    }

    /// The unit hypercube `[0, 1]^dim`.
    pub fn unit(dim: usize) -> Self {
        DesignSpace::new(vec![(0.0, 1.0); dim])
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.bounds.len()
    }

    /// Per-dimension bounds.
    pub fn bounds(&self) -> &[(f64, f64)] {
        &self.bounds
    }

    /// Maps a normalised point in `[0, 1]^dim` to physical units (values outside the
    /// unit cube are clamped first).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn denormalize(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        x.iter()
            .zip(self.bounds.iter())
            .map(|(t, (lo, hi))| lo + t.clamp(0.0, 1.0) * (hi - lo))
            .collect()
    }

    /// Maps a physical point to normalised coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn normalize(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        x.iter()
            .zip(self.bounds.iter())
            .map(|(v, (lo, hi))| (v - lo) / (hi - lo))
            .collect()
    }

    /// Clamps a normalised point into the unit cube in place.
    pub fn clamp_unit(x: &mut [f64]) {
        for v in x {
            *v = v.clamp(0.0, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_normalization() {
        let space = DesignSpace::new(vec![(-1.0, 1.0), (0.0, 10.0), (5.0, 6.0)]);
        let x = vec![0.25, 0.5, 1.0];
        let phys = space.denormalize(&x);
        assert_eq!(phys, vec![-0.5, 5.0, 6.0]);
        let back = space.normalize(&phys);
        for (a, b) in back.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_range_points_are_clamped() {
        let space = DesignSpace::unit(2);
        assert_eq!(space.denormalize(&[-0.5, 1.5]), vec![0.0, 1.0]);
        let mut x = [1.2, -0.1];
        DesignSpace::clamp_unit(&mut x);
        assert_eq!(x, [1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn inverted_bounds_are_rejected() {
        let _ = DesignSpace::new(vec![(2.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_bounds_are_rejected() {
        let _ = DesignSpace::new(vec![]);
    }
}
