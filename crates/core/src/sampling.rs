//! Initial-design sampling: Latin hypercube and uniform random designs.

use rand::seq::SliceRandom;
use rand::Rng;

/// Draws `n` points uniformly at random from the unit hypercube `[0, 1]^dim`.
///
/// # Example
///
/// ```
/// use nnbo_core::uniform_random;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let points = uniform_random(10, 3, &mut rng);
/// assert_eq!(points.len(), 10);
/// assert!(points.iter().flatten().all(|v| (0.0..=1.0).contains(v)));
/// ```
pub fn uniform_random<R: Rng + ?Sized>(n: usize, dim: usize, rng: &mut R) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect()
}

/// Draws an `n`-point Latin hypercube sample in the unit hypercube `[0, 1]^dim`.
///
/// Each dimension is divided into `n` equal strata and each stratum is hit exactly
/// once, which gives much better space-filling than plain uniform sampling for the
/// small initial designs used by Bayesian optimization (30 points in Table I, 100 in
/// Table II of the paper).
///
/// # Panics
///
/// Panics if `n == 0` or `dim == 0`.
pub fn latin_hypercube<R: Rng + ?Sized>(n: usize, dim: usize, rng: &mut R) -> Vec<Vec<f64>> {
    assert!(n > 0, "sample count must be positive");
    assert!(dim > 0, "dimension must be positive");
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(dim);
    for _ in 0..dim {
        let mut strata: Vec<usize> = (0..n).collect();
        strata.shuffle(rng);
        let column: Vec<f64> = strata
            .into_iter()
            .map(|s| (s as f64 + rng.gen_range(0.0..1.0)) / n as f64)
            .collect();
        columns.push(column);
    }
    (0..n)
        .map(|i| (0..dim).map(|d| columns[d][i]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn latin_hypercube_has_one_point_per_stratum() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 16;
        let dim = 4;
        let points = latin_hypercube(n, dim, &mut rng);
        assert_eq!(points.len(), n);
        for d in 0..dim {
            let mut counts = vec![0usize; n];
            for p in &points {
                let stratum = ((p[d] * n as f64).floor() as usize).min(n - 1);
                counts[stratum] += 1;
            }
            assert!(
                counts.iter().all(|&c| c == 1),
                "dimension {d} strata counts {counts:?}"
            );
        }
    }

    #[test]
    fn samples_stay_in_unit_cube() {
        let mut rng = StdRng::seed_from_u64(4);
        for points in [
            latin_hypercube(25, 7, &mut rng),
            uniform_random(25, 7, &mut rng),
        ] {
            assert!(points.iter().flatten().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let a = latin_hypercube(10, 3, &mut StdRng::seed_from_u64(9));
        let b = latin_hypercube(10, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = latin_hypercube(10, 3, &mut StdRng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "sample count must be positive")]
    fn zero_samples_panics() {
        let _ = latin_hypercube(0, 2, &mut StdRng::seed_from_u64(0));
    }
}
