//! # `nnbo-core` — Bayesian optimization with a neural-network Gaussian process
//!
//! This crate implements the primary contribution of *"Bayesian Optimization
//! Approach for Analog Circuit Synthesis Using Neural Network"* (Zhang et al.,
//! DATE 2019):
//!
//! * [`NeuralGp`] — a Gaussian-process surrogate whose kernel is defined implicitly
//!   by a learned feature map: a fully-connected ReLU network maps the design point
//!   to an `M`-dimensional feature vector and a Bayesian linear model on those
//!   features is an exact GP (weight-space view, eqs. 8–10 of the paper).  The
//!   network weights and the hyper-parameters `σn`, `σp` are trained jointly by
//!   maximising the log marginal likelihood (eqs. 11–12) with Adam.  Training cost
//!   is `O(N·M² + M³)` — linear in the number of observations — and prediction cost
//!   is constant, versus `O(N³)`/`O(N²)` for the classical GP.
//! * [`NeuralGpEnsemble`] — the model average of `K` randomly-initialised neural
//!   GPs (eq. 13), improving the quality of the predicted uncertainty.
//! * [`acquisition`] — expected improvement, the constraint-weighted expected
//!   improvement (wEI, eq. 7) used by the paper, UCB and PI.
//! * [`BayesOpt`] — the constrained single-objective Bayesian-optimization loop of
//!   Algorithm 1, generic over the surrogate so the classic-GP baselines can reuse
//!   it.
//! * [`problems`] — ready-made [`Problem`] adapters for the paper's two circuits
//!   (the two-stage op-amp of Table I and the charge pump of Table II, both
//!   simulated by [`nnbo_circuits`]) plus synthetic constrained benchmarks.
//!
//! # Surrogate lifecycle: refit policies and warm refits
//!
//! The Bayesian-optimization loop decides *when* to perform a full surrogate
//! refit through [`RefitPolicy`] (`BoConfig::refit`):
//!
//! * [`RefitPolicy::Fixed`]`(k)` refits every `k` evaluations —
//!   `Fixed(1)` is the paper's Algorithm 1, retraining at every iteration.
//! * [`RefitPolicy::NllDrift`] adapts the cadence to observed model quality:
//!   every incremental `append_observation` refreshes the surrogates'
//!   maintained likelihood ([`SurrogateModel::training_nll`]) under the
//!   frozen parameters, and a full warm refit triggers only when the
//!   per-point NLL has drifted past a threshold since the last full fit
//!   (with a `min_gap`/`max_gap` band bounding the cadence).  With
//!   `threshold = 0` it reproduces always-refit bit for bit; with a real
//!   threshold it reaches near-always-refit likelihoods at a fraction of
//!   the full fits (`reproduce fit`'s `refit_policy` section measures
//!   this).
//!
//! Both surrogate families amortize the full refits that do happen instead
//! of starting from scratch:
//!
//! * [`NeuralGp::fit_warm`] continues Adam from the previous fit's flat
//!   parameters (`log σn`, `log σp`, network weights) for the reduced
//!   [`NeuralGpConfig::warm_epochs`] budget with a gradient-norm early stop,
//!   falling back to the full cold training when the warm descent's final
//!   likelihood regresses past the cold initial point — so a warm refit is
//!   never worse than not training at all.
//! * [`NeuralGpEnsemble::fit_warm`] applies that member-by-member: member `k`
//!   continues from the previous ensemble's member `k` (DNN-Opt-style
//!   amortized retraining), and `NeuralGpEnsembleTrainer`'s
//!   [`SurrogateTrainer::fit_many`] pairs the previous ensembles that
//!   [`BayesOpt`] passes with the flat outputs × members job list.
//! * Between full refits, `append_observation` on either surrogate absorbs a
//!   single observation in `O(M²)` / `O(K·M²)` with everything else frozen.
//!
//! # Quick start
//!
//! ```
//! use nnbo_core::{BayesOpt, BoConfig, problems::ConstrainedBranin};
//!
//! # fn main() -> Result<(), nnbo_core::BoError> {
//! let problem = ConstrainedBranin::new();
//! let config = BoConfig::fast(8, 12).with_seed(7);
//! let result = BayesOpt::neural(config).run(&problem)?;
//! assert!(result.evaluations().len() <= 12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod acquisition;
mod bo;
mod design_space;
mod ensemble;
mod error;
mod neural_gp;
pub mod problems;
mod report;
mod sampling;
mod surrogate;

pub use bo::{BayesOpt, BoConfig, OptimizationResult, RefitPolicy};
pub use design_space::DesignSpace;
pub use ensemble::{EnsembleConfig, NeuralGpEnsemble, NeuralGpEnsembleTrainer};
pub use error::BoError;
pub use neural_gp::{NeuralGp, NeuralGpConfig, NeuralGpTrainer};
pub use problems::{Evaluation, Problem};
pub use report::{RunStatistics, RunSummary};
pub use sampling::{latin_hypercube, uniform_random};
pub use surrogate::{Prediction, SurrogateModel, SurrogateTrainer};
