//! # `nnbo-core` — Bayesian optimization with a neural-network Gaussian process
//!
//! This crate implements the primary contribution of *"Bayesian Optimization
//! Approach for Analog Circuit Synthesis Using Neural Network"* (Zhang et al.,
//! DATE 2019):
//!
//! * [`NeuralGp`] — a Gaussian-process surrogate whose kernel is defined implicitly
//!   by a learned feature map: a fully-connected ReLU network maps the design point
//!   to an `M`-dimensional feature vector and a Bayesian linear model on those
//!   features is an exact GP (weight-space view, eqs. 8–10 of the paper).  The
//!   network weights and the hyper-parameters `σn`, `σp` are trained jointly by
//!   maximising the log marginal likelihood (eqs. 11–12) with Adam.  Training cost
//!   is `O(N·M² + M³)` — linear in the number of observations — and prediction cost
//!   is constant, versus `O(N³)`/`O(N²)` for the classical GP.
//! * [`NeuralGpEnsemble`] — the model average of `K` randomly-initialised neural
//!   GPs (eq. 13), improving the quality of the predicted uncertainty.
//! * [`acquisition`] — expected improvement, the constraint-weighted expected
//!   improvement (wEI, eq. 7) used by the paper, UCB and PI.
//! * [`BayesOpt`] — the constrained single-objective Bayesian-optimization loop of
//!   Algorithm 1, generic over the surrogate so the classic-GP baselines can reuse
//!   it.
//! * [`problems`] — ready-made [`Problem`] adapters for the paper's two circuits
//!   (the two-stage op-amp of Table I and the charge pump of Table II, both
//!   simulated by [`nnbo_circuits`]) plus synthetic constrained benchmarks.
//!
//! # Surrogate lifecycle: refit policies and warm refits
//!
//! The Bayesian-optimization loop decides *when* to perform a full surrogate
//! refit through [`RefitPolicy`] (`BoConfig::refit`):
//!
//! * [`RefitPolicy::Fixed`]`(k)` refits every `k` evaluations —
//!   `Fixed(1)` is the paper's Algorithm 1, retraining at every iteration.
//! * [`RefitPolicy::NllDrift`] adapts the cadence to observed model quality:
//!   every incremental `append_observation` refreshes the surrogates'
//!   maintained likelihood ([`SurrogateModel::training_nll`]) under the
//!   frozen parameters, and a full warm refit triggers only when the
//!   per-point NLL has drifted past a threshold since the last full fit
//!   (with a `min_gap`/`max_gap` band bounding the cadence).  With
//!   `threshold = 0` it reproduces always-refit bit for bit; with a real
//!   threshold it reaches near-always-refit likelihoods at a fraction of
//!   the full fits (`reproduce fit`'s `refit_policy` section measures
//!   this).
//!
//! Both surrogate families amortize the full refits that do happen instead
//! of starting from scratch:
//!
//! * [`NeuralGp::fit_warm`] continues Adam from the previous fit's flat
//!   parameters (`log σn`, `log σp`, network weights) for the reduced
//!   [`NeuralGpConfig::warm_epochs`] budget with a gradient-norm early stop,
//!   falling back to the full cold training when the warm descent's final
//!   likelihood regresses past the cold initial point — so a warm refit is
//!   never worse than not training at all.
//! * [`NeuralGpEnsemble::fit_warm`] applies that member-by-member: member `k`
//!   continues from the previous ensemble's member `k` (DNN-Opt-style
//!   amortized retraining), and `NeuralGpEnsembleTrainer`'s
//!   [`SurrogateTrainer::fit_many`] pairs the previous ensembles that
//!   [`BayesOpt`] passes with the flat outputs × members job list.
//! * Between full refits, `append_observation` on either surrogate absorbs a
//!   single observation in `O(M²)` / `O(K·M²)` with everything else frozen.
//!
//! # Fault tolerance: the error and recovery taxonomy
//!
//! Real circuit simulations fail — a corner doesn't converge, a license times
//! out, a netlist is singular at some design point.  The loop separates
//! *recoverable faults*, which it absorbs and logs, from *errors*, which
//! abort the run via [`BoError`]:
//!
//! * **Evaluation faults.**  [`Problem::try_evaluate`] returns an
//!   [`EvalOutcome`]: `Ok(evaluation)`, `Failed(reason)` or `Timeout`.  On a
//!   fault, [`FailurePolicy`] (`BoConfig::failure`) first retries up to
//!   `max_retries` times with a small deterministic jitter on the design
//!   point, then imputes a stand-in via [`FailureAction`]: mark the point
//!   infeasible, impute the worst observed objective, or penalize by a
//!   margin.  Imputed values are derived from *real* observations only, the
//!   imputed indices are recorded, and an imputed stand-in can never be
//!   reported as the optimum.  The retry jitter draws from the run's RNG only
//!   on the failure path, so a clean run is bit-identical under every policy.
//! * **Linear-algebra faults.**  A Cholesky factorization that fails inside a
//!   fit or an incremental append is retried under a geometric jitter ladder
//!   (nugget `1e-10 → 1e-4`) before the fault is surfaced; recoveries are
//!   counted per model ([`ModelResilience`]).
//! * **Surrogate degradation.**  When a full refit fails with previous models
//!   in hand, the loop keeps the stale models for the iteration and retries a
//!   full fit next time (`degraded_refits`).  When no models exist at all,
//!   the iteration falls back to a space-filling random suggestion
//!   (`fallback_suggests`) instead of aborting.  A refit triggered *by* an
//!   imputed observation is capped at `FailurePolicy::max_failure_refits`
//!   consecutive occurrences (`failure_refits_suppressed`), so a failure
//!   burst cannot thrash the refit schedule.
//! * **Accounting.**  Every recovery increments a counter in the run's
//!   [`RecoveryLog`] ([`OptimizationResult::recovery`]); `is_clean()` is the
//!   loop's promise that nothing above happened.
//! * **Errors.**  What remains is a typed [`BoError`]: `InvalidConfig` /
//!   `InvalidProblem` before the loop starts, `SurrogateTraining` when even
//!   the degradation ladder is out of options, `SnapshotMismatch` when a
//!   checkpoint can't be restored, and `Internal` for violated loop
//!   invariants (which abort rather than corrupt state).
//!
//! # Checkpoint and resume
//!
//! The loop is also re-entrant: [`BayesOpt::start`] / [`BayesOpt::step`] /
//! [`BayesOpt::finish`] expose one model-guided iteration at a time over a
//! [`BoState`], [`BayesOpt::snapshot`] captures a versioned [`BoSnapshot`]
//! (history, RNG state, refit bookkeeping, recovery log and the fitted model
//! payloads) that serialises to JSON with bit-exact floats, and
//! [`BayesOpt::resume`] restores it after validating the snapshot version and
//! configuration.  A resumed run continues **bit-identically** to the
//! uninterrupted one — including mid-drift-window, where the snapshot carries
//! the incrementally updated surrogates and the NLL drift reference exactly.
//!
//! # Serving many sessions
//!
//! The checkpoint machinery is the persistence substrate of the workspace's
//! serving layer, `nnbo-serve`: a supervised multi-session service that runs
//! each optimization as `start`/`step`/`finish` on a process-wide bounded
//! worker pool, persists every iteration's `BoSnapshot` JSON through a
//! crash-safe atomic session store (write-then-rename with checksummed
//! snapshots, so a `kill -9` loses at most the in-flight iteration), isolates
//! per-session panics via quarantine instead of poisoning the process, and
//! applies per-step deadlines plus admission control (bounded concurrent
//! sessions with explicit backpressure and checkpoint-and-park shedding).
//! Because resumption is bit-identical, a killed-and-restarted service
//! replays the lost iterations and converges to exactly the run it would
//! have produced uninterrupted — `reproduce serve` measures the throughput,
//! supervision overhead and recovery cost of that stack.
//!
//! # Quick start
//!
//! ```
//! use nnbo_core::{BayesOpt, BoConfig, problems::ConstrainedBranin};
//!
//! # fn main() -> Result<(), nnbo_core::BoError> {
//! let problem = ConstrainedBranin::new();
//! let config = BoConfig::fast(8, 12).with_seed(7);
//! let result = BayesOpt::neural(config).run(&problem)?;
//! assert!(result.evaluations().len() <= 12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod acquisition;
mod bo;
mod design_space;
mod ensemble;
mod error;
mod neural_gp;
pub mod problems;
mod report;
mod resilience;
mod sampling;
pub mod strategy;
mod surrogate;

pub use bo::{
    BayesOpt, BoConfig, BoSnapshot, BoState, OptimizationResult, RefitPolicy, SuggestCost,
};
pub use design_space::DesignSpace;
pub use ensemble::{EnsembleConfig, NeuralGpEnsemble, NeuralGpEnsembleTrainer};
pub use error::BoError;
pub use neural_gp::{NeuralGp, NeuralGpConfig, NeuralGpTrainer};
pub use problems::{EvalOutcome, Evaluation, Problem, SweepAggregation, SweepProblem};
pub use report::{RunStatistics, RunSummary};
pub use resilience::{FailureAction, FailurePolicy, ModelResilience, RecoveryLog};
pub use sampling::{latin_hypercube, uniform_random};
pub use strategy::{DirectionRule, LineSubspaceConfig, SuggestStrategy};
pub use surrogate::{Prediction, SurrogateModel, SurrogateTrainer};
