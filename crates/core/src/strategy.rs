//! Acquisition-maximization strategies: how one model-guided iteration turns
//! the fitted surrogates into the next design point.
//!
//! The Bayesian-optimization loop separates *what* a candidate is worth (the
//! acquisition function, scored through [`AcquisitionOracle`]) from *where*
//! candidates are searched.  The latter is the [`SuggestStrategy`] seam on
//! [`crate::BoConfig`]:
//!
//! * [`SuggestStrategy::FullPool`] — the paper's search: a global uniform
//!   candidate pool plus Gaussian perturbations of the incumbent, all scored
//!   in one batch.  Cost per iteration grows with `candidate_pool × D` and
//!   with the surrogates' per-point prediction cost.
//! * [`SuggestStrategy::LineSubspace`] — LinEasyBO-style (arXiv 2109.00617)
//!   one-dimensional subspace search: each iteration draws a random (or
//!   lengthscale-weighted) direction through the incumbent, clips the line
//!   exactly to the unit cube, and maximises the acquisition along that line
//!   with a coarse grid plus local refinement rounds.  The number of scored
//!   points per iteration is a small constant independent of `D`, which is
//!   what makes `D = 50`-dimensional synthesis tractable.
//!
//! Both searches share the loop's batched scoring path (and therefore the
//! banded worker-pool split and both kernel dispatch paths); they differ only
//! in the candidate sets they generate.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bo::standard_normal;

/// Scores candidate batches under the loop's fitted surrogates and
/// acquisition function.
///
/// The loop hands an implementation of this trait to
/// [`SuggestStrategy::propose`]; strategies call it once per candidate batch
/// and receive one acquisition value per candidate, in candidate order.
/// Larger is better.  The trait exists so the subspace machinery can be
/// exercised against analytic oracles in tests without fitting surrogates.
pub trait AcquisitionOracle {
    /// Scores `candidates`, returning one acquisition value per candidate.
    fn score(&mut self, candidates: &[Vec<f64>]) -> &[f64];
}

/// Per-iteration context a strategy proposes from: the problem dimension, the
/// incumbent anchor, and the configured search budgets.
#[derive(Debug)]
pub struct SuggestContext<'a> {
    /// Problem dimension.
    pub dim: usize,
    /// Anchor of the local search: the best feasible point, or the least
    /// infeasible one before anything is feasible (centre of the cube on an
    /// empty history).
    pub anchor: &'a [f64],
    /// Global uniform candidates of the full-pool search
    /// ([`crate::BoConfig::candidate_pool`]).
    pub candidate_pool: usize,
    /// Local perturbation candidates of the full-pool search
    /// ([`crate::BoConfig::local_candidates`]).
    pub local_candidates: usize,
    /// Per-dimension lengthscales of the objective surrogate, when the model
    /// family exposes them ([`crate::SurrogateModel::lengthscales`]) and the
    /// strategy asked for them — the adaptive signal of
    /// [`DirectionRule::LengthscaleWeighted`].
    pub lengthscales: Option<Vec<f64>>,
}

/// How [`SuggestStrategy::LineSubspace`] draws its per-iteration direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DirectionRule {
    /// Isotropic: a unit vector drawn uniformly from the sphere (via
    /// normalised Gaussian draws).
    Random,
    /// Adaptive: Gaussian draws weighted by the objective surrogate's inverse
    /// lengthscales before normalisation, so dimensions the model considers
    /// *active* (short lengthscale) receive proportionally more movement.
    /// Falls back to [`DirectionRule::Random`] weighting — consuming the
    /// exact same rng draws — whenever the surrogate does not expose finite
    /// positive lengthscales of the right dimension.
    #[default]
    LengthscaleWeighted,
}

/// Configuration of the LinEasyBO-style one-dimensional subspace search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineSubspaceConfig {
    /// Grid points of the coarse pass over the clipped line (≥ 2).
    pub line_points: usize,
    /// Local refinement rounds around the incumbent grid optimum.
    pub refine_rounds: usize,
    /// Grid points per refinement round (≥ 2 when `refine_rounds > 0`).
    pub refine_points: usize,
    /// Direction sampling rule.
    pub direction: DirectionRule,
}

impl Default for LineSubspaceConfig {
    fn default() -> Self {
        LineSubspaceConfig {
            line_points: 64,
            refine_rounds: 2,
            refine_points: 16,
            direction: DirectionRule::LengthscaleWeighted,
        }
    }
}

impl LineSubspaceConfig {
    /// Total points scored per iteration under this configuration.
    pub fn points_per_iteration(&self) -> usize {
        self.line_points + self.refine_rounds * self.refine_points
    }

    fn validate(&self) -> Result<(), String> {
        if self.line_points < 2 {
            return Err(format!(
                "line search needs at least 2 grid points, got {}",
                self.line_points
            ));
        }
        if self.refine_rounds > 0 && self.refine_points < 2 {
            return Err(format!(
                "line refinement needs at least 2 points per round, got {}",
                self.refine_points
            ));
        }
        Ok(())
    }
}

/// The acquisition-maximization strategy of a [`crate::BayesOpt`] run — see
/// the [module docs](self) for the cost model of each variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SuggestStrategy {
    /// Full-pool scoring: global uniform pool + local Gaussian perturbations
    /// (the paper's Algorithm 1 search; the default).
    #[default]
    FullPool,
    /// LinEasyBO-style one-dimensional subspace search.
    LineSubspace(LineSubspaceConfig),
}

impl SuggestStrategy {
    /// The LinEasyBO-style line search with its default budgets.
    pub fn line_subspace() -> Self {
        SuggestStrategy::LineSubspace(LineSubspaceConfig::default())
    }

    /// Whether this strategy reads the objective surrogate's lengthscales
    /// (lets the loop skip extracting them otherwise).
    pub fn wants_lengthscales(&self) -> bool {
        matches!(
            self,
            SuggestStrategy::LineSubspace(LineSubspaceConfig {
                direction: DirectionRule::LengthscaleWeighted,
                ..
            })
        )
    }

    /// Human-readable validity check, part of the loop's config validation.
    pub(crate) fn validate(&self) -> Result<(), String> {
        match self {
            SuggestStrategy::FullPool => Ok(()),
            SuggestStrategy::LineSubspace(cfg) => cfg.validate(),
        }
    }

    /// Generates candidates per the strategy, scores them through `oracle`,
    /// and returns the acquisition argmax.
    ///
    /// Every strategy draws from `rng` in a fixed, documented order, so runs
    /// are seeded-deterministic and snapshot/resume stays bit-identical.
    pub fn propose(
        &self,
        ctx: &SuggestContext<'_>,
        oracle: &mut dyn AcquisitionOracle,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        match self {
            SuggestStrategy::FullPool => propose_full_pool(ctx, oracle, rng),
            SuggestStrategy::LineSubspace(cfg) => propose_line_subspace(cfg, ctx, oracle, rng),
        }
    }
}

/// The paper's candidate search: `candidate_pool` uniform points over the
/// cube, then `local_candidates` Gaussian perturbations of the anchor at two
/// alternating scales.  The rng draw order is part of the loop's determinism
/// contract (snapshots taken before this run resume bit-identically), so it
/// must not change.
fn propose_full_pool(
    ctx: &SuggestContext<'_>,
    oracle: &mut dyn AcquisitionOracle,
    rng: &mut StdRng,
) -> Vec<f64> {
    let mut candidates: Vec<Vec<f64>> =
        Vec::with_capacity(ctx.candidate_pool + ctx.local_candidates);
    for _ in 0..ctx.candidate_pool {
        candidates.push((0..ctx.dim).map(|_| rng.gen_range(0.0..1.0)).collect());
    }
    for i in 0..ctx.local_candidates {
        let sigma = if i % 2 == 0 { 0.05 } else { 0.2 };
        let mut x = ctx.anchor.to_vec();
        for v in &mut x {
            *v = (*v + sigma * standard_normal(rng)).clamp(0.0, 1.0);
        }
        candidates.push(x);
    }
    let best = argmax(oracle.score(&candidates));
    candidates.swap_remove(best)
}

/// One LinEasyBO iteration: draw a direction through the anchor, clip the
/// line to the cube, coarse-grid the acquisition along it, then shrink the
/// search window around the running optimum for `refine_rounds` rounds.
fn propose_line_subspace(
    cfg: &LineSubspaceConfig,
    ctx: &SuggestContext<'_>,
    oracle: &mut dyn AcquisitionOracle,
    rng: &mut StdRng,
) -> Vec<f64> {
    let direction = sample_direction(ctx.dim, ctx.lengthscales.as_deref(), cfg.direction, rng);
    let (t_lo, t_hi) = line_interval(ctx.anchor, &direction);

    let ts = line_grid(t_lo, t_hi, cfg.line_points);
    let mut points: Vec<Vec<f64>> = ts
        .iter()
        .map(|&t| point_on_line(ctx.anchor, &direction, t))
        .collect();
    let scores = oracle.score(&points);
    let mut best_index = argmax(scores);
    let mut best_score = scores[best_index];
    let mut best_t = ts[best_index];
    let mut best_point = points.swap_remove(best_index);

    // Each round re-grids a window of one current grid spacing around the
    // running optimum; the spacing (and thus the window) shrinks
    // geometrically, homing in on the line's acquisition maximum.
    let mut spacing = (t_hi - t_lo) / (cfg.line_points.max(2) - 1) as f64;
    for _ in 0..cfg.refine_rounds {
        let lo = (best_t - spacing).max(t_lo);
        let hi = (best_t + spacing).min(t_hi);
        let ts = line_grid(lo, hi, cfg.refine_points);
        let points: Vec<Vec<f64>> = ts
            .iter()
            .map(|&t| point_on_line(ctx.anchor, &direction, t))
            .collect();
        let scores = oracle.score(&points);
        best_index = argmax(scores);
        if scores[best_index] > best_score {
            best_score = scores[best_index];
            best_t = ts[best_index];
            best_point = points[best_index].clone();
        }
        spacing = (hi - lo) / (cfg.refine_points.max(2) - 1) as f64;
    }
    best_point
}

/// Draws the iteration's unit-norm direction: `dim` standard-normal draws,
/// optionally weighted by the objective surrogate's inverse lengthscales
/// (dimensions the model considers active move more), then normalised.
///
/// Exactly `dim` Gaussian draws are consumed from `rng` under **every** rule
/// and fallback, so the rng stream position — and with it snapshot/resume
/// bit-identity — does not depend on whether lengthscales were available.
pub fn sample_direction(
    dim: usize,
    lengthscales: Option<&[f64]>,
    rule: DirectionRule,
    rng: &mut StdRng,
) -> Vec<f64> {
    let mut direction: Vec<f64> = (0..dim).map(|_| standard_normal(rng)).collect();
    if rule == DirectionRule::LengthscaleWeighted {
        if let Some(ls) = lengthscales {
            if ls.len() == dim && ls.iter().all(|&l| l.is_finite() && l > 0.0) {
                for (d, l) in direction.iter_mut().zip(ls.iter()) {
                    *d /= l;
                }
            }
        }
    }
    let norm = direction.iter().map(|d| d * d).sum::<f64>().sqrt();
    if norm.is_finite() && norm > 0.0 {
        for d in &mut direction {
            *d /= norm;
        }
    } else {
        // Degenerate draw (probability zero, but deterministic recovery
        // matters more than elegance): fall back to the first axis.
        direction.iter_mut().for_each(|d| *d = 0.0);
        if dim > 0 {
            direction[0] = 1.0;
        }
    }
    direction
}

/// Exact clipping of the line `anchor + t·direction` to the unit cube:
/// intersects the per-coordinate feasible `t`-intervals and returns
/// `(t_lo, t_hi)` with `t_lo ≤ 0 ≤ t_hi` (the anchor itself is always inside
/// the cube, so `t = 0` is always feasible).
pub fn line_interval(anchor: &[f64], direction: &[f64]) -> (f64, f64) {
    let mut t_lo = f64::NEG_INFINITY;
    let mut t_hi = f64::INFINITY;
    for (&a, &u) in anchor.iter().zip(direction.iter()) {
        if u == 0.0 {
            continue;
        }
        let to_zero = (0.0 - a) / u;
        let to_one = (1.0 - a) / u;
        let (lo, hi) = if to_zero <= to_one {
            (to_zero, to_one)
        } else {
            (to_one, to_zero)
        };
        t_lo = t_lo.max(lo);
        t_hi = t_hi.min(hi);
    }
    if !t_lo.is_finite() || t_lo > 0.0 {
        t_lo = 0.0;
    }
    if !t_hi.is_finite() || t_hi < 0.0 {
        t_hi = 0.0;
    }
    (t_lo, t_hi)
}

/// The point `anchor + t·direction`, clamped to the cube coordinate-wise to
/// absorb the floating-point slack at the interval endpoints.
pub fn point_on_line(anchor: &[f64], direction: &[f64], t: f64) -> Vec<f64> {
    anchor
        .iter()
        .zip(direction.iter())
        .map(|(&a, &u)| (a + t * u).clamp(0.0, 1.0))
        .collect()
}

/// `n` evenly spaced `t` values over `[lo, hi]`, endpoints included
/// (`n < 2` degenerates to the midpoint).
pub fn line_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if n < 2 {
        return vec![0.5 * (lo + hi)];
    }
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|k| lo + step * k as f64).collect()
}

/// Index of the largest score (strict `>`, first maximum wins — the loop's
/// historical tie-breaking rule, which the full-pool strategy preserves bit
/// for bit).
pub fn argmax(scores: &[f64]) -> usize {
    let mut best_score = f64::NEG_INFINITY;
    let mut best_index = 0;
    for (idx, score) in scores.iter().enumerate() {
        if *score > best_score {
            best_score = *score;
            best_index = idx;
        }
    }
    best_index
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Oracle scoring candidates by an analytic function of the point alone.
    struct FnOracle<F: Fn(&[f64]) -> f64> {
        f: F,
        scores: Vec<f64>,
        batches: usize,
        scored: usize,
    }

    impl<F: Fn(&[f64]) -> f64> FnOracle<F> {
        fn new(f: F) -> Self {
            FnOracle {
                f,
                scores: Vec::new(),
                batches: 0,
                scored: 0,
            }
        }
    }

    impl<F: Fn(&[f64]) -> f64> AcquisitionOracle for FnOracle<F> {
        fn score(&mut self, candidates: &[Vec<f64>]) -> &[f64] {
            self.batches += 1;
            self.scored += candidates.len();
            self.scores.clear();
            self.scores.extend(candidates.iter().map(|x| (self.f)(x)));
            &self.scores
        }
    }

    fn ctx<'a>(dim: usize, anchor: &'a [f64]) -> SuggestContext<'a> {
        SuggestContext {
            dim,
            anchor,
            candidate_pool: 64,
            local_candidates: 16,
            lengthscales: None,
        }
    }

    #[test]
    fn line_interval_contains_zero_and_stays_inside() {
        let anchor = vec![0.3, 0.9, 0.5];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let dir = sample_direction(3, None, DirectionRule::Random, &mut rng);
            let (lo, hi) = line_interval(&anchor, &dir);
            assert!(lo <= 0.0 && hi >= 0.0, "interval [{lo}, {hi}] misses 0");
            for &t in &[lo, hi, 0.5 * (lo + hi)] {
                for (&a, &u) in anchor.iter().zip(dir.iter()) {
                    let v = a + t * u;
                    assert!(
                        (-1e-9..=1.0 + 1e-9).contains(&v),
                        "coordinate {v} escaped at t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_pool_strategy_scores_pool_plus_local_candidates() {
        let anchor = vec![0.5; 4];
        let context = ctx(4, &anchor);
        let mut oracle = FnOracle::new(|x: &[f64]| -x.iter().map(|v| (v - 0.3).abs()).sum::<f64>());
        let mut rng = StdRng::seed_from_u64(3);
        let choice = SuggestStrategy::FullPool.propose(&context, &mut oracle, &mut rng);
        assert_eq!(choice.len(), 4);
        assert_eq!(oracle.batches, 1);
        assert_eq!(oracle.scored, 64 + 16);
        assert!(choice.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn line_subspace_scores_a_constant_budget_and_stays_in_cube() {
        let cfg = LineSubspaceConfig {
            line_points: 17,
            refine_rounds: 2,
            refine_points: 5,
            direction: DirectionRule::Random,
        };
        for dim in [1, 3, 20, 50] {
            let anchor = vec![0.25; dim];
            let context = ctx(dim, &anchor);
            let mut oracle = FnOracle::new(|x: &[f64]| x.iter().sum::<f64>());
            let mut rng = StdRng::seed_from_u64(11);
            let choice =
                SuggestStrategy::LineSubspace(cfg).propose(&context, &mut oracle, &mut rng);
            assert_eq!(choice.len(), dim);
            assert_eq!(oracle.scored, cfg.points_per_iteration());
            assert_eq!(oracle.batches, 3);
            assert!(choice.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn refinement_never_returns_a_worse_point_than_the_coarse_pass() {
        let f = |x: &[f64]| -(x[0] - 0.137).powi(2) - (x[1] - 0.712).powi(2);
        let anchor = vec![0.4, 0.6];
        let context = ctx(2, &anchor);
        let coarse_only = LineSubspaceConfig {
            line_points: 9,
            refine_rounds: 0,
            refine_points: 2,
            direction: DirectionRule::Random,
        };
        let refined = LineSubspaceConfig {
            refine_rounds: 3,
            refine_points: 7,
            ..coarse_only
        };
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        let mut oracle_a = FnOracle::new(f);
        let mut oracle_b = FnOracle::new(f);
        let a =
            SuggestStrategy::LineSubspace(coarse_only).propose(&context, &mut oracle_a, &mut rng_a);
        let b = SuggestStrategy::LineSubspace(refined).propose(&context, &mut oracle_b, &mut rng_b);
        assert!(f(&b) >= f(&a), "refined {} < coarse {}", f(&b), f(&a));
    }

    #[test]
    fn lengthscale_weighting_tilts_the_direction_toward_short_lengthscales() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut active = 0.0;
        let mut inert = 0.0;
        for _ in 0..200 {
            let d = sample_direction(
                2,
                Some(&[0.05, 5.0]),
                DirectionRule::LengthscaleWeighted,
                &mut rng,
            );
            active += d[0].abs();
            inert += d[1].abs();
        }
        assert!(active > 10.0 * inert, "active {active} vs inert {inert}");
    }

    #[test]
    fn bad_lengthscales_fall_back_to_the_random_rule_draws() {
        for bad in [vec![0.0, 1.0], vec![f64::NAN, 1.0], vec![1.0]] {
            let mut rng_a = StdRng::seed_from_u64(9);
            let mut rng_b = StdRng::seed_from_u64(9);
            let weighted = sample_direction(
                2,
                Some(&bad),
                DirectionRule::LengthscaleWeighted,
                &mut rng_a,
            );
            let random = sample_direction(2, None, DirectionRule::Random, &mut rng_b);
            assert_eq!(weighted, random);
        }
    }

    #[test]
    fn validation_rejects_degenerate_budgets() {
        assert!(SuggestStrategy::FullPool.validate().is_ok());
        assert!(SuggestStrategy::line_subspace().validate().is_ok());
        let too_few = SuggestStrategy::LineSubspace(LineSubspaceConfig {
            line_points: 1,
            ..LineSubspaceConfig::default()
        });
        assert!(too_few.validate().is_err());
        let bad_refine = SuggestStrategy::LineSubspace(LineSubspaceConfig {
            refine_rounds: 1,
            refine_points: 1,
            ..LineSubspaceConfig::default()
        });
        assert!(bad_refine.validate().is_err());
    }

    #[test]
    fn strategy_config_round_trips_through_serde() {
        for strategy in [
            SuggestStrategy::FullPool,
            SuggestStrategy::line_subspace(),
            SuggestStrategy::LineSubspace(LineSubspaceConfig {
                line_points: 7,
                refine_rounds: 0,
                refine_points: 2,
                direction: DirectionRule::Random,
            }),
        ] {
            let back = SuggestStrategy::from_value(&strategy.to_value()).unwrap();
            assert_eq!(back, strategy);
        }
    }
}
