//! Surrogate-model abstraction shared by the neural GP and the classic-GP baselines.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::resilience::ModelResilience;

/// A Gaussian predictive distribution at one query point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predictive mean.
    pub mean: f64,
    /// Predictive variance (never negative).
    pub variance: f64,
}

impl Prediction {
    /// Creates a prediction, clamping the variance at zero.
    pub fn new(mean: f64, variance: f64) -> Self {
        Prediction {
            mean,
            variance: variance.max(0.0),
        }
    }

    /// Predictive standard deviation.
    pub fn std(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// A trained probabilistic surrogate: predicts a Gaussian distribution over the
/// modelled output at any normalised design point.
pub trait SurrogateModel: Send + Sync {
    /// Predicts the output distribution at `x` (normalised coordinates).
    fn predict(&self, x: &[f64]) -> Prediction;

    /// Predicts a batch of points (the default implementation simply loops).
    ///
    /// Implementations with a vectorisable hot path (the neural GP, the
    /// classical GP, their ensembles) override this to amortise the linear
    /// algebra over the whole batch; the acquisition maximiser scores its
    /// entire candidate pool through this entry point.  Overrides must return
    /// exactly what per-point [`SurrogateModel::predict`] calls would.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Batched prediction into a caller-owned vector, so a hot scoring loop
    /// reuses its output buffers across iterations.
    ///
    /// The default clears `out` and fills it from
    /// [`SurrogateModel::predict_batch`]; models with caller-independent
    /// scratch (the classical GP's `GpPredictScratch`-backed adapter in
    /// `nnbo-baselines`) override this to make the whole scoring path
    /// allocation-free.  Overrides must write exactly what
    /// [`SurrogateModel::predict_batch`] returns.
    fn predict_batch_into(&self, xs: &[Vec<f64>], out: &mut Vec<Prediction>) {
        let preds = self.predict_batch(xs);
        out.clear();
        out.extend(preds);
    }

    /// Negative log marginal likelihood of the model on its own training set,
    /// when the model tracks one (summed over the training points, in the
    /// model's internal standardised units).
    ///
    /// This is the drift signal adaptive refit policies read
    /// (`RefitPolicy::NllDrift` in the Bayesian-optimization loop): models
    /// whose incremental `append_observation` refreshes this value under the
    /// frozen hyper-parameters let the loop compare surrogate quality before
    /// and after absorbing observations without any extra factorization.  The
    /// default returns `None`, meaning "not tracked" — the loop then falls
    /// back to refitting on its minimum-gap cadence.
    fn training_nll(&self) -> Option<f64> {
        None
    }

    /// Recovery counters of this model's own construction — jittered
    /// factorizations, dropped ensemble members — so the optimization loop
    /// can aggregate them into its run-level `RecoveryLog` without knowing
    /// the surrogate family.  The default reports a clean construction.
    fn resilience(&self) -> ModelResilience {
        ModelResilience::default()
    }

    /// Per-dimension lengthscales of the model's kernel, when the family has
    /// them (the classical ARD GP exposes `exp(log ℓ_d)`; the neural GP's
    /// implicit kernel has none).
    ///
    /// This is the adaptive signal of the LinEasyBO subspace strategy
    /// (`SuggestStrategy::LineSubspace` with
    /// `DirectionRule::LengthscaleWeighted`): short lengthscales mark the
    /// dimensions the surrogate considers active, and the per-iteration
    /// search direction is tilted toward them.  The default returns `None`,
    /// meaning "not exposed" — the strategy then falls back to isotropic
    /// random directions.
    fn lengthscales(&self) -> Option<Vec<f64>> {
        None
    }
}

/// A recipe for training a [`SurrogateModel`] from scratch on a data set.
///
/// The Bayesian-optimization loop retrains one surrogate per modelled output
/// (objective plus every constraint) at every iteration, so trainers should be cheap
/// to clone and deterministic given the supplied random source.
pub trait SurrogateTrainer: Send + Sync {
    /// The model type this trainer produces.
    type Model: SurrogateModel;

    /// Trains a surrogate on `(xs, ys)`, where `xs` are normalised design points.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the model cannot be trained (degenerate
    /// data, factorization failure, ...).
    fn fit(&self, xs: &[Vec<f64>], ys: &[f64], rng: &mut StdRng) -> Result<Self::Model, String>;

    /// Trains one surrogate per target column over the *same* design points —
    /// the multi-output refit the Bayesian-optimization loop performs for the
    /// objective plus every constraint.
    ///
    /// `prev`, when given with one model per target, holds the surrogates of
    /// the previous refit so trainers can warm-start: the classical GP
    /// reuses each output's fitted hyper-parameters as the optimizer's
    /// starting point, and the neural-GP ensemble continues every member's
    /// feature network from its predecessor's weights instead of retraining
    /// from random initialisation.  The default implementation ignores `prev` and fits
    /// sequentially through [`SurrogateTrainer::fit`], consuming `rng`
    /// exactly as the equivalent sequence of single fits would; trainers with
    /// shareable fit structure (the classical GP's distance tensor, the
    /// ensemble's independent members) override this to share that work and
    /// fan the per-output training out over scoped threads.
    ///
    /// # Errors
    ///
    /// The first per-output error; either every output trains or the whole
    /// call fails.
    fn fit_many(
        &self,
        xs: &[Vec<f64>],
        targets: &[Vec<f64>],
        prev: Option<&[&Self::Model]>,
        rng: &mut StdRng,
    ) -> Result<Vec<Self::Model>, String> {
        let _ = prev;
        targets.iter().map(|ys| self.fit(xs, ys, rng)).collect()
    }

    /// Attempts a cheap incremental refit of `prev` with one appended
    /// observation `(x, y)`.
    ///
    /// Trainers whose models support an `O(N²)` update (rank-1 / bordered
    /// Cholesky instead of a from-scratch refactorization) override this; the
    /// Bayesian-optimization loop calls it between full refits (see
    /// `RefitPolicy`).  The default returns `None`, meaning
    /// "unsupported — do a full fit".
    ///
    /// An implementation returning `Some(Err(..))` signals that the update was
    /// attempted but failed (e.g. the appended point made the kernel matrix
    /// numerically singular); callers should fall back to a full fit.
    fn update(
        &self,
        _prev: &Self::Model,
        _x: &[f64],
        _y: f64,
        _rng: &mut StdRng,
    ) -> Option<Result<Self::Model, String>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConstantModel(f64);

    impl SurrogateModel for ConstantModel {
        fn predict(&self, _x: &[f64]) -> Prediction {
            Prediction::new(self.0, 1.0)
        }
    }

    #[test]
    fn prediction_clamps_negative_variance() {
        let p = Prediction::new(1.0, -0.5);
        assert_eq!(p.variance, 0.0);
        assert_eq!(p.std(), 0.0);
    }

    #[test]
    fn default_batch_prediction_loops() {
        let m = ConstantModel(2.5);
        let out = m.predict_batch(&[vec![0.0], vec![1.0]]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|p| p.mean == 2.5));
    }
}
