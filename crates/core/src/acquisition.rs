//! Acquisition functions for constrained Bayesian optimization.
//!
//! The paper uses the *weighted expected improvement* (wEI, eq. 7): the expected
//! improvement of the objective multiplied by the probability that every constraint
//! is satisfied, both evaluated under the surrogate models.  Expected improvement
//! (eq. 6), probability of improvement and the upper confidence bound are also
//! provided for the ablation experiments.

use serde::{Deserialize, Serialize};

use crate::surrogate::Prediction;

/// Standard normal probability density function.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function.
///
/// Uses the Abramowitz & Stegun 7.1.26 rational approximation of `erf`, accurate to
/// about `1.5e-7` — far more than the acquisition maximisation needs.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Which acquisition function the optimizer maximises.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AcquisitionKind {
    /// Constraint-weighted expected improvement (eq. 7) — the paper's choice.
    #[default]
    WeightedExpectedImprovement,
    /// Plain expected improvement of the objective (constraints handled by a large
    /// penalty on the predicted mean).
    ExpectedImprovement,
    /// Lower confidence bound `µ − κ·σ` (for minimisation), weighted by the
    /// feasibility probability.
    LowerConfidenceBound {
        /// Exploration weight κ.
        kappa: f64,
    },
    /// Probability of improvement weighted by the feasibility probability.
    ProbabilityOfImprovement,
}

/// Expected improvement (eq. 6) for a *minimisation* problem with incumbent `tau`.
///
/// # Example
///
/// ```
/// use nnbo_core::acquisition::expected_improvement;
/// use nnbo_core::Prediction;
///
/// // A prediction well below the incumbent has large EI.
/// let good = expected_improvement(&Prediction::new(-1.0, 0.01), 0.0);
/// let bad = expected_improvement(&Prediction::new(2.0, 0.01), 0.0);
/// assert!(good > bad);
/// ```
pub fn expected_improvement(prediction: &Prediction, tau: f64) -> f64 {
    let sigma = prediction.std();
    if sigma < 1e-12 {
        return (tau - prediction.mean).max(0.0);
    }
    let lambda = (tau - prediction.mean) / sigma;
    // EI is mathematically non-negative; the erf approximation inside the cdf
    // can push the closed form a few ulps below zero for very unpromising
    // points, so clamp (the property tests pin EI ≥ 0 exactly).
    (sigma * (lambda * normal_cdf(lambda) + normal_pdf(lambda))).max(0.0)
}

/// Probability of improvement over the incumbent `tau` (minimisation).
pub fn probability_of_improvement(prediction: &Prediction, tau: f64) -> f64 {
    let sigma = prediction.std();
    if sigma < 1e-12 {
        return if prediction.mean < tau { 1.0 } else { 0.0 };
    }
    normal_cdf((tau - prediction.mean) / sigma)
}

/// Probability that a constraint `g(x) < 0` is satisfied, given the surrogate's
/// prediction of `g(x)`.
pub fn feasibility_probability(prediction: &Prediction) -> f64 {
    let sigma = prediction.std();
    if sigma < 1e-12 {
        return if prediction.mean < 0.0 { 1.0 } else { 0.0 };
    }
    normal_cdf(-prediction.mean / sigma)
}

/// Joint feasibility probability over all constraints (the `∏ PF_i(x)` factor of
/// eq. 7).
pub fn joint_feasibility(constraints: &[Prediction]) -> f64 {
    constraints.iter().map(feasibility_probability).product()
}

/// Weighted expected improvement (eq. 7): `EI(x) · ∏ PF_i(x)`.
///
/// When no feasible incumbent exists yet, pass `tau = None`: the acquisition then
/// reduces to the joint feasibility probability, which drives the search towards
/// the feasible region first.
pub fn weighted_expected_improvement(
    objective: &Prediction,
    constraints: &[Prediction],
    tau: Option<f64>,
) -> f64 {
    let pf = joint_feasibility(constraints);
    match tau {
        Some(t) => expected_improvement(objective, t) * pf,
        None => pf,
    }
}

/// Evaluates the selected acquisition (larger is better) for a minimisation problem.
pub fn evaluate(
    kind: AcquisitionKind,
    objective: &Prediction,
    constraints: &[Prediction],
    tau: Option<f64>,
) -> f64 {
    match kind {
        AcquisitionKind::WeightedExpectedImprovement => {
            weighted_expected_improvement(objective, constraints, tau)
        }
        AcquisitionKind::ExpectedImprovement => {
            // Constraint violations are pushed into the objective mean as a penalty.
            let violation: f64 = constraints.iter().map(|c| c.mean.max(0.0)).sum();
            let penalised = Prediction::new(objective.mean + 10.0 * violation, objective.variance);
            expected_improvement(&penalised, tau.unwrap_or(0.0))
        }
        AcquisitionKind::LowerConfidenceBound { kappa } => {
            let pf = joint_feasibility(constraints);
            (-(objective.mean - kappa * objective.std())) * pf.max(1e-6)
        }
        AcquisitionKind::ProbabilityOfImprovement => {
            let pf = joint_feasibility(constraints);
            match tau {
                Some(t) => probability_of_improvement(objective, t) * pf,
                None => pf,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_matches_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841344746).abs() < 1e-6);
        assert!((normal_cdf(-1.96) - 0.024998).abs() < 1e-4);
        assert!(normal_cdf(8.0) > 0.999999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn normal_pdf_is_symmetric_and_peaks_at_zero() {
        assert!((normal_pdf(0.0) - 0.398942280).abs() < 1e-8);
        assert!((normal_pdf(1.3) - normal_pdf(-1.3)).abs() < 1e-15);
        assert!(normal_pdf(0.0) > normal_pdf(0.5));
    }

    #[test]
    fn ei_is_nonnegative_and_increases_with_uncertainty() {
        let tau = 1.0;
        let certain = expected_improvement(&Prediction::new(1.5, 1e-8), tau);
        assert!((0.0..1e-6).contains(&certain));
        let uncertain = expected_improvement(&Prediction::new(1.5, 4.0), tau);
        assert!(uncertain > certain);
        // With zero uncertainty EI reduces to max(tau - mean, 0).
        assert!((expected_improvement(&Prediction::new(0.25, 0.0), 1.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ei_encourages_exploitation_of_low_means() {
        let tau = 0.0;
        let low = expected_improvement(&Prediction::new(-2.0, 0.1), tau);
        let high = expected_improvement(&Prediction::new(2.0, 0.1), tau);
        assert!(low > high);
        assert!(low > 1.8 && low < 2.2);
    }

    #[test]
    fn feasibility_probability_tracks_constraint_margin() {
        // g < 0 is "satisfied": strongly negative mean → probability near 1.
        assert!(feasibility_probability(&Prediction::new(-3.0, 1.0)) > 0.99);
        assert!(feasibility_probability(&Prediction::new(3.0, 1.0)) < 0.01);
        assert!((feasibility_probability(&Prediction::new(0.0, 1.0)) - 0.5).abs() < 1e-7);
        // Deterministic predictions collapse to an indicator.
        assert_eq!(feasibility_probability(&Prediction::new(-1.0, 0.0)), 1.0);
        assert_eq!(feasibility_probability(&Prediction::new(1.0, 0.0)), 0.0);
    }

    #[test]
    fn wei_multiplies_ei_by_joint_feasibility() {
        let obj = Prediction::new(-1.0, 0.5);
        let feasible = vec![Prediction::new(-2.0, 0.1), Prediction::new(-3.0, 0.1)];
        let infeasible = vec![Prediction::new(2.0, 0.1)];
        let tau = Some(0.0);
        let a = weighted_expected_improvement(&obj, &feasible, tau);
        let b = weighted_expected_improvement(&obj, &infeasible, tau);
        assert!(a > 100.0 * b);
        let ei = expected_improvement(&obj, 0.0);
        assert!(a <= ei + 1e-12);
    }

    #[test]
    fn without_incumbent_wei_reduces_to_feasibility_search() {
        let obj = Prediction::new(5.0, 1.0);
        let constraints = vec![Prediction::new(-0.5, 0.25)];
        let acq = weighted_expected_improvement(&obj, &constraints, None);
        assert!((acq - feasibility_probability(&constraints[0])).abs() < 1e-12);
    }

    #[test]
    fn all_acquisition_kinds_prefer_the_obviously_better_point() {
        let better = Prediction::new(-1.0, 0.2);
        let worse = Prediction::new(1.0, 0.2);
        let feasible = vec![Prediction::new(-1.0, 0.05)];
        for kind in [
            AcquisitionKind::WeightedExpectedImprovement,
            AcquisitionKind::ExpectedImprovement,
            AcquisitionKind::LowerConfidenceBound { kappa: 2.0 },
            AcquisitionKind::ProbabilityOfImprovement,
        ] {
            let a = evaluate(kind, &better, &feasible, Some(0.0));
            let b = evaluate(kind, &worse, &feasible, Some(0.0));
            assert!(a > b, "{kind:?} did not prefer the better point");
        }
    }
}
