//! Failure policies and recovery accounting for the fault-tolerant
//! Bayesian-optimization loop.
//!
//! Real evaluation backends (circuit simulators most of all) fail: solvers
//! diverge, measures come back `NaN`, runs time out.  The types here describe
//! *what the loop does about it* — how many times a failed evaluation is
//! retried ([`FailurePolicy`]), what value stands in for it when the retries
//! are exhausted ([`FailureAction`]), and a complete audit trail of every
//! recovery the run performed ([`RecoveryLog`]), surfaced on the
//! optimization result so a "successful" run that quietly imputed half its
//! observations is distinguishable from a genuinely clean one.

use serde::{Deserialize, Serialize};

/// What stands in for an evaluation whose retries are exhausted.
///
/// All three actions produce a *finite* [`crate::Evaluation`] so the
/// surrogates never see `NaN`; they differ in how pessimistic the stand-in
/// is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FailureAction {
    /// Impute the worst objective observed so far (and, per constraint, the
    /// worst observed constraint value) — the failed region looks as bad as
    /// the worst real data without distorting the objective scale.
    ImputeWorst,
    /// Impute the worst observed objective plus `margin` times the observed
    /// objective span — actively pushes the search away from failing regions.
    Penalize {
        /// Fraction of the observed objective span added on top of the worst
        /// observed value.
        margin: f64,
    },
    /// Impute the worst observed objective and force every constraint value
    /// to `+1` so the point is infeasible.  For unconstrained problems this
    /// degenerates to [`FailureAction::ImputeWorst`] (there is no constraint
    /// to violate).
    MarkInfeasible,
}

/// How the loop treats failed or timed-out evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailurePolicy {
    /// Number of retry attempts after the first failure.  Each retry
    /// perturbs the design point by [`FailurePolicy::retry_jitter`] (a
    /// deterministic draw from the run's rng — the clean path draws
    /// nothing, so failure-free runs are bit-identical with any policy).
    pub max_retries: usize,
    /// Standard deviation (in normalised coordinates) of the Gaussian
    /// perturbation applied to each retry, clamped back into the unit cube.
    pub retry_jitter: f64,
    /// What to record once the retries are exhausted.
    pub on_exhausted: FailureAction,
    /// Cap on *consecutive* full refits triggered by the drift policy when
    /// the latest observation was imputed: an imputed (worst-case) value
    /// legitimately moves the surrogates' likelihood, and without this cap a
    /// burst of failures would buy a full retraining per failure for no
    /// information gain.  Refits past the cap are suppressed (and counted in
    /// [`RecoveryLog::failure_refits_suppressed`]) until a real observation
    /// arrives.
    pub max_failure_refits: usize,
}

impl Default for FailurePolicy {
    fn default() -> Self {
        FailurePolicy {
            max_retries: 2,
            retry_jitter: 1e-3,
            on_exhausted: FailureAction::MarkInfeasible,
            max_failure_refits: 2,
        }
    }
}

impl FailurePolicy {
    /// A policy that never retries and marks failures infeasible — the
    /// cheapest honest treatment, useful when each evaluation is very
    /// expensive.
    pub fn no_retries() -> Self {
        FailurePolicy {
            max_retries: 0,
            ..FailurePolicy::default()
        }
    }

    /// Validity check used by the loop's configuration validation.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if !self.retry_jitter.is_finite() || self.retry_jitter < 0.0 {
            return Err(format!(
                "retry_jitter must be finite and >= 0, got {}",
                self.retry_jitter
            ));
        }
        if let FailureAction::Penalize { margin } = self.on_exhausted {
            if !margin.is_finite() || margin < 0.0 {
                return Err(format!(
                    "penalty margin must be finite and >= 0, got {margin}"
                ));
            }
        }
        Ok(())
    }
}

/// Complete audit trail of every recovery action one optimization run
/// performed, exposed through `OptimizationResult::recovery`.
///
/// A default (all-zero, empty) log means the run was clean: no evaluation
/// failed, no factorization needed jitter, no surrogate degraded, and no
/// iteration fell back to space filling.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoveryLog {
    /// Evaluation attempts that returned [`crate::problems::EvalOutcome::Failed`].
    pub eval_failures: usize,
    /// Evaluation attempts that returned [`crate::problems::EvalOutcome::Timeout`].
    pub eval_timeouts: usize,
    /// Retry attempts issued (each consumed one extra evaluation attempt).
    pub eval_retries: usize,
    /// History indices whose evaluation was imputed after exhausted retries
    /// (in evaluation order).  `OptimizationResult::best_index` never selects
    /// an imputed entry.
    pub imputed: Vec<usize>,
    /// Cholesky factorizations (fits and incremental updates) that only
    /// succeeded after climbing the jitter ladder.
    pub jitter_promotions: usize,
    /// Ensemble members dropped by failed trainings across all full refits
    /// (the ensembles stayed above quorum and remained usable).
    pub member_drops: usize,
    /// Full refits that failed entirely and fell back to the previous fitted
    /// surrogates (kept stale, with a forced refit pending).
    pub degraded_refits: usize,
    /// Iterations whose candidate came from the space-filling fallback
    /// because no usable surrogate existed.
    pub fallback_suggests: usize,
    /// Drift-triggered full refits suppressed by
    /// [`FailurePolicy::max_failure_refits`].
    pub failure_refits_suppressed: usize,
}

impl RecoveryLog {
    /// `true` when the run needed no recovery at all.
    pub fn is_clean(&self) -> bool {
        *self == RecoveryLog::default()
    }

    /// Total number of recovery events of any kind.
    pub fn total_events(&self) -> usize {
        self.eval_failures
            + self.eval_timeouts
            + self.eval_retries
            + self.imputed.len()
            + self.jitter_promotions
            + self.member_drops
            + self.degraded_refits
            + self.fallback_suggests
            + self.failure_refits_suppressed
    }
}

/// Per-model recovery counters a fitted surrogate reports about its own
/// construction ([`crate::SurrogateModel::resilience`]), aggregated into the
/// loop's [`RecoveryLog`] after each full refit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ModelResilience {
    /// Factorizations inside this model that needed a non-zero jitter.
    pub jitter_recoveries: usize,
    /// Ensemble members that failed to train and were dropped (zero for
    /// non-ensemble surrogates).
    pub dropped_members: usize,
}

impl ModelResilience {
    /// Component-wise sum (for aggregating over a model family).
    pub fn merged(self, other: ModelResilience) -> ModelResilience {
        ModelResilience {
            jitter_recoveries: self.jitter_recoveries + other.jitter_recoveries,
            dropped_members: self.dropped_members + other.dropped_members,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_retries_then_marks_infeasible() {
        let p = FailurePolicy::default();
        assert_eq!(p.max_retries, 2);
        assert_eq!(p.on_exhausted, FailureAction::MarkInfeasible);
        assert!(p.validate().is_ok());
        assert_eq!(FailurePolicy::no_retries().max_retries, 0);
    }

    #[test]
    fn invalid_policies_are_rejected() {
        let bad_jitter = FailurePolicy {
            retry_jitter: f64::NAN,
            ..FailurePolicy::default()
        };
        assert!(bad_jitter.validate().is_err());
        let bad_margin = FailurePolicy {
            on_exhausted: FailureAction::Penalize { margin: -0.5 },
            ..FailurePolicy::default()
        };
        assert!(bad_margin.validate().is_err());
    }

    #[test]
    fn clean_log_is_clean() {
        let mut log = RecoveryLog::default();
        assert!(log.is_clean());
        assert_eq!(log.total_events(), 0);
        log.eval_failures = 1;
        log.imputed.push(3);
        assert!(!log.is_clean());
        assert_eq!(log.total_events(), 2);
    }

    #[test]
    fn model_resilience_merges_componentwise() {
        let a = ModelResilience {
            jitter_recoveries: 2,
            dropped_members: 1,
        };
        let b = ModelResilience {
            jitter_recoveries: 3,
            dropped_members: 0,
        };
        let m = a.merged(b);
        assert_eq!(m.jitter_recoveries, 5);
        assert_eq!(m.dropped_members, 1);
    }

    #[test]
    fn recovery_log_round_trips_through_json() {
        let log = RecoveryLog {
            eval_failures: 2,
            eval_timeouts: 1,
            eval_retries: 4,
            imputed: vec![5, 9],
            jitter_promotions: 1,
            member_drops: 2,
            degraded_refits: 1,
            fallback_suggests: 3,
            failure_refits_suppressed: 1,
        };
        let json = serde::to_json_string(&log);
        let back: RecoveryLog = serde::from_json_str(&json).unwrap();
        assert_eq!(back, log);
    }
}
