//! Aggregation of repeated optimization runs into the statistics the paper reports.
//!
//! Tables I and II of the paper report, for each algorithm, the mean / median /
//! best / worst of the final figure of merit over 10–12 repeated runs, the average
//! number of simulations, and the number of successful (feasible) runs.  The types
//! here compute exactly those rows from a set of [`crate::OptimizationResult`]s.

use serde::{Deserialize, Serialize};

use crate::bo::OptimizationResult;

/// Summary of a single optimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Best feasible objective value (`None` if the run never found a feasible point).
    pub best_objective: Option<f64>,
    /// Best feasible design point in normalised coordinates.
    pub best_point: Option<Vec<f64>>,
    /// Total number of evaluations performed.
    pub evaluations: usize,
    /// Evaluation index at which the first feasible point appeared.
    pub first_feasible_at: Option<usize>,
    /// Number of simulations needed to get within 1 % of the final best value.
    pub simulations_to_converge: Option<usize>,
}

impl RunSummary {
    /// Builds the summary of one run.  `convergence_tolerance` is the absolute
    /// objective tolerance used for the "simulations to converge" statistic.
    pub fn from_result(result: &OptimizationResult, convergence_tolerance: f64) -> Self {
        RunSummary {
            best_objective: result.best_objective(),
            best_point: result.best().map(|(x, _)| x.to_vec()),
            evaluations: result.num_evaluations(),
            first_feasible_at: result.first_feasible_at(),
            simulations_to_converge: result.simulations_to_converge(convergence_tolerance),
        }
    }

    /// `true` when the run found at least one feasible design.
    pub fn succeeded(&self) -> bool {
        self.best_objective.is_some()
    }
}

/// Statistics of a set of repeated runs (one table row of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStatistics {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Number of runs that found a feasible design.
    pub successes: usize,
    /// Mean of the best objective over successful runs.
    pub mean: f64,
    /// Median of the best objective over successful runs.
    pub median: f64,
    /// Best (minimum) objective over successful runs.
    pub best: f64,
    /// Worst (maximum) objective over successful runs.
    pub worst: f64,
    /// Standard deviation of the best objective over successful runs.
    pub std: f64,
    /// Average number of simulations to converge (over runs where it is defined).
    pub avg_simulations: f64,
}

impl RunStatistics {
    /// Aggregates a set of run summaries.
    ///
    /// Returns `None` when no run succeeded (there is then nothing to aggregate).
    pub fn from_summaries(summaries: &[RunSummary]) -> Option<Self> {
        let values: Vec<f64> = summaries.iter().filter_map(|s| s.best_objective).collect();
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
        };
        let sims: Vec<f64> = summaries
            .iter()
            .filter_map(|s| s.simulations_to_converge.map(|n| n as f64))
            .collect();
        let avg_simulations = if sims.is_empty() {
            f64::NAN
        } else {
            nnbo_linalg::mean(&sims)
        };
        Some(RunStatistics {
            runs: summaries.len(),
            successes: values.len(),
            mean: nnbo_linalg::mean(&values),
            median,
            best: *sorted.first().expect("non-empty"),
            worst: *sorted.last().expect("non-empty"),
            std: nnbo_linalg::sample_std(&values),
            avg_simulations,
        })
    }

    /// Formats the success rate as the paper does ("10/10").
    pub fn success_rate(&self) -> String {
        format!("{}/{}", self.successes, self.runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(best: Option<f64>, sims: Option<usize>) -> RunSummary {
        RunSummary {
            best_objective: best,
            best_point: best.map(|_| vec![0.5]),
            evaluations: 100,
            first_feasible_at: best.map(|_| 10),
            simulations_to_converge: sims,
        }
    }

    #[test]
    fn aggregates_mean_median_best_worst() {
        let summaries = vec![
            summary(Some(3.0), Some(50)),
            summary(Some(1.0), Some(60)),
            summary(Some(2.0), Some(70)),
            summary(Some(4.0), Some(80)),
        ];
        let stats = RunStatistics::from_summaries(&summaries).unwrap();
        assert_eq!(stats.runs, 4);
        assert_eq!(stats.successes, 4);
        assert!((stats.mean - 2.5).abs() < 1e-12);
        assert!((stats.median - 2.5).abs() < 1e-12);
        assert_eq!(stats.best, 1.0);
        assert_eq!(stats.worst, 4.0);
        assert!((stats.avg_simulations - 65.0).abs() < 1e-12);
        assert_eq!(stats.success_rate(), "4/4");
    }

    #[test]
    fn failed_runs_reduce_the_success_count() {
        let summaries = vec![summary(Some(2.0), Some(40)), summary(None, None)];
        let stats = RunStatistics::from_summaries(&summaries).unwrap();
        assert_eq!(stats.successes, 1);
        assert_eq!(stats.runs, 2);
        assert_eq!(stats.success_rate(), "1/2");
        assert!(!summary(None, None).succeeded());
    }

    #[test]
    fn all_failed_runs_yield_no_statistics() {
        let summaries = vec![summary(None, None), summary(None, None)];
        assert!(RunStatistics::from_summaries(&summaries).is_none());
    }

    #[test]
    fn odd_count_median_is_the_middle_value() {
        let summaries = vec![
            summary(Some(5.0), None),
            summary(Some(1.0), None),
            summary(Some(3.0), None),
        ];
        let stats = RunStatistics::from_summaries(&summaries).unwrap();
        assert_eq!(stats.median, 3.0);
        assert!(stats.avg_simulations.is_nan());
    }
}
