//! Optimization-problem abstraction and ready-made benchmark problems.
//!
//! A [`Problem`] is the constrained minimisation problem of eq. 1 of the paper:
//!
//! ```text
//! minimize  f(x)
//! s.t.      g_i(x) < 0,  i = 1..Nc
//! ```
//!
//! over a normalised design space (the unit hypercube); the adapter types in this
//! module translate the circuit testbenches of [`nnbo_circuits`] and a collection of
//! synthetic benchmarks into that form.

mod circuit;
mod sweep;
mod synthetic;

pub use circuit::{BiasedOpAmpProblem, ChargePumpProblem, OpAmpProblem};
pub use sweep::{SweepAggregation, SweepProblem};
pub use synthetic::{
    Ackley, ConstrainedBranin, GardnerSine, Hartmann6, Levy, Rosenbrock, WeightedSphere,
};

// Re-exported so downstream crates (e.g. `nnbo-serve`) can build sweep
// problems without depending on `nnbo-circuits` directly.
pub use nnbo_circuits::{
    CornerAggregation, CornerContext, CornerOutput, CornerSweep, PvtCorner, SweepMeasurement,
    Testbench,
};

use serde::{Deserialize, Serialize};

/// The outcome of one (expensive) evaluation of a design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Objective value `f(x)` (to be minimised).
    pub objective: f64,
    /// Constraint values `g_i(x)`; the design is feasible when all are `< 0`.
    pub constraints: Vec<f64>,
}

impl Evaluation {
    /// Creates an evaluation from an objective and constraint values.
    pub fn new(objective: f64, constraints: Vec<f64>) -> Self {
        Evaluation {
            objective,
            constraints,
        }
    }

    /// An unconstrained evaluation.
    pub fn unconstrained(objective: f64) -> Self {
        Evaluation {
            objective,
            constraints: Vec::new(),
        }
    }

    /// `true` when every constraint is satisfied (`g_i < 0`).
    pub fn is_feasible(&self) -> bool {
        self.constraints.iter().all(|g| *g < 0.0)
    }

    /// Total constraint violation `Σ max(g_i, 0)` — zero for feasible points.
    pub fn violation(&self) -> f64 {
        self.constraints.iter().map(|g| g.max(0.0)).sum()
    }
}

/// The honest outcome of one (expensive) evaluation attempt: real simulators
/// crash, diverge, and time out, and the optimization loop needs to know.
///
/// [`Problem::try_evaluate`] returns this instead of panicking or smuggling
/// `NaN` through an [`Evaluation`]; the loop's failure policy
/// (`FailurePolicy` in this crate) decides whether to retry, impute, or mark
/// the point infeasible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EvalOutcome {
    /// The evaluation completed with finite objective and constraint values.
    Ok(Evaluation),
    /// The evaluation failed (solver non-convergence, non-finite measures,
    /// a crashed testbench) with a human-readable reason.
    Failed(String),
    /// The evaluation exceeded its time budget.
    Timeout,
}

impl EvalOutcome {
    /// `true` for a completed evaluation.
    pub fn is_ok(&self) -> bool {
        matches!(self, EvalOutcome::Ok(_))
    }

    /// The evaluation, if the attempt completed.
    pub fn ok(self) -> Option<Evaluation> {
        match self {
            EvalOutcome::Ok(e) => Some(e),
            _ => None,
        }
    }

    /// A short description of the failure mode (`None` for [`EvalOutcome::Ok`]).
    pub fn failure_reason(&self) -> Option<&str> {
        match self {
            EvalOutcome::Ok(_) => None,
            EvalOutcome::Failed(reason) => Some(reason),
            EvalOutcome::Timeout => Some("evaluation timed out"),
        }
    }
}

/// A constrained, expensive black-box minimisation problem over the unit hypercube.
///
/// Implementations should be deterministic: the optimizer relies on re-evaluating
/// the same point giving the same answer (the circuit simulators in this workspace
/// are deterministic, and the paper's HSPICE runs are treated the same way).
pub trait Problem: Sync {
    /// Dimension of the design space.
    fn dim(&self) -> usize;

    /// Number of constraints.
    fn num_constraints(&self) -> usize;

    /// Evaluates a design point given in normalised `[0, 1]` coordinates.
    ///
    /// This is the infallible legacy entry point; problems whose evaluation
    /// can genuinely fail should override [`Problem::try_evaluate`] and keep
    /// this as a best-effort projection (the circuit adapters return a large
    /// penalty evaluation here).
    fn evaluate(&self, x: &[f64]) -> Evaluation;

    /// Evaluates a design point, reporting failure honestly.
    ///
    /// The default wraps [`Problem::evaluate`] and converts any non-finite
    /// objective or constraint value into [`EvalOutcome::Failed`], so every
    /// problem is NaN-safe by construction and the optimization loop never
    /// ingests a non-finite observation.  Problems backed by real solvers
    /// override this to report non-convergence and timeouts directly.
    fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
        let eval = self.evaluate(x);
        if !eval.objective.is_finite() {
            return EvalOutcome::Failed(format!(
                "non-finite objective {} at evaluation",
                eval.objective
            ));
        }
        if let Some((i, g)) = eval
            .constraints
            .iter()
            .enumerate()
            .find(|(_, g)| !g.is_finite())
        {
            return EvalOutcome::Failed(format!("non-finite constraint {i} value {g}"));
        }
        EvalOutcome::Ok(eval)
    }

    /// Evaluates a batch of design points, reporting each outcome honestly.
    ///
    /// The default is a sequential loop over [`Problem::try_evaluate`] — the
    /// reference semantics every existing problem gets for free.  Problems
    /// whose evaluations parallelise internally (corner sweeps, external
    /// simulator farms) override this to fan the whole batch out at once;
    /// overrides must return outcomes in input order, bit-identical to the
    /// sequential loop.
    fn try_evaluate_batch(&self, xs: &[&[f64]]) -> Vec<EvalOutcome> {
        xs.iter().map(|x| self.try_evaluate(x)).collect()
    }

    /// A short human-readable name used in reports.
    fn name(&self) -> &str {
        "problem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_and_violation() {
        let ok = Evaluation::new(1.0, vec![-0.1, -2.0]);
        assert!(ok.is_feasible());
        assert_eq!(ok.violation(), 0.0);
        let bad = Evaluation::new(1.0, vec![0.5, -1.0, 0.25]);
        assert!(!bad.is_feasible());
        assert!((bad.violation() - 0.75).abs() < 1e-12);
        let unc = Evaluation::unconstrained(3.0);
        assert!(unc.is_feasible());
    }

    #[test]
    fn boundary_constraint_is_infeasible() {
        // The paper formulates constraints strictly (`g < 0`), so exactly zero is
        // not feasible.
        let e = Evaluation::new(0.0, vec![0.0]);
        assert!(!e.is_feasible());
    }

    struct NanAt {
        trigger: f64,
        nan_constraint: bool,
    }

    impl Problem for NanAt {
        fn dim(&self) -> usize {
            1
        }
        fn num_constraints(&self) -> usize {
            1
        }
        fn evaluate(&self, x: &[f64]) -> Evaluation {
            if (x[0] - self.trigger).abs() < 1e-9 {
                if self.nan_constraint {
                    Evaluation::new(1.0, vec![f64::NAN])
                } else {
                    Evaluation::new(f64::INFINITY, vec![-1.0])
                }
            } else {
                Evaluation::new(x[0], vec![-1.0])
            }
        }
    }

    #[test]
    fn default_try_evaluate_converts_non_finite_values_into_failures() {
        let p = NanAt {
            trigger: 0.5,
            nan_constraint: false,
        };
        assert!(p.try_evaluate(&[0.25]).is_ok());
        let failed = p.try_evaluate(&[0.5]);
        assert!(!failed.is_ok());
        assert!(failed.failure_reason().unwrap().contains("objective"));

        let pc = NanAt {
            trigger: 0.5,
            nan_constraint: true,
        };
        let failed = pc.try_evaluate(&[0.5]);
        assert!(failed.failure_reason().unwrap().contains("constraint 0"));
    }

    #[test]
    fn eval_outcome_accessors() {
        let ok = EvalOutcome::Ok(Evaluation::unconstrained(1.0));
        assert!(ok.is_ok());
        assert_eq!(ok.failure_reason(), None);
        assert_eq!(ok.ok().unwrap().objective, 1.0);
        assert_eq!(
            EvalOutcome::Timeout.failure_reason(),
            Some("evaluation timed out")
        );
        assert!(EvalOutcome::Failed("x".into()).ok().is_none());
    }
}
