//! Optimization-problem abstraction and ready-made benchmark problems.
//!
//! A [`Problem`] is the constrained minimisation problem of eq. 1 of the paper:
//!
//! ```text
//! minimize  f(x)
//! s.t.      g_i(x) < 0,  i = 1..Nc
//! ```
//!
//! over a normalised design space (the unit hypercube); the adapter types in this
//! module translate the circuit testbenches of [`nnbo_circuits`] and a collection of
//! synthetic benchmarks into that form.

mod circuit;
mod synthetic;

pub use circuit::{ChargePumpProblem, OpAmpProblem};
pub use synthetic::{Ackley, ConstrainedBranin, GardnerSine, Hartmann6, Levy, Rosenbrock};

use serde::{Deserialize, Serialize};

/// The outcome of one (expensive) evaluation of a design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Objective value `f(x)` (to be minimised).
    pub objective: f64,
    /// Constraint values `g_i(x)`; the design is feasible when all are `< 0`.
    pub constraints: Vec<f64>,
}

impl Evaluation {
    /// Creates an evaluation from an objective and constraint values.
    pub fn new(objective: f64, constraints: Vec<f64>) -> Self {
        Evaluation {
            objective,
            constraints,
        }
    }

    /// An unconstrained evaluation.
    pub fn unconstrained(objective: f64) -> Self {
        Evaluation {
            objective,
            constraints: Vec::new(),
        }
    }

    /// `true` when every constraint is satisfied (`g_i < 0`).
    pub fn is_feasible(&self) -> bool {
        self.constraints.iter().all(|g| *g < 0.0)
    }

    /// Total constraint violation `Σ max(g_i, 0)` — zero for feasible points.
    pub fn violation(&self) -> f64 {
        self.constraints.iter().map(|g| g.max(0.0)).sum()
    }
}

/// A constrained, expensive black-box minimisation problem over the unit hypercube.
///
/// Implementations should be deterministic: the optimizer relies on re-evaluating
/// the same point giving the same answer (the circuit simulators in this workspace
/// are deterministic, and the paper's HSPICE runs are treated the same way).
pub trait Problem: Sync {
    /// Dimension of the design space.
    fn dim(&self) -> usize;

    /// Number of constraints.
    fn num_constraints(&self) -> usize;

    /// Evaluates a design point given in normalised `[0, 1]` coordinates.
    fn evaluate(&self, x: &[f64]) -> Evaluation;

    /// A short human-readable name used in reports.
    fn name(&self) -> &str {
        "problem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_and_violation() {
        let ok = Evaluation::new(1.0, vec![-0.1, -2.0]);
        assert!(ok.is_feasible());
        assert_eq!(ok.violation(), 0.0);
        let bad = Evaluation::new(1.0, vec![0.5, -1.0, 0.25]);
        assert!(!bad.is_feasible());
        assert!((bad.violation() - 0.75).abs() < 1e-12);
        let unc = Evaluation::unconstrained(3.0);
        assert!(unc.is_feasible());
    }

    #[test]
    fn boundary_constraint_is_infeasible() {
        // The paper formulates constraints strictly (`g < 0`), so exactly zero is
        // not feasible.
        let e = Evaluation::new(0.0, vec![0.0]);
        assert!(!e.is_feasible());
    }
}
