//! Circuit-synthesis problems: the paper's two evaluation circuits.

use nnbo_circuits::{
    BiasedTwoStageOpAmp, ChargePump, TwoStageOpAmp, BIASED_OPAMP_DIM, CHARGE_PUMP_DIM, OPAMP_DIM,
};

use super::{EvalOutcome, Evaluation, Problem};

/// The two-stage op-amp sizing problem of Table I:
///
/// ```text
/// maximize  GAIN
/// s.t.      UGF > 40 MHz
///           PM  > 60°
/// ```
///
/// rewritten as a minimisation of `-GAIN` with constraints in `g_i(x) < 0` form.
/// The constraints are expressed in natural units — MHz of UGF shortfall and degrees
/// of phase-margin shortfall — so that the constraint surrogates see well-scaled
/// targets.
///
/// # Example
///
/// ```
/// use nnbo_core::problems::{OpAmpProblem, Problem};
///
/// let problem = OpAmpProblem::new();
/// assert_eq!(problem.dim(), 10);
/// assert_eq!(problem.num_constraints(), 2);
/// let eval = problem.evaluate(&[0.5; 10]);
/// assert!(eval.objective.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct OpAmpProblem {
    bench: TwoStageOpAmp,
    min_ugf_hz: f64,
    min_pm_deg: f64,
}

impl Default for OpAmpProblem {
    fn default() -> Self {
        OpAmpProblem {
            bench: TwoStageOpAmp::new(),
            min_ugf_hz: 40e6,
            min_pm_deg: 60.0,
        }
    }
}

impl OpAmpProblem {
    /// Creates the problem with the paper's specification (UGF > 40 MHz, PM > 60°).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the problem with a custom specification.
    pub fn with_spec(min_ugf_hz: f64, min_pm_deg: f64) -> Self {
        OpAmpProblem {
            bench: TwoStageOpAmp::new(),
            min_ugf_hz,
            min_pm_deg,
        }
    }

    /// Creates the problem from a custom-configured testbench.
    pub fn from_bench(bench: TwoStageOpAmp) -> Self {
        OpAmpProblem {
            bench,
            ..Self::default()
        }
    }

    /// The corner-stress fixture: the paper's specification on the
    /// deliberately broken [`TwoStageOpAmp::stressed`] bench, whose AC
    /// analysis fails at every design point.  [`Problem::try_evaluate`]
    /// reports [`EvalOutcome::Failed`] deterministically — use it to
    /// exercise the optimization loop's failure policy end to end.
    pub fn corner_stress() -> Self {
        Self::from_bench(TwoStageOpAmp::stressed())
    }

    /// The underlying circuit testbench.
    pub fn bench(&self) -> &TwoStageOpAmp {
        &self.bench
    }

    /// Full circuit performances at a normalised design point (useful for reporting
    /// UGF and PM alongside the gain, as Table I does).
    pub fn performances(&self, x: &[f64]) -> nnbo_circuits::OpAmpPerformance {
        self.bench.evaluate_normalized(x)
    }
}

impl Problem for OpAmpProblem {
    fn dim(&self) -> usize {
        OPAMP_DIM
    }

    fn num_constraints(&self) -> usize {
        2
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let p = self.bench.evaluate_normalized(x);
        // Maximising GAIN == minimising -GAIN (dB).
        let objective = -p.gain_db;
        // UGF constraint in MHz, PM constraint in degrees (both "shortfall < 0").
        let g_ugf = (self.min_ugf_hz - p.ugf_hz) / 1e6;
        let g_pm = self.min_pm_deg - p.pm_deg;
        Evaluation::new(objective, vec![g_ugf, g_pm])
    }

    fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
        // Honest path: a singular MNA system is a failed simulation, not a
        // −100 dB op-amp.  (`evaluate` keeps the penalty projection.)
        match self.bench.try_evaluate_normalized(x) {
            Ok(p) => EvalOutcome::Ok(Evaluation::new(
                -p.gain_db,
                vec![
                    (self.min_ugf_hz - p.ugf_hz) / 1e6,
                    self.min_pm_deg - p.pm_deg,
                ],
            )),
            Err(reason) => EvalOutcome::Failed(format!("op-amp simulation failed: {reason}")),
        }
    }

    fn name(&self) -> &str {
        "two-stage-opamp"
    }
}

/// The bias-network-expanded op-amp sizing problem: the Table-I specification
/// (maximize GAIN s.t. UGF > 40 MHz, PM > 60°) over the 13-dimensional
/// [`BiasedTwoStageOpAmp`] design space, where the compensation resistor,
/// the bias-mirror ratio and the output-stage current multiplier are design
/// variables alongside the 10 sizing variables.
///
/// This is the high-dimensional circuit scenario the LinEasyBO subspace
/// strategy targets: the search space strictly contains the fixed-bias
/// Table-I problem, so the attainable optimum is at least as good.
///
/// # Example
///
/// ```
/// use nnbo_core::problems::{BiasedOpAmpProblem, Problem};
///
/// let problem = BiasedOpAmpProblem::new();
/// assert_eq!(problem.dim(), 13);
/// assert_eq!(problem.num_constraints(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BiasedOpAmpProblem {
    bench: BiasedTwoStageOpAmp,
    min_ugf_hz: f64,
    min_pm_deg: f64,
}

impl Default for BiasedOpAmpProblem {
    fn default() -> Self {
        BiasedOpAmpProblem {
            bench: BiasedTwoStageOpAmp::new(),
            min_ugf_hz: 40e6,
            min_pm_deg: 60.0,
        }
    }
}

impl BiasedOpAmpProblem {
    /// Creates the problem with the paper's specification (UGF > 40 MHz, PM > 60°).
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying circuit testbench.
    pub fn bench(&self) -> &BiasedTwoStageOpAmp {
        &self.bench
    }

    /// Full circuit performances at a normalised design point.
    pub fn performances(&self, x: &[f64]) -> nnbo_circuits::OpAmpPerformance {
        self.bench.evaluate_normalized(x)
    }
}

impl Problem for BiasedOpAmpProblem {
    fn dim(&self) -> usize {
        BIASED_OPAMP_DIM
    }

    fn num_constraints(&self) -> usize {
        2
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let p = self.bench.evaluate_normalized(x);
        Evaluation::new(
            -p.gain_db,
            vec![
                (self.min_ugf_hz - p.ugf_hz) / 1e6,
                self.min_pm_deg - p.pm_deg,
            ],
        )
    }

    fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
        match self.bench.try_evaluate_normalized(x) {
            Ok(p) => EvalOutcome::Ok(Evaluation::new(
                -p.gain_db,
                vec![
                    (self.min_ugf_hz - p.ugf_hz) / 1e6,
                    self.min_pm_deg - p.pm_deg,
                ],
            )),
            Err(reason) => {
                EvalOutcome::Failed(format!("biased op-amp simulation failed: {reason}"))
            }
        }
    }

    fn name(&self) -> &str {
        "biased-two-stage-opamp"
    }
}

/// The charge-pump sizing problem of Table II:
///
/// ```text
/// minimize  FOM = 0.3·diff + 0.5·deviation
/// s.t.      diff1 < 20 µA, diff2 < 20 µA,
///           diff3 < 5 µA,  diff4 < 5 µA,
///           deviation < 5 µA
/// ```
///
/// evaluated over 18 PVT corners (eq. 15–16 of the paper).
///
/// # Example
///
/// ```
/// use nnbo_core::problems::{ChargePumpProblem, Problem};
///
/// let problem = ChargePumpProblem::new();
/// assert_eq!(problem.dim(), 36);
/// assert_eq!(problem.num_constraints(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct ChargePumpProblem {
    bench: ChargePump,
}

impl Default for ChargePumpProblem {
    fn default() -> Self {
        ChargePumpProblem {
            bench: ChargePump::new(),
        }
    }
}

impl ChargePumpProblem {
    /// Creates the problem with the standard 18 PVT corners.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the problem from a custom-configured testbench.
    pub fn from_bench(bench: ChargePump) -> Self {
        ChargePumpProblem { bench }
    }

    /// The underlying testbench.
    pub fn bench(&self) -> &ChargePump {
        &self.bench
    }

    /// Full charge-pump metrics at a normalised design point (for Table-II style
    /// reporting of diff1..4 and deviation).
    pub fn performances(&self, x: &[f64]) -> nnbo_circuits::ChargePumpPerformance {
        self.bench.evaluate_normalized(x)
    }
}

impl Problem for ChargePumpProblem {
    fn dim(&self) -> usize {
        CHARGE_PUMP_DIM
    }

    fn num_constraints(&self) -> usize {
        5
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let p = self.bench.evaluate_normalized(x);
        Evaluation::new(
            p.fom,
            vec![
                p.diff1 - 20.0,
                p.diff2 - 20.0,
                p.diff3 - 5.0,
                p.diff4 - 5.0,
                p.deviation - 5.0,
            ],
        )
    }

    fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
        match self.bench.try_evaluate_normalized(x) {
            Ok(p) => EvalOutcome::Ok(Evaluation::new(
                p.fom,
                vec![
                    p.diff1 - 20.0,
                    p.diff2 - 20.0,
                    p.diff3 - 5.0,
                    p.diff4 - 5.0,
                    p.deviation - 5.0,
                ],
            )),
            Err(reason) => EvalOutcome::Failed(format!("charge-pump simulation failed: {reason}")),
        }
    }

    fn name(&self) -> &str {
        "charge-pump"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opamp_objective_is_negated_gain() {
        let problem = OpAmpProblem::new();
        let x = vec![0.5; 10];
        let eval = problem.evaluate(&x);
        let perf = problem.performances(&x);
        assert!((eval.objective + perf.gain_db).abs() < 1e-12);
        assert_eq!(eval.constraints.len(), 2);
    }

    #[test]
    fn opamp_constraints_flip_sign_with_spec() {
        // With an impossible spec every point is infeasible; with a trivial spec the
        // same point becomes feasible.
        let x = vec![0.5; 10];
        let strict = OpAmpProblem::with_spec(1e12, 179.0);
        assert!(!strict.evaluate(&x).is_feasible());
        let trivial = OpAmpProblem::with_spec(1.0, 0.1);
        let eval = trivial.evaluate(&x);
        assert!(eval.constraints[0] < 0.0);
    }

    #[test]
    fn chargepump_constraints_match_table_ii_limits() {
        let problem = ChargePumpProblem::new();
        let x = vec![0.5; 36];
        let eval = problem.evaluate(&x);
        let perf = problem.performances(&x);
        assert!((eval.objective - perf.fom).abs() < 1e-12);
        assert!((eval.constraints[0] - (perf.diff1 - 20.0)).abs() < 1e-12);
        assert!((eval.constraints[4] - (perf.deviation - 5.0)).abs() < 1e-12);
        assert_eq!(eval.is_feasible(), perf.feasible());
    }

    #[test]
    fn problems_report_their_shapes() {
        assert_eq!(OpAmpProblem::new().dim(), 10);
        assert_eq!(OpAmpProblem::new().name(), "two-stage-opamp");
        assert_eq!(ChargePumpProblem::new().dim(), 36);
        assert_eq!(ChargePumpProblem::new().num_constraints(), 5);
        assert_eq!(BiasedOpAmpProblem::new().dim(), 13);
        assert_eq!(BiasedOpAmpProblem::new().num_constraints(), 2);
        assert_eq!(BiasedOpAmpProblem::new().name(), "biased-two-stage-opamp");
    }

    #[test]
    fn biased_opamp_contains_the_fixed_bias_problem() {
        // At the fixed bench's bias constants the expanded problem evaluates
        // to exactly the Table-I problem, so its search space strictly
        // contains the 10-D one.
        let fixed = OpAmpProblem::new();
        let expanded = BiasedOpAmpProblem::new();
        let sizing = [0.3, 0.5, 0.7, 0.2, 0.6, 0.4, 0.8, 0.5, 0.35, 0.45];
        let bounds = expanded.bench().bounds();
        let mut x = sizing.to_vec();
        // Normalised coordinates of R_z = 1 kΩ, ratio 10, multiplier 3.
        x.push((1.0e3 - bounds[10].0) / (bounds[10].1 - bounds[10].0));
        x.push((10.0 - bounds[11].0) / (bounds[11].1 - bounds[11].0));
        x.push((3.0 - bounds[12].0) / (bounds[12].1 - bounds[12].0));
        let a = expanded.evaluate(&x);
        let b = fixed.evaluate(&sizing);
        assert!((a.objective - b.objective).abs() < 1e-9);
        for (ga, gb) in a.constraints.iter().zip(b.constraints.iter()) {
            assert!((ga - gb).abs() < 1e-9);
        }
        // The honest path agrees with the projection on healthy points.
        match expanded.try_evaluate(&x) {
            crate::problems::EvalOutcome::Ok(e) => assert_eq!(e, a),
            other => panic!("healthy biased op-amp point failed: {other:?}"),
        }
    }

    #[test]
    fn honest_path_matches_the_infallible_projection_on_healthy_points() {
        let opamp = OpAmpProblem::new();
        let x = vec![0.5; 10];
        match opamp.try_evaluate(&x) {
            crate::problems::EvalOutcome::Ok(e) => assert_eq!(e, opamp.evaluate(&x)),
            other => panic!("healthy op-amp point failed: {other:?}"),
        }
        let pump = ChargePumpProblem::new();
        let x = vec![0.5; 36];
        match pump.try_evaluate(&x) {
            crate::problems::EvalOutcome::Ok(e) => assert_eq!(e, pump.evaluate(&x)),
            other => panic!("healthy charge-pump point failed: {other:?}"),
        }
    }

    #[test]
    fn corner_stress_fixture_fails_deterministically_with_a_reason() {
        let stressed = OpAmpProblem::corner_stress();
        for x in [vec![0.1; 10], vec![0.5; 10], vec![0.9; 10]] {
            match stressed.try_evaluate(&x) {
                crate::problems::EvalOutcome::Failed(reason) => {
                    assert!(reason.contains("singular"), "reason: {reason}");
                }
                other => panic!("stressed bench unexpectedly produced {other:?}"),
            }
            // The legacy projection still yields a finite penalty evaluation.
            let e = stressed.evaluate(&x);
            assert!(e.objective.is_finite());
        }
    }
}
