//! Synthetic benchmark problems used to validate the optimizer itself.
//!
//! These have known optima, are cheap to evaluate, and exercise the same code path
//! as the circuit problems, which makes them ideal for the test-suite and for the
//! acquisition-function ablation experiments.

use super::{Evaluation, Problem};

/// The Branin function on `[-5, 10] × [0, 15]` with the disk constraint
/// `(x1 − 2.5)² + (x2 − 7.5)² ≤ 50` (a standard constrained-BO benchmark).
///
/// The unconstrained Branin has three global minima of value ≈ 0.397887; the disk
/// keeps part of that set feasible, so the constrained optimum equals the
/// unconstrained one.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstrainedBranin;

impl ConstrainedBranin {
    /// Creates the problem.
    pub fn new() -> Self {
        ConstrainedBranin
    }

    /// The global minimum value of the (constrained) problem.
    pub fn optimum(&self) -> f64 {
        0.397887
    }
}

impl Problem for ConstrainedBranin {
    fn dim(&self) -> usize {
        2
    }

    fn num_constraints(&self) -> usize {
        1
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let x1 = -5.0 + 15.0 * x[0].clamp(0.0, 1.0);
        let x2 = 15.0 * x[1].clamp(0.0, 1.0);
        let a = 1.0;
        let b = 5.1 / (4.0 * std::f64::consts::PI * std::f64::consts::PI);
        let c = 5.0 / std::f64::consts::PI;
        let r = 6.0;
        let s = 10.0;
        let t = 1.0 / (8.0 * std::f64::consts::PI);
        let f = a * (x2 - b * x1 * x1 + c * x1 - r).powi(2) + s * (1.0 - t) * x1.cos() + s;
        let g = (x1 - 2.5).powi(2) + (x2 - 7.5).powi(2) - 50.0;
        Evaluation::new(f, vec![g])
    }

    fn name(&self) -> &str {
        "constrained-branin"
    }
}

/// The 6-dimensional Hartmann function (unconstrained), global minimum ≈ −3.32237.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hartmann6;

impl Hartmann6 {
    /// Creates the problem.
    pub fn new() -> Self {
        Hartmann6
    }

    /// The global minimum value.
    pub fn optimum(&self) -> f64 {
        -3.32237
    }
}

impl Problem for Hartmann6 {
    fn dim(&self) -> usize {
        6
    }

    fn num_constraints(&self) -> usize {
        0
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        const ALPHA: [f64; 4] = [1.0, 1.2, 3.0, 3.2];
        const A: [[f64; 6]; 4] = [
            [10.0, 3.0, 17.0, 3.5, 1.7, 8.0],
            [0.05, 10.0, 17.0, 0.1, 8.0, 14.0],
            [3.0, 3.5, 1.7, 10.0, 17.0, 8.0],
            [17.0, 8.0, 0.05, 10.0, 0.1, 14.0],
        ];
        const P: [[f64; 6]; 4] = [
            [0.1312, 0.1696, 0.5569, 0.0124, 0.8283, 0.5886],
            [0.2329, 0.4135, 0.8307, 0.3736, 0.1004, 0.9991],
            [0.2348, 0.1451, 0.3522, 0.2883, 0.3047, 0.6650],
            [0.4047, 0.8828, 0.8732, 0.5743, 0.1091, 0.0381],
        ];
        let mut f = 0.0;
        for i in 0..4 {
            let mut inner = 0.0;
            for j in 0..6 {
                let xj = x[j].clamp(0.0, 1.0);
                inner += A[i][j] * (xj - P[i][j]).powi(2);
            }
            f -= ALPHA[i] * (-inner).exp();
        }
        Evaluation::unconstrained(f)
    }

    fn name(&self) -> &str {
        "hartmann6"
    }
}

/// The Ackley function on `[-5, 5]^d` (unconstrained), global minimum 0 at the
/// origin.  Highly multi-modal — a stress test for the surrogate.
#[derive(Debug, Clone, Copy)]
pub struct Ackley {
    dim: usize,
}

impl Ackley {
    /// Creates the problem in `dim` dimensions.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Ackley { dim }
    }
}

impl Problem for Ackley {
    fn dim(&self) -> usize {
        self.dim
    }

    fn num_constraints(&self) -> usize {
        0
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let d = self.dim as f64;
        let mapped: Vec<f64> = x.iter().map(|v| -5.0 + 10.0 * v.clamp(0.0, 1.0)).collect();
        let sum_sq: f64 = mapped.iter().map(|v| v * v).sum();
        let sum_cos: f64 = mapped
            .iter()
            .map(|v| (2.0 * std::f64::consts::PI * v).cos())
            .sum();
        let f = -20.0 * (-0.2 * (sum_sq / d).sqrt()).exp() - (sum_cos / d).exp()
            + 20.0
            + std::f64::consts::E;
        Evaluation::unconstrained(f)
    }

    fn name(&self) -> &str {
        "ackley"
    }
}

/// The Rosenbrock function on `[-2, 2]^d` (unconstrained), global minimum 0 at
/// `(1, …, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct Rosenbrock {
    dim: usize,
}

impl Rosenbrock {
    /// Creates the problem in `dim` dimensions (`dim >= 2`).
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 2, "rosenbrock needs at least two dimensions");
        Rosenbrock { dim }
    }
}

impl Problem for Rosenbrock {
    fn dim(&self) -> usize {
        self.dim
    }

    fn num_constraints(&self) -> usize {
        0
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let mapped: Vec<f64> = x.iter().map(|v| -2.0 + 4.0 * v.clamp(0.0, 1.0)).collect();
        let mut f = 0.0;
        for i in 0..self.dim - 1 {
            f +=
                100.0 * (mapped[i + 1] - mapped[i] * mapped[i]).powi(2) + (1.0 - mapped[i]).powi(2);
        }
        Evaluation::unconstrained(f)
    }

    fn name(&self) -> &str {
        "rosenbrock"
    }
}

/// The Levy function on `[-10, 10]^d` (unconstrained), global minimum 0 at
/// `(1, …, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct Levy {
    dim: usize,
}

impl Levy {
    /// Creates the problem in `dim` dimensions.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Levy { dim }
    }
}

impl Problem for Levy {
    fn dim(&self) -> usize {
        self.dim
    }

    fn num_constraints(&self) -> usize {
        0
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        use std::f64::consts::PI;
        let mapped: Vec<f64> = x.iter().map(|v| -10.0 + 20.0 * v.clamp(0.0, 1.0)).collect();
        let w: Vec<f64> = mapped.iter().map(|v| 1.0 + (v - 1.0) / 4.0).collect();
        let d = self.dim;
        let mut f = (PI * w[0]).sin().powi(2);
        for i in 0..d - 1 {
            f += (w[i] - 1.0).powi(2) * (1.0 + 10.0 * (PI * w[i] + 1.0).sin().powi(2));
        }
        f += (w[d - 1] - 1.0).powi(2) * (1.0 + (2.0 * PI * w[d - 1]).sin().powi(2));
        Evaluation::unconstrained(f)
    }

    fn name(&self) -> &str {
        "levy"
    }
}

/// A high-dimensional constrained quadratic with decaying axis weights —
/// the scaling family the LinEasyBO subspace strategy is benchmarked on
/// (`reproduce scaling`'s D ∈ {20, 50} runs).
///
/// `f(x) = Σ_d w_d (x_d − c_d)²` with `w_d = 1 / (1 + d)` on the native unit
/// cube, subject to the mild budget constraint `mean(x) − 0.75 < 0`.  The
/// centre `c` is a deterministic golden-ratio low-discrepancy sequence mapped
/// into `[0.2, 0.8]`, so the optimum (value `0`, feasible since
/// `mean(c) ≈ 0.5`) sits away from every face.  The decaying weights give the
/// problem the low effective dimensionality typical of sizing tasks: the
/// first few coordinates carry most of the objective, which is exactly the
/// structure lengthscale-weighted line directions are meant to exploit.
#[derive(Debug, Clone)]
pub struct WeightedSphere {
    dim: usize,
    center: Vec<f64>,
}

impl WeightedSphere {
    /// Creates the problem in `dim` dimensions.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        const PHI: f64 = 0.618_033_988_749_895;
        let center = (0..dim)
            .map(|d| 0.2 + 0.6 * (PHI * (d as f64 + 1.0)).fract())
            .collect();
        WeightedSphere { dim, center }
    }

    /// The global minimum value (always `0`, attained at the centre).
    pub fn optimum(&self) -> f64 {
        0.0
    }

    /// The (feasible) minimiser in normalised coordinates.
    pub fn minimiser(&self) -> &[f64] {
        &self.center
    }
}

impl Problem for WeightedSphere {
    fn dim(&self) -> usize {
        self.dim
    }

    fn num_constraints(&self) -> usize {
        1
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let mut f = 0.0;
        let mut mean = 0.0;
        for (d, (v, c)) in x.iter().zip(self.center.iter()).enumerate() {
            let v = v.clamp(0.0, 1.0);
            f += (v - c) * (v - c) / (1.0 + d as f64);
            mean += v;
        }
        mean /= self.dim as f64;
        Evaluation::new(f, vec![mean - 0.75])
    }

    fn name(&self) -> &str {
        "weighted-sphere"
    }
}

/// The Gardner sine constrained problem on `[0, 6]²`:
/// minimise `sin(x1) + x2` subject to `sin(x1)·sin(x2) < -0.95`
/// (a tight, disconnected feasible region — a good stress test for wEI).
#[derive(Debug, Clone, Copy, Default)]
pub struct GardnerSine;

impl GardnerSine {
    /// Creates the problem.
    pub fn new() -> Self {
        GardnerSine
    }
}

impl Problem for GardnerSine {
    fn dim(&self) -> usize {
        2
    }

    fn num_constraints(&self) -> usize {
        1
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let x1 = 6.0 * x[0].clamp(0.0, 1.0);
        let x2 = 6.0 * x[1].clamp(0.0, 1.0);
        let f = x1.sin() + x2;
        let g = x1.sin() * x2.sin() + 0.95;
        Evaluation::new(f, vec![g])
    }

    fn name(&self) -> &str {
        "gardner-sine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branin_optimum_is_reached_at_known_minimiser() {
        let p = ConstrainedBranin::new();
        // (π, 2.275) is one of the Branin minima, inside the disk.
        let x_norm = [(std::f64::consts::PI + 5.0) / 15.0, 2.275 / 15.0];
        let eval = p.evaluate(&x_norm);
        assert!((eval.objective - p.optimum()).abs() < 1e-3);
        assert!(eval.is_feasible());
    }

    #[test]
    fn branin_far_minimum_is_infeasible() {
        // The minimiser near (9.42, 2.475) lies outside the disk constraint.
        let p = ConstrainedBranin::new();
        let x_norm = [(9.42478 + 5.0) / 15.0, 2.475 / 15.0];
        let eval = p.evaluate(&x_norm);
        assert!((eval.objective - p.optimum()).abs() < 1e-3);
        assert!(!eval.is_feasible());
    }

    #[test]
    fn hartmann6_known_minimum() {
        let p = Hartmann6::new();
        let x_star = [0.20169, 0.150011, 0.476874, 0.275332, 0.311652, 0.6573];
        let eval = p.evaluate(&x_star);
        assert!((eval.objective - p.optimum()).abs() < 1e-3);
        // Any other point is worse.
        assert!(p.evaluate(&[0.9; 6]).objective > eval.objective);
    }

    #[test]
    fn ackley_minimum_at_centre() {
        let p = Ackley::new(4);
        // Origin maps to normalised 0.5.
        let at_min = p.evaluate(&[0.5; 4]).objective;
        assert!(at_min.abs() < 1e-6);
        assert!(p.evaluate(&[0.9; 4]).objective > 1.0);
    }

    #[test]
    fn rosenbrock_minimum_at_ones() {
        let p = Rosenbrock::new(3);
        // x = 1 maps to normalised 0.75 on [-2, 2].
        let at_min = p.evaluate(&[0.75; 3]).objective;
        assert!(at_min.abs() < 1e-9);
        assert!(p.evaluate(&[0.2; 3]).objective > at_min);
    }

    #[test]
    fn levy_minimum_at_ones() {
        let p = Levy::new(5);
        // x = 1 maps to normalised 0.55 on [-10, 10].
        let at_min = p.evaluate(&[0.55; 5]).objective;
        assert!(at_min.abs() < 1e-9);
        assert!(p.evaluate(&[0.1; 5]).objective > 1.0);
    }

    #[test]
    fn gardner_constraint_splits_the_space() {
        let p = GardnerSine::new();
        // x1 = x2 = 3π/2 → sin·sin = 1... need sin(x1)sin(x2) < -0.95: pick
        // x1 = π/2 (sin=1), x2 = 3π/2 (sin=-1) → product -1 < -0.95: feasible.
        let feasible = p.evaluate(&[
            (std::f64::consts::FRAC_PI_2) / 6.0,
            (1.5 * std::f64::consts::PI) / 6.0,
        ]);
        assert!(feasible.is_feasible());
        let infeasible = p.evaluate(&[0.1, 0.1]);
        assert!(!infeasible.is_feasible());
    }

    #[test]
    fn weighted_sphere_minimum_sits_at_the_feasible_centre() {
        for dim in [1, 20, 50] {
            let p = WeightedSphere::new(dim);
            let at_min = p.evaluate(p.minimiser());
            assert_eq!(at_min.objective, p.optimum(), "dim {dim}");
            assert!(at_min.is_feasible(), "dim {dim}: centre must be feasible");
            assert!(p.minimiser().iter().all(|c| (0.2..0.8).contains(c)));
            // Everywhere else is strictly worse.
            assert!(p.evaluate(&vec![0.95; dim]).objective > 0.0);
        }
    }

    #[test]
    fn weighted_sphere_weights_decay_and_budget_constraint_bites() {
        let p = WeightedSphere::new(20);
        let mut lo = p.minimiser().to_vec();
        let mut hi = lo.clone();
        lo[0] = (lo[0] + 0.2).min(1.0);
        hi[19] = (hi[19] + 0.2).min(1.0);
        // The same displacement costs ~20× more along the first axis.
        assert!(p.evaluate(&lo).objective > 10.0 * p.evaluate(&hi).objective);
        // Saturating every coordinate violates the mean budget.
        assert!(!p.evaluate(&[1.0; 20]).is_feasible());
    }

    #[test]
    fn problems_clamp_out_of_range_inputs() {
        // Evaluating slightly outside the unit cube must not panic or return NaN.
        let p = ConstrainedBranin::new();
        let eval = p.evaluate(&[-0.1, 1.1]);
        assert!(eval.objective.is_finite());
        let h = Hartmann6::new();
        assert!(h.evaluate(&[1.2; 6]).objective.is_finite());
    }
}
