//! PVT corner sweeps as batched optimization problems.
//!
//! [`SweepProblem`] adapts a [`CornerSweep`] (a [`Testbench`] expanded over
//! K [`PvtCorner`]s — see `nnbo_circuits`) into a [`Problem`]: one
//! suggestion becomes K corner evaluations fanned out over the process-wide
//! [`nnbo_pool::WorkerPool`], aggregated back into a single constrained
//! evaluation.  The parallel fan-out is bit-identical to the sequential
//! corner loop by construction — every corner is measured independently and
//! deterministically, gathered in corner order, and aggregated by the same
//! code — and a failed corner flows into the loop's `FailurePolicy` as an
//! honest [`EvalOutcome::Failed`] naming the corner, never as a silent
//! `NaN`.

use std::sync::Arc;

use nnbo_circuits::{
    ChargePump, ChargePumpCornerMeasurement, CornerSweep, OpAmpPerformance, PvtCorner, Testbench,
    TwoStageOpAmp,
};

use super::{EvalOutcome, Evaluation, Problem};

/// How the per-corner [`Evaluation`]s of one sweep combine into the single
/// evaluation the optimizer observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAggregation {
    /// Worst case per component: the objective and each constraint take
    /// their maximum over the corners (pessimistic for minimisation and
    /// for `g_i < 0` feasibility).  A design is feasible iff it is
    /// feasible at *every* corner.
    WorstCase,
    /// Evaluate only the sweep's nominal corner — the sweep degenerates to
    /// the plain single-corner problem (and costs one evaluation).
    Nominal,
    /// Objective worst case, but the constraints of every corner are kept
    /// side by side (`num_constraints` becomes `K × base`), so the
    /// optimizer models each corner's constraint surface separately.
    PerCornerConstraints,
}

/// The boxed spec closure mapping one corner's measured output to that
/// corner's [`Evaluation`].
type SpecFn<O> = Arc<dyn Fn(&O) -> Evaluation + Send + Sync>;

/// A [`CornerSweep`] exposed as a constrained [`Problem`]: one suggestion →
/// K corner measurements → one aggregated evaluation.
///
/// The per-corner measurement is mapped to a per-corner [`Evaluation`] by
/// the problem's *spec* closure, and the per-corner evaluations combine
/// according to the [`SweepAggregation`].  Note that for the charge pump
/// the eq. 15–16 worst case folds each raw metric *before* forming the
/// FOM; that exact aggregation lives in
/// [`super::ChargePumpProblem`] — this adapter's [`SweepAggregation::WorstCase`]
/// instead maximises the per-corner objective, which is the generic
/// worst-case-over-scenarios formulation.
///
/// Corner fan-out runs on [`nnbo_pool::WorkerPool::global`] (the submitting
/// thread participates) unless [`SweepProblem::with_parallel`] disables it;
/// the sequential path is the bit-identity reference.
pub struct SweepProblem<T: Testbench> {
    sweep: CornerSweep<T>,
    spec: SpecFn<T::Output>,
    base_constraints: usize,
    name: String,
    aggregation: SweepAggregation,
    parallel: bool,
}

impl<T: Testbench> Clone for SweepProblem<T>
where
    CornerSweep<T>: Clone,
{
    fn clone(&self) -> Self {
        SweepProblem {
            sweep: self.sweep.clone(),
            spec: Arc::clone(&self.spec),
            base_constraints: self.base_constraints,
            name: self.name.clone(),
            aggregation: self.aggregation,
            parallel: self.parallel,
        }
    }
}

impl<T: Testbench> SweepProblem<T> {
    /// Wraps a corner sweep as a problem.
    ///
    /// `spec` maps one corner's measured output to that corner's
    /// [`Evaluation`]; it must return exactly `base_constraints` constraint
    /// values and be deterministic.
    pub fn new(
        sweep: CornerSweep<T>,
        name: impl Into<String>,
        base_constraints: usize,
        spec: impl Fn(&T::Output) -> Evaluation + Send + Sync + 'static,
    ) -> Self {
        SweepProblem {
            sweep,
            spec: Arc::new(spec),
            base_constraints,
            name: name.into(),
            aggregation: SweepAggregation::WorstCase,
            parallel: true,
        }
    }

    /// Replaces the aggregation (default: [`SweepAggregation::WorstCase`]).
    pub fn with_aggregation(mut self, aggregation: SweepAggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Enables or disables the worker-pool corner fan-out.  The sequential
    /// path (`false`) is the bit-identity reference the parallel path is
    /// pinned against.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// The underlying corner sweep.
    pub fn sweep(&self) -> &CornerSweep<T> {
        &self.sweep
    }

    /// The configured aggregation.
    pub fn aggregation(&self) -> SweepAggregation {
        self.aggregation
    }

    /// The corner indices one evaluation actually measures: just the
    /// nominal corner under [`SweepAggregation::Nominal`], every corner
    /// otherwise.
    fn corner_indices(&self) -> Vec<usize> {
        match self.aggregation {
            SweepAggregation::Nominal => vec![self.sweep.nominal_index()],
            _ => (0..self.sweep.corners().len()).collect(),
        }
    }

    /// Applies the spec to one corner's output, asserting its shape.
    fn corner_evaluation(&self, output: &T::Output) -> Evaluation {
        let eval = (self.spec)(output);
        assert_eq!(
            eval.constraints.len(),
            self.base_constraints,
            "sweep spec returned the wrong constraint count"
        );
        eval
    }

    /// Combines per-corner evaluations (in corner order) into the single
    /// evaluation the optimizer observes, according to the configured
    /// aggregation.
    ///
    /// Public so the aggregation laws are testable in isolation: the
    /// worst-case objective is monotone in every corner's objective, and
    /// aggregating a single corner is the identity.
    ///
    /// # Panics
    ///
    /// Panics if `per_corner` is empty or the constraint counts disagree.
    pub fn aggregate(&self, per_corner: &[Evaluation]) -> Evaluation {
        assert!(!per_corner.is_empty(), "no corner evaluations to aggregate");
        match self.aggregation {
            SweepAggregation::Nominal => per_corner[0].clone(),
            SweepAggregation::WorstCase => {
                let mut worst = per_corner[0].clone();
                for eval in &per_corner[1..] {
                    assert_eq!(worst.constraints.len(), eval.constraints.len());
                    worst.objective = worst.objective.max(eval.objective);
                    for (g, other) in worst.constraints.iter_mut().zip(&eval.constraints) {
                        *g = g.max(*other);
                    }
                }
                worst
            }
            SweepAggregation::PerCornerConstraints => {
                let objective = per_corner[1..]
                    .iter()
                    .fold(per_corner[0].objective, |worst, e| worst.max(e.objective));
                let constraints = per_corner
                    .iter()
                    .flat_map(|e| e.constraints.iter().copied())
                    .collect();
                Evaluation::new(objective, constraints)
            }
        }
    }

    /// Measures the requested corners of one *physical* design point, in
    /// slot order matching `corner_indices`.  Sequential reference path.
    fn measure_sequential(
        &self,
        x_phys: &[f64],
        corner_indices: &[usize],
    ) -> Vec<Result<T::Output, String>> {
        corner_indices
            .iter()
            .map(|&k| self.sweep.run_corner(x_phys, k))
            .collect()
    }

    /// Turns the ordered per-corner results of one suggestion into its
    /// outcome: the first failing corner fails the whole evaluation (in
    /// corner order, so parallel and sequential paths report the same
    /// corner), otherwise the spec + aggregation produce the evaluation.
    fn outcome_from_results(&self, results: Vec<Result<T::Output, String>>) -> EvalOutcome {
        let mut outputs = Vec::with_capacity(results.len());
        for result in results {
            match result {
                Ok(output) => outputs.push(output),
                Err(reason) => {
                    return EvalOutcome::Failed(format!("{} sweep failed: {reason}", self.name))
                }
            }
        }
        let per_corner: Vec<Evaluation> =
            outputs.iter().map(|o| self.corner_evaluation(o)).collect();
        EvalOutcome::Ok(self.aggregate(&per_corner))
    }
}

impl SweepProblem<TwoStageOpAmp> {
    /// The Table-I op-amp specification (`UGF > 40 MHz`, `PM > 60°`,
    /// maximise gain) enforced over a PVT corner sweep with worst-case
    /// aggregation.  With `corners == [PvtCorner::nominal()]` this is
    /// exactly [`super::OpAmpProblem`]'s honest evaluation.
    pub fn opamp(corners: Vec<PvtCorner>) -> Self {
        let sweep = CornerSweep::new(TwoStageOpAmp::new(), corners);
        SweepProblem::new(sweep, "two-stage-opamp-pvt", 2, |p: &OpAmpPerformance| {
            Evaluation::new(-p.gain_db, vec![(40e6 - p.ugf_hz) / 1e6, 60.0 - p.pm_deg])
        })
    }
}

impl SweepProblem<ChargePump> {
    /// The Table-II charge-pump limits (`diff1,2 < 20 µA`, `diff3,4 < 5 µA`,
    /// `deviation < 5 µA`) enforced per corner, with the per-corner FOM
    /// `0.3·Σdiff + 0.5·deviation` as the objective.
    ///
    /// Note the difference from [`super::ChargePumpProblem`]: eq. 16 folds
    /// each raw metric over the corners *before* forming the FOM, while
    /// this generic sweep aggregates the per-corner objectives — use the
    /// dedicated problem when the paper's exact FOM is required.
    pub fn charge_pump(corners: Vec<PvtCorner>) -> Self {
        let sweep = CornerSweep::new(ChargePump::new(), corners);
        SweepProblem::new(
            sweep,
            "charge-pump-pvt",
            5,
            |m: &ChargePumpCornerMeasurement| {
                let to_ua = 1e6;
                let diff1 = m.diff1 * to_ua;
                let diff2 = m.diff2 * to_ua;
                let diff3 = m.diff3 * to_ua;
                let diff4 = m.diff4 * to_ua;
                let deviation = (m.dev_up + m.dev_down) * to_ua;
                let fom = 0.3 * (diff1 + diff2 + diff3 + diff4) + 0.5 * deviation;
                Evaluation::new(
                    fom,
                    vec![
                        diff1 - 20.0,
                        diff2 - 20.0,
                        diff3 - 5.0,
                        diff4 - 5.0,
                        deviation - 5.0,
                    ],
                )
            },
        )
    }
}

impl<T: Testbench> Problem for SweepProblem<T> {
    fn dim(&self) -> usize {
        self.sweep.bench().dim()
    }

    fn num_constraints(&self) -> usize {
        match self.aggregation {
            SweepAggregation::PerCornerConstraints => {
                self.base_constraints * self.sweep.corners().len()
            }
            _ => self.base_constraints,
        }
    }

    /// Infallible projection: a failed sweep becomes a neutral infeasible
    /// evaluation (`objective 0`, every constraint violated) rather than a
    /// panic or a `NaN`.  Use [`Problem::try_evaluate`] to observe the
    /// failure and its corner honestly.
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        match self.try_evaluate(x) {
            EvalOutcome::Ok(eval) => eval,
            _ => Evaluation::new(0.0, vec![1.0; self.num_constraints()]),
        }
    }

    fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
        let outcomes = self.try_evaluate_batch(&[x]);
        outcomes.into_iter().next().expect("one outcome per input")
    }

    /// Evaluates a batch of suggestions as `suggestions × corners`
    /// independent measurements in **one** worker-pool batch, gathered
    /// back in input-then-corner order — bit-identical to the sequential
    /// double loop.
    fn try_evaluate_batch(&self, xs: &[&[f64]]) -> Vec<EvalOutcome> {
        let corner_indices = self.corner_indices();
        let per_point = corner_indices.len();
        let points: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| self.sweep.bench().denormalize(x))
            .collect();

        let mut slots: Vec<Option<Result<T::Output, String>>> = Vec::new();
        if self.parallel && points.len() * per_point > 1 {
            slots.resize_with(points.len() * per_point, || None);
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
                Vec::with_capacity(points.len() * per_point);
            for (slot, job) in slots.iter_mut().zip(
                points
                    .iter()
                    .flat_map(|p| corner_indices.iter().map(move |&k| (p, k))),
            ) {
                let (point, k) = job;
                let sweep = &self.sweep;
                tasks.push(Box::new(move || {
                    *slot = Some(sweep.run_corner(point, k));
                }));
            }
            nnbo_pool::WorkerPool::global().run_batch(tasks);
        } else {
            for point in &points {
                slots.extend(
                    self.measure_sequential(point, &corner_indices)
                        .into_iter()
                        .map(Some),
                );
            }
        }

        let mut outcomes = Vec::with_capacity(points.len());
        let mut slots = slots.into_iter();
        for _ in 0..points.len() {
            let results: Vec<Result<T::Output, String>> = slots
                .by_ref()
                .take(per_point)
                .map(|slot| slot.expect("every corner task ran"))
                .collect();
            outcomes.push(self.outcome_from_results(results));
        }
        outcomes
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnbo_circuits::CornerContext;

    fn opamp_18() -> SweepProblem<TwoStageOpAmp> {
        SweepProblem::opamp(PvtCorner::standard_18())
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_the_sequential_reference() {
        let parallel = opamp_18();
        let sequential = opamp_18().with_parallel(false);
        for x in [vec![0.3; 10], vec![0.5; 10], vec![0.7; 10]] {
            assert_eq!(parallel.try_evaluate(&x), sequential.try_evaluate(&x));
        }
    }

    #[test]
    fn batch_evaluation_matches_the_default_sequential_loop() {
        let problem = opamp_18();
        let a = vec![0.35; 10];
        let b = vec![0.55; 10];
        let c = vec![0.75; 10];
        let batch = problem.try_evaluate_batch(&[&a, &b, &c]);
        let single: Vec<EvalOutcome> = [&a, &b, &c]
            .iter()
            .map(|x| problem.try_evaluate(x))
            .collect();
        assert_eq!(batch, single);
        // And both agree with the trait's default sequential-loop semantics.
        let sequential = opamp_18().with_parallel(false);
        let reference: Vec<EvalOutcome> = [&a, &b, &c]
            .iter()
            .map(|x| sequential.try_evaluate(x))
            .collect();
        assert_eq!(batch, reference);
    }

    #[test]
    fn charge_pump_sweep_is_bit_identical_too() {
        let parallel = SweepProblem::charge_pump(PvtCorner::standard_18());
        let sequential = SweepProblem::charge_pump(PvtCorner::standard_18()).with_parallel(false);
        let x = vec![0.5; 36];
        let p = parallel.try_evaluate(&x);
        assert_eq!(p, sequential.try_evaluate(&x));
        assert!(p.is_ok());
    }

    #[test]
    fn nominal_aggregation_of_the_nominal_corner_equals_the_plain_problem() {
        let sweep = SweepProblem::opamp(vec![PvtCorner::nominal()])
            .with_aggregation(SweepAggregation::Nominal);
        let plain = super::super::OpAmpProblem::new();
        for x in [vec![0.4; 10], vec![0.6; 10]] {
            assert_eq!(sweep.try_evaluate(&x), plain.try_evaluate(&x));
        }
    }

    #[test]
    fn per_corner_constraints_concatenate_in_corner_order() {
        let corners = vec![
            PvtCorner::nominal(),
            PvtCorner {
                process: nnbo_circuits::Process::SlowSlow,
                vdd: 0.99,
                temperature: 125.0,
            },
        ];
        let problem = SweepProblem::opamp(corners.clone())
            .with_aggregation(SweepAggregation::PerCornerConstraints);
        assert_eq!(problem.num_constraints(), 4);
        let x = vec![0.5; 10];
        let eval = match problem.try_evaluate(&x) {
            EvalOutcome::Ok(e) => e,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(eval.constraints.len(), 4);
        // Each corner's pair appears verbatim at its offset.
        let phys = problem.sweep().bench().denormalize(&x);
        for (k, _corner) in corners.iter().enumerate() {
            let out = problem.sweep().run_corner(&phys, k).unwrap();
            let per = problem.corner_evaluation(&out);
            assert_eq!(
                &eval.constraints[2 * k..2 * k + 2],
                per.constraints.as_slice()
            );
        }
    }

    #[test]
    fn a_failed_corner_fails_the_evaluation_naming_the_corner() {
        let sweep = CornerSweep::new(TwoStageOpAmp::stressed(), PvtCorner::standard_18());
        let problem = SweepProblem::new(sweep, "stressed-opamp-pvt", 0, |_: &OpAmpPerformance| {
            Evaluation::unconstrained(0.0)
        });
        match problem.try_evaluate(&[0.5; 10]) {
            EvalOutcome::Failed(reason) => {
                assert!(
                    reason.contains("stressed-opamp-pvt sweep failed"),
                    "{reason}"
                );
                assert!(reason.contains("corner SS/0.99V/-40C (1/18)"), "{reason}");
            }
            other => panic!("expected a failure, got {other:?}"),
        }
        // The infallible projection is a neutral infeasible point.
        let projected = problem.evaluate(&[0.5; 10]);
        assert_eq!(projected, Evaluation::new(0.0, vec![]));
    }

    #[test]
    fn corner_context_index_flows_through_the_sweep() {
        // The charge pump's mismatch sign is seeded by the corner index, so
        // sweeping corner k must match a direct context-k measurement.
        let problem = SweepProblem::charge_pump(PvtCorner::standard_18());
        let phys = problem.sweep().bench().denormalize(&[0.5; 36]);
        for (k, corner) in problem.sweep().corners().iter().enumerate() {
            let direct = problem
                .sweep()
                .bench()
                .measure(&phys, &CornerContext::new(*corner, k))
                .unwrap();
            assert_eq!(problem.sweep().run_corner(&phys, k).unwrap(), direct);
        }
    }
}
