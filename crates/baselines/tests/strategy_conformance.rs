//! Cross-strategy conformance harness: every acquisition-maximization
//! strategy this crate ships — WEIBO's full-pool search, GASPAD's
//! surrogate-screened evolution, and LinEasyBO's line-subspace search — must
//! honour the same contract, whatever it does internally:
//!
//! * seeded runs are bit-identical, under **both** kernel dispatch paths
//!   (vectorised and `NNBO_PORTABLE_KERNELS=1` portable);
//! * every suggested point lies inside the unit cube and every recorded
//!   value is finite;
//! * an imputed stand-in for a failed evaluation is never reported as the
//!   optimum;
//! * a snapshot taken mid-run resumes bit-identically, through a JSON
//!   round trip, with the strategy's own snapshot format.
//!
//! The harness is what pins "adding a strategy" to "adding a strategy that
//! behaves": a new variant only has to be added to [`STRATEGIES`] and the
//! whole contract applies to it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use nnbo_baselines::{Gaspad, GaspadConfig, GaspadSnapshot, GpSurrogateTrainer};
use nnbo_core::problems::ConstrainedBranin;
use nnbo_core::{
    BayesOpt, BoConfig, BoSnapshot, EvalOutcome, Evaluation, FailureAction, FailurePolicy,
    OptimizationResult, Problem, SuggestStrategy,
};

/// Serialises the tests that flip the process-wide kernel dispatch override.
static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

/// Restores the vectorised dispatch default even when a test panics.
struct DispatchGuard;

impl Drop for DispatchGuard {
    fn drop(&mut self) {
        nnbo_linalg::force_portable_kernels(false);
    }
}

/// Every strategy under the conformance contract.
const STRATEGIES: [&str; 3] = ["weibo", "lineasybo", "gaspad"];

const INITIAL: usize = 6;
const BUDGET: usize = 14;

fn bo_config(seed: u64) -> BoConfig {
    BoConfig::fast(INITIAL, BUDGET).with_seed(seed)
}

fn weibo_fast(config: BoConfig) -> BayesOpt<GpSurrogateTrainer> {
    BayesOpt::with_trainer(config, GpSurrogateTrainer::fast())
}

fn lineasybo_fast(config: BoConfig) -> BayesOpt<GpSurrogateTrainer> {
    BayesOpt::with_trainer(
        config.with_strategy(SuggestStrategy::line_subspace()),
        GpSurrogateTrainer::fast(),
    )
}

fn gaspad_fast(seed: u64) -> Gaspad {
    Gaspad::with_trainer(
        GaspadConfig::new(INITIAL, BUDGET).with_seed(seed),
        GpSurrogateTrainer::fast(),
    )
}

/// Runs the named strategy on the shared benchmark under the shared budget.
fn run_strategy(name: &str, seed: u64) -> OptimizationResult {
    let problem = ConstrainedBranin::new();
    match name {
        "weibo" => weibo_fast(bo_config(seed)).run(&problem).unwrap(),
        "lineasybo" => lineasybo_fast(bo_config(seed)).run(&problem).unwrap(),
        "gaspad" => gaspad_fast(seed).run(&problem),
        other => panic!("unknown strategy {other}"),
    }
}

#[test]
fn every_strategy_is_seeded_deterministic_under_both_dispatch_paths() {
    let _lock = DISPATCH_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let _guard = DispatchGuard;
    for forced in [false, true] {
        nnbo_linalg::force_portable_kernels(forced);
        if forced {
            assert_eq!(nnbo_linalg::kernel_isa(), "portable");
        }
        for name in STRATEGIES {
            let a = run_strategy(name, 17);
            let b = run_strategy(name, 17);
            assert_eq!(
                a.evaluations(),
                b.evaluations(),
                "{name} (portable={forced}): same seed must give the same run"
            );
            assert_eq!(a.recovery(), b.recovery(), "{name} (portable={forced})");
        }
    }
}

#[test]
fn every_strategy_stays_inside_the_unit_cube_with_finite_values() {
    for name in STRATEGIES {
        let result = run_strategy(name, 3);
        assert_eq!(result.num_evaluations(), BUDGET, "{name}: budget honoured");
        for (i, (x, e)) in result.evaluations().iter().enumerate() {
            assert!(
                x.iter().all(|v| (0.0..=1.0).contains(v)),
                "{name}: point {i} escaped the cube: {x:?}"
            );
            assert!(
                e.objective.is_finite() && e.constraints.iter().all(|g| g.is_finite()),
                "{name}: non-finite evaluation {i}"
            );
        }
    }
}

/// The strategy seam changes only the model-guided phase: WEIBO and LinEasyBO
/// share the seeded initial design exactly, then genuinely search differently.
#[test]
fn the_strategy_seam_only_changes_the_model_guided_phase() {
    let problem = ConstrainedBranin::new();
    let full = weibo_fast(bo_config(29)).run(&problem).unwrap();
    let line = lineasybo_fast(bo_config(29)).run(&problem).unwrap();
    assert_eq!(
        full.evaluations()[..INITIAL],
        line.evaluations()[..INITIAL],
        "the initial design must be strategy-independent"
    );
    assert_ne!(
        full.evaluations()[INITIAL..],
        line.evaluations()[INITIAL..],
        "full-pool and line-subspace search must actually propose differently"
    );
}

/// Fails every `try_evaluate` call whose 0-based index lies in `fail` —
/// enough consecutive indices exhaust the retry budget and force imputation.
struct FailAt {
    inner: ConstrainedBranin,
    fail: std::ops::Range<usize>,
    calls: AtomicUsize,
}

impl FailAt {
    fn new(fail: std::ops::Range<usize>) -> Self {
        FailAt {
            inner: ConstrainedBranin::new(),
            fail,
            calls: AtomicUsize::new(0),
        }
    }
}

impl Problem for FailAt {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        self.inner.evaluate(x)
    }
    fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
        let i = self.calls.fetch_add(1, Ordering::SeqCst);
        if self.fail.contains(&i) {
            EvalOutcome::Failed(format!("conformance: scripted failure at call {i}"))
        } else {
            self.inner.try_evaluate(x)
        }
    }
}

#[test]
fn imputed_points_are_never_reported_as_the_optimum() {
    // Default policy retries twice, so three consecutive failing calls
    // exhaust one guided point's budget and (under ImputeWorst) impute it.
    let policy = FailurePolicy {
        on_exhausted: FailureAction::ImputeWorst,
        ..FailurePolicy::default()
    };
    let drivers: [(&str, BayesOpt<GpSurrogateTrainer>); 2] = [
        (
            "weibo",
            weibo_fast(bo_config(41).with_failure_policy(policy)),
        ),
        (
            "lineasybo",
            lineasybo_fast(bo_config(41).with_failure_policy(policy)),
        ),
    ];
    for (name, driver) in drivers {
        let problem = FailAt::new(7..10);
        let result = driver.run(&problem).unwrap();
        let rec = result.recovery();
        assert!(
            !rec.imputed.is_empty(),
            "{name}: the scripted burst must force an imputation, got {rec:?}"
        );
        let best = result
            .best_index()
            .unwrap_or_else(|| panic!("{name}: a feasible point exists"));
        assert!(
            !rec.imputed.contains(&best),
            "{name}: imputed stand-in {best} reported as optimum"
        );
    }

    // GASPAD evaluates through the infallible path and never imputes: its
    // result must always carry a clean recovery log.
    let gaspad = run_strategy("gaspad", 41);
    assert!(gaspad.recovery().is_clean(), "gaspad never imputes");
}

/// Mid-run snapshot → JSON → resume must continue bit-identically to the
/// uninterrupted run, for every strategy, using its own snapshot format.
#[test]
fn mid_run_snapshots_resume_bit_identically_for_every_strategy() {
    let problem = ConstrainedBranin::new();

    // WEIBO and LinEasyBO share the BoSnapshot path.
    type BoCtor = fn(BoConfig) -> BayesOpt<GpSurrogateTrainer>;
    let bo_drivers: [(&str, BoCtor); 2] = [("weibo", weibo_fast), ("lineasybo", lineasybo_fast)];
    for (name, make) in bo_drivers {
        let bo = make(bo_config(53));
        let mut state = bo.start(&problem).unwrap();
        for _ in 0..3 {
            assert!(bo.step(&problem, &mut state).unwrap(), "{name}");
        }
        let snap = BoSnapshot::from_json(&bo.snapshot(&state).to_json()).unwrap();
        while bo.step(&problem, &mut state).unwrap() {}
        let direct = bo.finish(state);

        let bo2 = make(bo_config(53));
        let mut resumed = bo2.resume(&snap).unwrap();
        while bo2.step(&problem, &mut resumed).unwrap() {}
        let from_snapshot = bo2.finish(resumed);

        assert_eq!(direct.evaluations(), from_snapshot.evaluations(), "{name}");
        assert_eq!(direct.recovery(), from_snapshot.recovery(), "{name}");
        assert_eq!(
            direct.suggest_cost().calls,
            from_snapshot.suggest_cost().calls
        );
    }

    // GASPAD resumes through its own GaspadSnapshot.
    let gaspad = gaspad_fast(53);
    let mut state = gaspad.start(&problem);
    for _ in 0..2 {
        assert!(gaspad.step(&problem, &mut state));
    }
    let snap = GaspadSnapshot::from_json(&gaspad.snapshot(&state).to_json()).unwrap();
    while gaspad.step(&problem, &mut state) {}
    let direct = gaspad.finish(state);

    let gaspad2 = gaspad_fast(53);
    let mut resumed = gaspad2.resume(&snap).unwrap();
    while gaspad2.step(&problem, &mut resumed) {}
    let from_snapshot = gaspad2.finish(resumed);
    assert_eq!(direct.evaluations(), from_snapshot.evaluations(), "gaspad");
}
