//! Chaos coverage for LinEasyBO: the line-subspace strategy rides the exact
//! resilience machinery WEIBO does, so under identical scripted faults it
//! must recover identically — same failure accounting, same imputation
//! discipline, same quarantine/park behaviour when the session store's disks
//! die under a serving fleet.
//!
//! The fault plans are positional (0-based call indices), so the two
//! strategies hit the very same tape positions: both evaluate exactly one
//! proposal per model-guided iteration, whatever that proposal cost to find.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nnbo_baselines::GpSurrogateTrainer;
use nnbo_core::problems::ConstrainedBranin;
use nnbo_core::{
    BayesOpt, BoConfig, EvalOutcome, Evaluation, FailureAction, FailurePolicy, OptimizationResult,
    Problem, SuggestStrategy,
};

/// A deterministic script of evaluation faults to inject into one run.
#[derive(Debug, Clone, Default)]
struct ChaosPlan {
    /// 0-based `try_evaluate` call indices that fail (retries consume indices).
    fail_evals: Vec<usize>,
    /// 0-based `try_evaluate` call indices that time out.
    timeout_evals: Vec<usize>,
}

impl ChaosPlan {
    fn is_empty(&self) -> bool {
        self.fail_evals.is_empty() && self.timeout_evals.is_empty()
    }
}

/// Replays a [`ChaosPlan`] over a wrapped problem (caller-owned counter, so
/// a snapshot can record the exact tape position).
struct FaultyProblem<'a> {
    inner: ConstrainedBranin,
    plan: &'a ChaosPlan,
    calls: &'a AtomicUsize,
}

impl Problem for FaultyProblem<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn num_constraints(&self) -> usize {
        self.inner.num_constraints()
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        self.inner.evaluate(x)
    }
    fn try_evaluate(&self, x: &[f64]) -> EvalOutcome {
        let i = self.calls.fetch_add(1, Ordering::SeqCst);
        if self.plan.fail_evals.contains(&i) {
            EvalOutcome::Failed(format!("chaos: scripted failure at call {i}"))
        } else if self.plan.timeout_evals.contains(&i) {
            EvalOutcome::Timeout
        } else {
            self.inner.try_evaluate(x)
        }
    }
}

const INITIAL: usize = 6;
const BUDGET: usize = 16;

fn chaos_config(seed: u64, action: FailureAction) -> BoConfig {
    BoConfig::fast(INITIAL, BUDGET)
        .with_seed(seed)
        .with_failure_policy(FailurePolicy {
            on_exhausted: action,
            ..FailurePolicy::default()
        })
}

fn weibo_driver(config: BoConfig) -> BayesOpt<GpSurrogateTrainer> {
    BayesOpt::with_trainer(config, GpSurrogateTrainer::fast())
}

fn lineasybo_driver(config: BoConfig) -> BayesOpt<GpSurrogateTrainer> {
    BayesOpt::with_trainer(
        config.with_strategy(SuggestStrategy::line_subspace()),
        GpSurrogateTrainer::fast(),
    )
}

fn run_under_plan(driver: BayesOpt<GpSurrogateTrainer>, plan: &ChaosPlan) -> OptimizationResult {
    let calls = AtomicUsize::new(0);
    let problem = FaultyProblem {
        inner: ConstrainedBranin::new(),
        plan,
        calls: &calls,
    };
    driver
        .run(&problem)
        .expect("a chaos run never aborts on recoverable faults")
}

/// The scripted fault plans the suite sweeps, from mild to hostile.
fn plans() -> Vec<ChaosPlan> {
    vec![
        ChaosPlan::default(),
        // One isolated failure in the initial design.
        ChaosPlan {
            fail_evals: vec![2],
            ..ChaosPlan::default()
        },
        // A burst long enough to exhaust retries mid-run, plus a timeout.
        ChaosPlan {
            fail_evals: (8..14).collect(),
            timeout_evals: vec![17],
        },
    ]
}

#[test]
fn lineasybo_chaos_runs_complete_their_budget_with_finite_values() {
    for (pi, plan) in plans().iter().enumerate() {
        for (si, action) in [
            FailureAction::MarkInfeasible,
            FailureAction::ImputeWorst,
            FailureAction::Penalize { margin: 0.5 },
        ]
        .into_iter()
        .enumerate()
        {
            let result = run_under_plan(
                lineasybo_driver(chaos_config(100 + si as u64, action)),
                plan,
            );
            let ctx = format!("plan {pi}, action {action:?}");

            assert_eq!(result.num_evaluations(), BUDGET, "{ctx}");
            for (i, (x, e)) in result.evaluations().iter().enumerate() {
                assert!(
                    e.objective.is_finite() && e.constraints.iter().all(|g| g.is_finite()),
                    "{ctx}: non-finite evaluation {i}"
                );
                assert!(
                    x.iter().all(|v| (0.0..=1.0).contains(v)),
                    "{ctx}: point {i} outside the unit cube"
                );
            }

            let rec = result.recovery();
            assert_eq!(
                rec.eval_failures + rec.eval_timeouts == 0,
                plan.is_empty(),
                "{ctx}: {rec:?}"
            );
            assert!(
                rec.eval_failures + rec.eval_timeouts >= rec.imputed.len(),
                "{ctx}: {rec:?}"
            );
            if let Some(best) = result.best_index() {
                assert!(!rec.imputed.contains(&best), "{ctx}: imputed best");
            }
        }
    }
}

/// The WEIBO reference invariant: the fault plans are positional and both
/// strategies evaluate one proposal per iteration, so the entire eval-side
/// recovery account — failures, timeouts, retries, *which history indices
/// were imputed* — must be exactly equal between the two.
#[test]
fn lineasybo_recovers_exactly_like_weibo_under_the_same_fault_plan() {
    for plan in plans().iter().filter(|p| !p.is_empty()) {
        let weibo = run_under_plan(
            weibo_driver(chaos_config(11, FailureAction::ImputeWorst)),
            plan,
        );
        let lineasybo = run_under_plan(
            lineasybo_driver(chaos_config(11, FailureAction::ImputeWorst)),
            plan,
        );
        let (w, l) = (weibo.recovery(), lineasybo.recovery());
        assert_eq!(w.eval_failures, l.eval_failures, "plan {plan:?}");
        assert_eq!(w.eval_timeouts, l.eval_timeouts, "plan {plan:?}");
        assert_eq!(w.eval_retries, l.eval_retries, "plan {plan:?}");
        assert_eq!(w.imputed, l.imputed, "plan {plan:?}");
    }
}

#[test]
fn lineasybo_chaos_runs_are_reproducible_for_a_fixed_seed() {
    let plan = ChaosPlan {
        fail_evals: (7..11).collect(),
        timeout_evals: vec![13],
    };
    let run = || {
        run_under_plan(
            lineasybo_driver(chaos_config(11, FailureAction::Penalize { margin: 1.0 })),
            &plan,
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.evaluations(), b.evaluations());
    assert_eq!(a.recovery(), b.recovery());
}

/// Finds `want` session ids that the sharded store routes to `shard`.
fn ids_on_shard(
    store: &nnbo_serve::ShardedStore,
    shard: &str,
    want: usize,
    tag: &str,
) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0.. {
        let id = format!("{tag}-{i}");
        if store.shard_for(&id) == shard {
            out.push(id);
            if out.len() == want {
                break;
            }
        }
    }
    out
}

/// A sharded-store outage under a fleet of LinEasyBO sessions: the session
/// whose persist hits the dead disk is quarantined (downing the shard), the
/// next session routed there parks, the healthy shard's sessions complete
/// bit-identically to the sequential loop, and admission to the Down shard
/// is rejected with the typed error — exactly the WEIBO/MeanTrainer
/// reference behaviour of the serve chaos suite.
#[test]
fn a_dead_shard_parks_lineasybo_sessions_while_the_healthy_shard_completes() {
    use nnbo_serve::{
        BoService, FaultIo, FaultKind, FaultPlan as IoFaultPlan, RetryPolicy, ServeConfig,
        ServeError, SessionStatus, ShardConfig, ShardedStore, StdIo,
    };

    let root =
        std::env::temp_dir().join(format!("nnbo-lineasybo-shard-down-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cfg = ShardConfig::new(2)
        .with_retry(RetryPolicy::no_backoff(1))
        .with_down_after(1);
    // shard-00's disk dies on its very first write and never comes back.
    let store = ShardedStore::open_with(&root, cfg, |name| {
        if name == "shard-00" {
            Arc::new(FaultIo::new(IoFaultPlan::one(0, FaultKind::TornWrite)))
        } else {
            Arc::new(StdIo)
        }
    })
    .unwrap();
    let bad = ids_on_shard(&store, "shard-00", 2, "bad");
    let good = ids_on_shard(&store, "shard-01", 2, "good");

    let driver = || lineasybo_driver(BoConfig::fast(4, 10).with_seed(21));
    let reference = driver()
        .run(&ConstrainedBranin::new())
        .unwrap()
        .evaluations()
        .to_vec();

    let service: BoService<GpSurrogateTrainer, ShardedStore> = BoService::new(
        store,
        ServeConfig {
            workers: Some(1),
            ..ServeConfig::default()
        },
    );
    // One worker, and a healthy-shard session enqueued first: the worker is
    // busy with good[0]'s GP fits while the remaining submits land, so every
    // admission happens before the dead disk is ever touched.  Job order is
    // then deterministic: bad[0] hits the dead disk first (quarantined,
    // shard goes Down), bad[1]'s persist sees the Down shard and parks.
    for id in [&good[0], &bad[0], &bad[1], &good[1]] {
        service
            .submit(id, driver(), Arc::new(ConstrainedBranin::new()))
            .unwrap();
    }
    service.drain();

    assert_eq!(service.status(&bad[0]).unwrap(), SessionStatus::Quarantined);
    assert_eq!(service.status(&bad[1]).unwrap(), SessionStatus::Parked);
    for id in &good {
        assert_eq!(
            service.status(id).unwrap(),
            SessionStatus::Completed,
            "{id}: the healthy shard must keep serving through the outage"
        );
        assert_eq!(
            service.history(id).unwrap(),
            reference,
            "{id}: a served LinEasyBO session must match the sequential loop"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.sessions_completed, 2);
    assert_eq!(
        stats.persist_failures, 1,
        "only the downing failure touches disk"
    );
    assert_eq!(stats.shard_parks, 1);

    // Admission also respects shard health: a *new* LinEasyBO session routed
    // to the Down shard is rejected up-front with the typed error.
    let extra = ids_on_shard(service.store(), "shard-00", 1, "extra");
    match service.submit(&extra[0], driver(), Arc::new(ConstrainedBranin::new())) {
        Err(ServeError::ShardUnavailable { shard, session }) => {
            assert_eq!(shard, "shard-00");
            assert_eq!(session, extra[0]);
        }
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
    assert_eq!(service.stats().shard_rejections, 1);
    let _ = std::fs::remove_dir_all(&root);
}
