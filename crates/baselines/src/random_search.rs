//! Uniform random search — the sanity-check baseline.

use nnbo_core::{Evaluation, OptimizationResult, Problem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Uniform random search over the unit hypercube.
///
/// Not part of the paper's tables, but a useful control: any surrogate-based method
/// that does not clearly beat random search on the circuit problems would indicate a
/// broken implementation.
///
/// # Example
///
/// ```
/// use nnbo_baselines::RandomSearch;
/// use nnbo_core::problems::ConstrainedBranin;
///
/// let result = RandomSearch::new(50, 7).run(&ConstrainedBranin::new());
/// assert_eq!(result.num_evaluations(), 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomSearch {
    /// Number of evaluations.
    pub max_evaluations: usize,
    /// Random seed.
    pub seed: u64,
}

impl RandomSearch {
    /// Creates a random-search run with the given budget and seed.
    pub fn new(max_evaluations: usize, seed: u64) -> Self {
        RandomSearch {
            max_evaluations,
            seed,
        }
    }

    /// Runs the search.
    pub fn run(&self, problem: &dyn Problem) -> OptimizationResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dim = problem.dim();
        let history: Vec<(Vec<f64>, Evaluation)> = (0..self.max_evaluations)
            .map(|_| {
                let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
                let eval = problem.evaluate(&x);
                (x, eval)
            })
            .collect();
        OptimizationResult::from_history(history, self.max_evaluations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnbo_core::problems::{Ackley, ConstrainedBranin};

    #[test]
    fn evaluates_exactly_the_budget() {
        let result = RandomSearch::new(25, 1).run(&ConstrainedBranin::new());
        assert_eq!(result.num_evaluations(), 25);
    }

    #[test]
    fn eventually_finds_reasonable_points() {
        let result = RandomSearch::new(400, 2).run(&Ackley::new(2));
        assert!(result.best_objective().unwrap() < 5.0);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = RandomSearch::new(10, 3).run(&ConstrainedBranin::new());
        let b = RandomSearch::new(10, 3).run(&ConstrainedBranin::new());
        assert_eq!(
            a.evaluations()[5].1.objective,
            b.evaluations()[5].1.objective
        );
    }
}
