//! Differential evolution with feasibility-rule constraint handling.

use nnbo_core::{Evaluation, OptimizationResult, Problem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the [`DifferentialEvolution`] baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeConfig {
    /// Population size.
    pub population: usize,
    /// Total evaluation budget (including the initial population).
    pub max_evaluations: usize,
    /// Differential weight `F`.
    pub differential_weight: f64,
    /// Crossover probability `CR`.
    pub crossover_probability: f64,
    /// Random seed.
    pub seed: u64,
}

impl DeConfig {
    /// Creates a configuration with the standard DE/rand/1/bin settings
    /// (`F = 0.8`, `CR = 0.9`).
    pub fn new(population: usize, max_evaluations: usize) -> Self {
        DeConfig {
            population,
            max_evaluations,
            differential_weight: 0.8,
            crossover_probability: 0.9,
            seed: 0,
        }
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The DE/rand/1/bin differential-evolution optimizer with Deb's feasibility rules
/// for constraint handling:
///
/// 1. a feasible solution beats an infeasible one,
/// 2. two feasible solutions are compared by objective,
/// 3. two infeasible solutions are compared by total constraint violation.
///
/// This is the "DE" column of the paper's tables — an evolutionary baseline that
/// needs roughly an order of magnitude more circuit simulations than the
/// surrogate-based methods to reach comparable (usually worse) designs.
///
/// # Example
///
/// ```
/// use nnbo_baselines::{DeConfig, DifferentialEvolution};
/// use nnbo_core::problems::ConstrainedBranin;
///
/// let de = DifferentialEvolution::new(DeConfig::new(12, 60).with_seed(3));
/// let result = de.run(&ConstrainedBranin::new());
/// assert_eq!(result.num_evaluations(), 60);
/// ```
#[derive(Debug, Clone)]
pub struct DifferentialEvolution {
    config: DeConfig,
}

impl DifferentialEvolution {
    /// Creates the optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the population is smaller than 4 (DE/rand/1 needs four distinct
    /// individuals) or the budget is smaller than the population.
    pub fn new(config: DeConfig) -> Self {
        assert!(
            config.population >= 4,
            "DE needs a population of at least 4"
        );
        assert!(
            config.max_evaluations >= config.population,
            "budget must cover the initial population"
        );
        DifferentialEvolution { config }
    }

    /// The configuration of this optimizer.
    pub fn config(&self) -> &DeConfig {
        &self.config
    }

    /// Runs the optimization.
    pub fn run(&self, problem: &dyn Problem) -> OptimizationResult {
        let dim = problem.dim();
        let np = self.config.population;
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let mut history: Vec<(Vec<f64>, Evaluation)> = Vec::new();
        let mut population: Vec<Vec<f64>> = Vec::with_capacity(np);
        let mut fitness: Vec<Evaluation> = Vec::with_capacity(np);
        for x in nnbo_core::latin_hypercube(np, dim, &mut rng) {
            let eval = problem.evaluate(&x);
            history.push((x.clone(), eval.clone()));
            population.push(x);
            fitness.push(eval);
        }

        let mut i = 0usize;
        while history.len() < self.config.max_evaluations {
            let trial = self.make_trial(&population, i, dim, &mut rng);
            let eval = problem.evaluate(&trial);
            history.push((trial.clone(), eval.clone()));
            if better(&eval, &fitness[i]) {
                population[i] = trial;
                fitness[i] = eval;
            }
            i = (i + 1) % np;
        }

        OptimizationResult::from_history(history, np)
    }

    /// Builds the DE/rand/1/bin trial vector for target index `target`.
    fn make_trial(
        &self,
        population: &[Vec<f64>],
        target: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let np = population.len();
        // Pick three distinct indices different from the target.
        let mut pick = || loop {
            let k = rng.gen_range(0..np);
            if k != target {
                return k;
            }
        };
        let (a, mut b, mut c) = (pick(), pick(), pick());
        while b == a {
            b = pick();
        }
        while c == a || c == b {
            c = pick();
        }
        let forced = rng.gen_range(0..dim);
        let mut trial = population[target].clone();
        for d in 0..dim {
            if d == forced || rng.gen_range(0.0..1.0) < self.config.crossover_probability {
                let v = population[a][d]
                    + self.config.differential_weight * (population[b][d] - population[c][d]);
                trial[d] = v.clamp(0.0, 1.0);
            }
        }
        trial
    }
}

/// Deb's feasibility rules: `a` is better than `b`.
fn better(a: &Evaluation, b: &Evaluation) -> bool {
    match (a.is_feasible(), b.is_feasible()) {
        (true, true) => a.objective < b.objective,
        (true, false) => true,
        (false, true) => false,
        (false, false) => a.violation() < b.violation(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnbo_core::problems::{Ackley, ConstrainedBranin};

    #[test]
    fn respects_the_budget_and_population() {
        let de = DifferentialEvolution::new(DeConfig::new(8, 40).with_seed(1));
        let result = de.run(&ConstrainedBranin::new());
        assert_eq!(result.num_evaluations(), 40);
        assert_eq!(result.initial_samples(), 8);
    }

    #[test]
    fn optimizes_an_unconstrained_multimodal_function() {
        let de = DifferentialEvolution::new(DeConfig::new(20, 600).with_seed(2));
        let result = de.run(&Ackley::new(3));
        let best = result.best_objective().unwrap();
        assert!(best < 1.0, "DE best on Ackley {best}");
    }

    #[test]
    fn finds_feasible_designs_on_the_constrained_branin() {
        let de = DifferentialEvolution::new(DeConfig::new(15, 300).with_seed(3));
        let result = de.run(&ConstrainedBranin::new());
        let best = result.best_objective().unwrap();
        assert!(best < 2.0, "DE best on constrained Branin {best}");
    }

    #[test]
    fn runs_are_reproducible() {
        let run = |seed| {
            DifferentialEvolution::new(DeConfig::new(6, 30).with_seed(seed))
                .run(&ConstrainedBranin::new())
                .evaluations()
                .iter()
                .map(|(_, e)| e.objective)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn feasibility_rules_prefer_feasible_points() {
        let feasible = Evaluation::new(10.0, vec![-1.0]);
        let infeasible_good = Evaluation::new(-100.0, vec![2.0]);
        assert!(better(&feasible, &infeasible_good));
        assert!(!better(&infeasible_good, &feasible));
        let less_violated = Evaluation::new(5.0, vec![0.5]);
        assert!(better(&less_violated, &infeasible_good));
    }

    #[test]
    #[should_panic(expected = "population of at least 4")]
    fn tiny_population_is_rejected() {
        let _ = DifferentialEvolution::new(DeConfig::new(3, 10));
    }
}
