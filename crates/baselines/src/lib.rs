//! Baseline optimizers that the paper compares against (Tables I and II),
//! plus the LinEasyBO subspace strategy for high-dimensional synthesis.
//!
//! * [`weibo`] / [`GpSurrogateTrainer`] — the WEIBO algorithm of Lyu et al.: the
//!   same constrained Bayesian-optimization loop as the paper's method, but with the
//!   classical ARD-SE Gaussian process (from [`nnbo_gp`]) as the surrogate.
//! * [`lineasybo`] — LinEasyBO (Zhang et al., arXiv 2109.00617): WEIBO's
//!   surrogate and acquisition, but the acquisition is maximized along a
//!   per-iteration one-dimensional subspace through the incumbent instead of
//!   over a full candidate pool.
//! * [`Gaspad`] — a GASPAD-style surrogate-assisted evolutionary optimizer: a
//!   differential-evolution population whose offspring are pre-screened by a GP
//!   surrogate, so only the most promising candidate per generation is simulated.
//! * [`DifferentialEvolution`] — plain DE/rand/1/bin with feasibility-rule
//!   constraint handling.
//! * [`RandomSearch`] — uniform random sampling, the sanity-check baseline.
//!
//! All baselines report a [`nnbo_core::OptimizationResult`] so that the reproduction
//! harness can aggregate every algorithm with the same statistics code.
//!
//! # Choosing a strategy: WEIBO vs GASPAD vs LinEasyBO
//!
//! The three surrogate-assisted baselines differ in *how the next simulation
//! is chosen*, and that choice sets their per-iteration cost model:
//!
//! | | proposal | scoring cost / iteration | fit cost / iteration |
//! |---|---|---|---|
//! | WEIBO | wEI argmax over a `candidate_pool + local_candidates` pool | `O(P · N)` GP predictions, `P` ≈ 10³ | warm multi-output GP refit |
//! | GASPAD | GP-prescreened DE offspring, Deb's-rules replacement | `O(pool · N)`, pool ≈ 40 | cold single-output GP fit |
//! | LinEasyBO | wEI argmax along a 1-D line through the incumbent | `O(L · N)`, `L` = `LineSubspaceConfig::points_per_iteration` (≈ 10², independent of `D`) | warm multi-output GP refit (same as WEIBO) |
//!
//! **Prefer WEIBO** at low dimension (`D ≲ 20`): the dense pool covers the
//! cube well, and the paper's Tables I/II show it is the strongest classical
//! baseline there.  **Prefer LinEasyBO** as the dimension grows: a uniform
//! pool's coverage collapses exponentially in `D` while the line search's
//! budget — and therefore its suggest cost ([`nnbo_core::SuggestCost`],
//! measured by `reproduce scaling`) — stays constant, and the
//! lengthscale-weighted directions ([`nnbo_core::DirectionRule`]) recover the
//! few active dimensions of a high-dimensional sizing task.  **Prefer
//! GASPAD** when evaluations are so cheap that surrogate fidelity matters
//! less than population diversity, or as the evolutionary reference point —
//! it trades the probabilistic constraint handling of the BO methods for
//! Deb's feasibility rules, which is why the paper finds it less
//! sample-efficient.
//!
//! All three are pinned by the same conformance harness
//! (`tests/strategy_conformance.rs`): seeded golden determinism under both
//! kernel dispatch paths, suggestions inside the unit cube, imputed points
//! never reported as the optimum, and bit-identical mid-run
//! snapshot/resume.

#![warn(missing_docs)]

mod de;
mod gaspad;
mod lineasybo;
mod random_search;
mod weibo;

pub use de::{DeConfig, DifferentialEvolution};
pub use gaspad::{Gaspad, GaspadConfig, GaspadSnapshot, GaspadState};
pub use lineasybo::{lineasybo, lineasybo_random_directions, lineasybo_with};
pub use random_search::RandomSearch;
pub use weibo::{weibo, GpSurrogate, GpSurrogateTrainer};
