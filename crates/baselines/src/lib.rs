//! Baseline optimizers that the paper compares against (Tables I and II).
//!
//! * [`weibo`] / [`GpSurrogateTrainer`] — the WEIBO algorithm of Lyu et al.: the
//!   same constrained Bayesian-optimization loop as the paper's method, but with the
//!   classical ARD-SE Gaussian process (from [`nnbo_gp`]) as the surrogate.
//! * [`Gaspad`] — a GASPAD-style surrogate-assisted evolutionary optimizer: a
//!   differential-evolution population whose offspring are pre-screened by a GP
//!   surrogate, so only the most promising candidate per generation is simulated.
//! * [`DifferentialEvolution`] — plain DE/rand/1/bin with feasibility-rule
//!   constraint handling.
//! * [`RandomSearch`] — uniform random sampling, the sanity-check baseline.
//!
//! All baselines report a [`nnbo_core::OptimizationResult`] so that the reproduction
//! harness can aggregate every algorithm with the same statistics code.

#![warn(missing_docs)]

mod de;
mod gaspad;
mod random_search;
mod weibo;

pub use de::{DeConfig, DifferentialEvolution};
pub use gaspad::{Gaspad, GaspadConfig};
pub use random_search::RandomSearch;
pub use weibo::{weibo, GpSurrogate, GpSurrogateTrainer};
