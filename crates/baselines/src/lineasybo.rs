//! LinEasyBO: Bayesian optimization along one-dimensional subspaces.
//!
//! LinEasyBO (Zhang et al., arXiv 2109.00617) keeps the surrogate, the
//! acquisition and the constraint handling of WEIBO but replaces the
//! full-pool acquisition maximization with a line search: every iteration
//! draws a one-dimensional subspace through the incumbent, clips the line
//! exactly to the unit cube, and optimizes the acquisition along that segment
//! only.  Scoring cost per iteration drops from
//! `O((candidate_pool + local_candidates) · N)` surrogate predictions to a
//! small constant (`LineSubspaceConfig::points_per_iteration`, independent of
//! the design dimension), which is what makes model-guided sizing tractable
//! past ~20 design variables.
//!
//! The strategy itself lives in `nnbo-core`
//! ([`SuggestStrategy::LineSubspace`]); this module binds it to the classical
//! ARD-GP surrogate whose fitted lengthscales drive the adaptive
//! [`DirectionRule::LengthscaleWeighted`] direction sampling.  Everything
//! else — warm refits through `fit_multi_warm_cached`, incremental
//! `append_observation` updates, failure policies, snapshot/resume — is the
//! exact machinery WEIBO uses, so the two differ *only* in how the next point
//! is proposed.

use nnbo_core::{BayesOpt, BoConfig, DirectionRule, LineSubspaceConfig, SuggestStrategy};

use crate::weibo::GpSurrogateTrainer;

/// Builds the LinEasyBO baseline with the default line-search budget
/// ([`LineSubspaceConfig::default`]: lengthscale-weighted directions, a
/// 64-point coarse grid and two 16-point refinement rounds).
///
/// Any strategy already set on `config` is overridden — this constructor *is*
/// the choice of strategy.
///
/// # Example
///
/// ```
/// use nnbo_baselines::lineasybo;
/// use nnbo_core::{problems::ConstrainedBranin, BoConfig};
///
/// # fn main() -> Result<(), nnbo_core::BoError> {
/// let result = lineasybo(BoConfig::fast(8, 12).with_seed(1)).run(&ConstrainedBranin::new())?;
/// assert_eq!(result.num_evaluations(), 12);
/// # Ok(())
/// # }
/// ```
pub fn lineasybo(config: BoConfig) -> BayesOpt<GpSurrogateTrainer> {
    lineasybo_with(config, LineSubspaceConfig::default())
}

/// Builds LinEasyBO with an explicit line-search configuration (grid budget,
/// refinement rounds, [`DirectionRule`]).
pub fn lineasybo_with(config: BoConfig, line: LineSubspaceConfig) -> BayesOpt<GpSurrogateTrainer> {
    BayesOpt::with_trainer(
        config.with_strategy(SuggestStrategy::LineSubspace(line)),
        GpSurrogateTrainer::default(),
    )
}

/// The purely random-direction variant (no lengthscale adaptation) — the
/// ablation the LinEasyBO paper compares its adaptive directions against.
pub fn lineasybo_random_directions(config: BoConfig) -> BayesOpt<GpSurrogateTrainer> {
    lineasybo_with(
        config,
        LineSubspaceConfig {
            direction: DirectionRule::Random,
            ..LineSubspaceConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnbo_core::problems::ConstrainedBranin;

    fn fast_lineasybo(config: BoConfig) -> BayesOpt<GpSurrogateTrainer> {
        BayesOpt::with_trainer(
            config.with_strategy(SuggestStrategy::line_subspace()),
            GpSurrogateTrainer::fast(),
        )
    }

    #[test]
    fn respects_the_budget_and_stays_in_the_cube() {
        let problem = ConstrainedBranin::new();
        let result = fast_lineasybo(BoConfig::fast(8, 16).with_seed(2))
            .run(&problem)
            .unwrap();
        assert_eq!(result.num_evaluations(), 16);
        for (x, _) in result.evaluations() {
            assert!(x.iter().all(|v| (0.0..=1.0).contains(v)), "escaped: {x:?}");
        }
    }

    #[test]
    fn improves_on_constrained_branin() {
        let problem = ConstrainedBranin::new();
        let result = fast_lineasybo(BoConfig::fast(10, 30).with_seed(5))
            .run(&problem)
            .unwrap();
        let best = result.best_objective().expect("found a feasible point");
        let initial_best = result.evaluations()[..10]
            .iter()
            .filter(|(_, e)| e.is_feasible())
            .map(|(_, e)| e.objective)
            .fold(f64::INFINITY, f64::min);
        assert!(best <= initial_best);
        assert!(best < 6.0, "LinEasyBO best {best}");
    }

    #[test]
    fn runs_are_seeded_deterministic() {
        let problem = ConstrainedBranin::new();
        let run = || {
            fast_lineasybo(BoConfig::fast(6, 12).with_seed(7))
                .run(&problem)
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.evaluations(), b.evaluations());
        assert_eq!(a.suggest_cost().calls, b.suggest_cost().calls);
    }

    #[test]
    fn suggest_cost_counts_one_line_search_per_guided_iteration() {
        let problem = ConstrainedBranin::new();
        let result = fast_lineasybo(BoConfig::fast(6, 13).with_seed(3))
            .run(&problem)
            .unwrap();
        let cost = result.suggest_cost();
        assert_eq!(cost.calls, 13 - 6);
        assert!(cost.nanos > 0);
    }

    #[test]
    fn random_direction_variant_runs() {
        let problem = ConstrainedBranin::new();
        let result = BayesOpt::with_trainer(
            BoConfig::fast(6, 10)
                .with_seed(4)
                .with_strategy(SuggestStrategy::LineSubspace(LineSubspaceConfig {
                    direction: DirectionRule::Random,
                    ..LineSubspaceConfig::default()
                })),
            GpSurrogateTrainer::fast(),
        )
        .run(&problem)
        .unwrap();
        assert_eq!(result.num_evaluations(), 10);
    }
}
