//! GASPAD-style surrogate-assisted evolutionary optimization.

use nnbo_core::{Evaluation, OptimizationResult, Problem, SurrogateModel, SurrogateTrainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::weibo::GpSurrogateTrainer;

/// Configuration of the [`Gaspad`] baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaspadConfig {
    /// Population size of the underlying evolutionary search.
    pub population: usize,
    /// Total simulation budget (including the initial population).
    pub max_evaluations: usize,
    /// Number of offspring generated and pre-screened per generation.
    pub offspring_pool: usize,
    /// Differential weight `F` of the DE mutation.
    pub differential_weight: f64,
    /// Crossover probability `CR`.
    pub crossover_probability: f64,
    /// Random seed.
    pub seed: u64,
}

impl GaspadConfig {
    /// Creates a configuration with the settings used by the reproduction harness.
    pub fn new(population: usize, max_evaluations: usize) -> Self {
        GaspadConfig {
            population,
            max_evaluations,
            offspring_pool: 40,
            differential_weight: 0.8,
            crossover_probability: 0.9,
            seed: 0,
        }
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A GASPAD-style optimizer (Liu et al., TCAD 2014): a Gaussian-process surrogate
/// assists an evolutionary search by *pre-screening* the offspring — in every
/// generation a pool of DE offspring is generated, the GP (trained on all simulated
/// points so far) predicts each one, and only the candidate with the best
/// constraint-weighted expected improvement is actually simulated.
///
/// This captures the defining traits the paper attributes to GASPAD: a traditional
/// GP surrogate combined with an evolutionary optimization engine, more
/// sample-efficient than plain DE but less so than the BO methods.
#[derive(Debug, Clone)]
pub struct Gaspad {
    config: GaspadConfig,
    trainer: GpSurrogateTrainer,
}

impl Gaspad {
    /// Creates the optimizer with the default GP surrogate settings.
    ///
    /// # Panics
    ///
    /// Panics if the population is smaller than 4 or the budget smaller than the
    /// population.
    pub fn new(config: GaspadConfig) -> Self {
        Self::with_trainer(config, GpSurrogateTrainer::default())
    }

    /// Creates the optimizer with a custom GP trainer (e.g. the fast test settings).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Gaspad::new`].
    pub fn with_trainer(config: GaspadConfig, trainer: GpSurrogateTrainer) -> Self {
        assert!(
            config.population >= 4,
            "GASPAD needs a population of at least 4"
        );
        assert!(
            config.max_evaluations >= config.population,
            "budget must cover the initial population"
        );
        Gaspad { config, trainer }
    }

    /// The configuration of this optimizer.
    pub fn config(&self) -> &GaspadConfig {
        &self.config
    }

    /// Runs the optimization.
    pub fn run(&self, problem: &dyn Problem) -> OptimizationResult {
        let dim = problem.dim();
        let np = self.config.population;
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let mut history: Vec<(Vec<f64>, Evaluation)> = Vec::new();
        let mut population: Vec<Vec<f64>> = Vec::with_capacity(np);
        let mut fitness: Vec<Evaluation> = Vec::with_capacity(np);
        for x in nnbo_core::latin_hypercube(np, dim, &mut rng) {
            let eval = problem.evaluate(&x);
            history.push((x.clone(), eval.clone()));
            population.push(x);
            fitness.push(eval);
        }

        while history.len() < self.config.max_evaluations {
            // Generate an offspring pool with DE operators.
            let offspring: Vec<Vec<f64>> = (0..self.config.offspring_pool)
                .map(|_| self.make_offspring(&population, dim, &mut rng))
                .collect();

            // Pre-screen the pool with GP surrogates; fall back to a random pick if
            // the surrogate cannot be trained.
            let chosen = match self.prescreen(&history, &offspring, &mut rng) {
                Some(idx) => offspring[idx].clone(),
                None => offspring[rng.gen_range(0..offspring.len())].clone(),
            };
            let eval = problem.evaluate(&chosen);
            history.push((chosen.clone(), eval.clone()));

            // Replace the worst member of the population if the new point is better.
            let worst = (0..np)
                .max_by(|&a, &b| compare(&fitness[a], &fitness[b]))
                .expect("non-empty population");
            if better(&eval, &fitness[worst]) {
                population[worst] = chosen;
                fitness[worst] = eval;
            }
        }

        OptimizationResult::from_history(history, np)
    }

    fn make_offspring(&self, population: &[Vec<f64>], dim: usize, rng: &mut StdRng) -> Vec<f64> {
        let np = population.len();
        let target = rng.gen_range(0..np);
        let mut pick = || rng.gen_range(0..np);
        let (a, b, c) = (pick(), pick(), pick());
        let forced = rng.gen_range(0..dim);
        let mut child = population[target].clone();
        for d in 0..dim {
            if d == forced || rng.gen_range(0.0..1.0) < self.config.crossover_probability {
                let v = population[a][d]
                    + self.config.differential_weight * (population[b][d] - population[c][d]);
                child[d] = v.clamp(0.0, 1.0);
            }
        }
        child
    }

    /// Ranks the offspring by the GP-predicted lower confidence bound of a
    /// penalised objective and returns the index of the most promising one.
    ///
    /// This mirrors the prescreening used by GASPAD itself: the surrogate predicts
    /// the (penalty-augmented) figure of merit of each offspring and the
    /// evolutionary engine simulates only the candidate whose optimistic estimate
    /// is best — a weaker constraint treatment than the probabilistic wEI of the BO
    /// methods, which is one reason the paper finds GASPAD less sample-efficient.
    fn prescreen(
        &self,
        history: &[(Vec<f64>, Evaluation)],
        offspring: &[Vec<f64>],
        rng: &mut StdRng,
    ) -> Option<usize> {
        let xs: Vec<Vec<f64>> = history.iter().map(|(x, _)| x.clone()).collect();
        // Penalised objective: the surrogate models f(x) + w·Σ max(g_i, 0) directly.
        let penalised: Vec<f64> = history
            .iter()
            .map(|(_, e)| e.objective + 10.0 * e.violation())
            .collect();
        let model = self.trainer.fit(&xs, &penalised, rng).ok()?;

        let mut best = None;
        let mut best_score = f64::NEG_INFINITY;
        for (i, x) in offspring.iter().enumerate() {
            let p = model.predict(x);
            // Lower confidence bound (optimistic estimate) of the penalised FOM.
            let score = -(p.mean - 1.0 * p.std());
            if score > best_score {
                best_score = score;
                best = Some(i);
            }
        }
        best
    }
}

/// Deb's feasibility rules: `a` is better than `b`.
fn better(a: &Evaluation, b: &Evaluation) -> bool {
    match (a.is_feasible(), b.is_feasible()) {
        (true, true) => a.objective < b.objective,
        (true, false) => true,
        (false, true) => false,
        (false, false) => a.violation() < b.violation(),
    }
}

/// Total order consistent with [`better`] (used to find the worst member).
fn compare(a: &Evaluation, b: &Evaluation) -> std::cmp::Ordering {
    if better(a, b) {
        std::cmp::Ordering::Less
    } else if better(b, a) {
        std::cmp::Ordering::Greater
    } else {
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnbo_core::problems::ConstrainedBranin;

    fn fast_gaspad(config: GaspadConfig) -> Gaspad {
        Gaspad::with_trainer(config, GpSurrogateTrainer::fast())
    }

    #[test]
    fn respects_the_budget() {
        let g = fast_gaspad(GaspadConfig::new(8, 20).with_seed(1));
        let result = g.run(&ConstrainedBranin::new());
        assert_eq!(result.num_evaluations(), 20);
    }

    #[test]
    fn improves_over_its_initial_population() {
        let g = fast_gaspad(GaspadConfig::new(10, 35).with_seed(4));
        let result = g.run(&ConstrainedBranin::new());
        let best = result.best_objective().expect("feasible point found");
        let initial_best = result.evaluations()[..10]
            .iter()
            .filter(|(_, e)| e.is_feasible())
            .map(|(_, e)| e.objective)
            .fold(f64::INFINITY, f64::min);
        assert!(best <= initial_best);
        assert!(best < 6.0, "GASPAD best {best}");
    }

    #[test]
    fn runs_are_reproducible() {
        let run = |seed| {
            fast_gaspad(GaspadConfig::new(6, 14).with_seed(seed))
                .run(&ConstrainedBranin::new())
                .evaluations()
                .iter()
                .map(|(_, e)| e.objective)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(2), run(2));
    }

    #[test]
    #[should_panic(expected = "population of at least 4")]
    fn tiny_population_is_rejected() {
        let _ = Gaspad::new(GaspadConfig::new(2, 10));
    }
}
