//! GASPAD-style surrogate-assisted evolutionary optimization.

use nnbo_core::{Evaluation, OptimizationResult, Problem, SurrogateModel, SurrogateTrainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::weibo::GpSurrogateTrainer;

/// Configuration of the [`Gaspad`] baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaspadConfig {
    /// Population size of the underlying evolutionary search.
    pub population: usize,
    /// Total simulation budget (including the initial population).
    pub max_evaluations: usize,
    /// Number of offspring generated and pre-screened per generation.
    pub offspring_pool: usize,
    /// Differential weight `F` of the DE mutation.
    pub differential_weight: f64,
    /// Crossover probability `CR`.
    pub crossover_probability: f64,
    /// Random seed.
    pub seed: u64,
}

impl GaspadConfig {
    /// Creates a configuration with the settings used by the reproduction harness.
    pub fn new(population: usize, max_evaluations: usize) -> Self {
        GaspadConfig {
            population,
            max_evaluations,
            offspring_pool: 40,
            differential_weight: 0.8,
            crossover_probability: 0.9,
            seed: 0,
        }
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A GASPAD-style optimizer (Liu et al., TCAD 2014): a Gaussian-process surrogate
/// assists an evolutionary search by *pre-screening* the offspring — in every
/// generation a pool of DE offspring is generated, the GP (trained on all simulated
/// points so far) predicts each one, and only the candidate with the best
/// constraint-weighted expected improvement is actually simulated.
///
/// This captures the defining traits the paper attributes to GASPAD: a traditional
/// GP surrogate combined with an evolutionary optimization engine, more
/// sample-efficient than plain DE but less so than the BO methods.
#[derive(Debug, Clone)]
pub struct Gaspad {
    config: GaspadConfig,
    trainer: GpSurrogateTrainer,
}

impl Gaspad {
    /// Creates the optimizer with the default GP surrogate settings.
    ///
    /// # Panics
    ///
    /// Panics if the population is smaller than 4 or the budget smaller than the
    /// population.
    pub fn new(config: GaspadConfig) -> Self {
        Self::with_trainer(config, GpSurrogateTrainer::default())
    }

    /// Creates the optimizer with a custom GP trainer (e.g. the fast test settings).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Gaspad::new`].
    pub fn with_trainer(config: GaspadConfig, trainer: GpSurrogateTrainer) -> Self {
        assert!(
            config.population >= 4,
            "GASPAD needs a population of at least 4"
        );
        assert!(
            config.max_evaluations >= config.population,
            "budget must cover the initial population"
        );
        Gaspad { config, trainer }
    }

    /// The configuration of this optimizer.
    pub fn config(&self) -> &GaspadConfig {
        &self.config
    }

    /// Runs the optimization to completion — exactly
    /// [`Gaspad::start`] / [`Gaspad::step`] / [`Gaspad::finish`], so an
    /// interrupted-and-resumed run reproduces this one bit for bit.
    pub fn run(&self, problem: &dyn Problem) -> OptimizationResult {
        let mut state = self.start(problem);
        while self.step(problem, &mut state) {}
        self.finish(state)
    }

    /// Evaluates the initial Latin-hypercube population and returns the
    /// mid-run state the generation loop advances.
    pub fn start(&self, problem: &dyn Problem) -> GaspadState {
        let dim = problem.dim();
        let np = self.config.population;
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let mut history: Vec<(Vec<f64>, Evaluation)> = Vec::new();
        let mut population: Vec<Vec<f64>> = Vec::with_capacity(np);
        let mut fitness: Vec<Evaluation> = Vec::with_capacity(np);
        for x in nnbo_core::latin_hypercube(np, dim, &mut rng) {
            let eval = problem.evaluate(&x);
            history.push((x.clone(), eval.clone()));
            population.push(x);
            fitness.push(eval);
        }
        GaspadState {
            rng,
            history,
            population,
            fitness,
        }
    }

    /// Performs one generation — offspring pool, GP prescreen, one simulation,
    /// Deb's-rules replacement — and returns `false` once the budget is spent
    /// (in which case the state is untouched).
    pub fn step(&self, problem: &dyn Problem, state: &mut GaspadState) -> bool {
        if state.history.len() >= self.config.max_evaluations {
            return false;
        }
        let dim = problem.dim();
        let np = self.config.population;
        let GaspadState {
            rng,
            history,
            population,
            fitness,
        } = state;

        // Generate an offspring pool with DE operators.
        let offspring: Vec<Vec<f64>> = (0..self.config.offspring_pool)
            .map(|_| self.make_offspring(population, dim, rng))
            .collect();

        // Pre-screen the pool with GP surrogates; fall back to a random pick if
        // the surrogate cannot be trained.
        let chosen = match self.prescreen(history, &offspring, rng) {
            Some(idx) => offspring[idx].clone(),
            None => offspring[rng.gen_range(0..offspring.len())].clone(),
        };
        let eval = problem.evaluate(&chosen);
        history.push((chosen.clone(), eval.clone()));

        // Replace the worst member of the population if the new point is better.
        let worst = (0..np)
            .max_by(|&a, &b| compare(&fitness[a], &fitness[b]))
            .expect("non-empty population");
        if better(&eval, &fitness[worst]) {
            population[worst] = chosen;
            fitness[worst] = eval;
        }
        true
    }

    /// Wraps up a (possibly mid-budget) state into the result every baseline
    /// reports.
    pub fn finish(&self, state: GaspadState) -> OptimizationResult {
        OptimizationResult::from_history(state.history, self.config.population)
    }

    /// Captures a checkpoint of a mid-run state.  The snapshot embeds the
    /// configuration, the full history, the population with its fitness, and
    /// the exact RNG position, so [`Gaspad::resume`] continues bit-identically
    /// to the uninterrupted run.
    pub fn snapshot(&self, state: &GaspadState) -> GaspadSnapshot {
        GaspadSnapshot {
            config: self.config.clone(),
            rng_state: state.rng.state(),
            history: state.history.clone(),
            population: state.population.clone(),
            fitness: state.fitness.clone(),
        }
    }

    /// Restores a mid-run state from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the snapshot was taken under a
    /// different configuration or is internally inconsistent.
    pub fn resume(&self, snapshot: &GaspadSnapshot) -> Result<GaspadState, String> {
        if snapshot.config != self.config {
            return Err("snapshot was taken under a different GASPAD configuration".into());
        }
        if snapshot.population.len() != self.config.population
            || snapshot.fitness.len() != snapshot.population.len()
        {
            return Err("snapshot population is inconsistent".into());
        }
        Ok(GaspadState {
            rng: StdRng::from_state(snapshot.rng_state),
            history: snapshot.history.clone(),
            population: snapshot.population.clone(),
            fitness: snapshot.fitness.clone(),
        })
    }

    fn make_offspring(&self, population: &[Vec<f64>], dim: usize, rng: &mut StdRng) -> Vec<f64> {
        let np = population.len();
        let target = rng.gen_range(0..np);
        let mut pick = || rng.gen_range(0..np);
        let (a, b, c) = (pick(), pick(), pick());
        let forced = rng.gen_range(0..dim);
        let mut child = population[target].clone();
        for d in 0..dim {
            if d == forced || rng.gen_range(0.0..1.0) < self.config.crossover_probability {
                let v = population[a][d]
                    + self.config.differential_weight * (population[b][d] - population[c][d]);
                child[d] = v.clamp(0.0, 1.0);
            }
        }
        child
    }

    /// Ranks the offspring by the GP-predicted lower confidence bound of a
    /// penalised objective and returns the index of the most promising one.
    ///
    /// This mirrors the prescreening used by GASPAD itself: the surrogate predicts
    /// the (penalty-augmented) figure of merit of each offspring and the
    /// evolutionary engine simulates only the candidate whose optimistic estimate
    /// is best — a weaker constraint treatment than the probabilistic wEI of the BO
    /// methods, which is one reason the paper finds GASPAD less sample-efficient.
    fn prescreen(
        &self,
        history: &[(Vec<f64>, Evaluation)],
        offspring: &[Vec<f64>],
        rng: &mut StdRng,
    ) -> Option<usize> {
        let xs: Vec<Vec<f64>> = history.iter().map(|(x, _)| x.clone()).collect();
        // Penalised objective: the surrogate models f(x) + w·Σ max(g_i, 0) directly.
        let penalised: Vec<f64> = history
            .iter()
            .map(|(_, e)| e.objective + 10.0 * e.violation())
            .collect();
        let model = self.trainer.fit(&xs, &penalised, rng).ok()?;

        let mut best = None;
        let mut best_score = f64::NEG_INFINITY;
        for (i, x) in offspring.iter().enumerate() {
            let p = model.predict(x);
            // Lower confidence bound (optimistic estimate) of the penalised FOM.
            let score = -(p.mean - 1.0 * p.std());
            if score > best_score {
                best_score = score;
                best = Some(i);
            }
        }
        best
    }
}

/// Mid-run state of a GASPAD optimization, advanced one generation at a time
/// by [`Gaspad::step`].
#[derive(Debug, Clone)]
pub struct GaspadState {
    rng: StdRng,
    history: Vec<(Vec<f64>, Evaluation)>,
    population: Vec<Vec<f64>>,
    fitness: Vec<Evaluation>,
}

impl GaspadState {
    /// Evaluations performed so far (initial population included).
    pub fn num_evaluations(&self) -> usize {
        self.history.len()
    }
}

/// A serialisable checkpoint of a mid-run GASPAD state
/// (see [`Gaspad::snapshot`] / [`Gaspad::resume`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaspadSnapshot {
    config: GaspadConfig,
    rng_state: [u64; 4],
    history: Vec<(Vec<f64>, Evaluation)>,
    population: Vec<Vec<f64>>,
    fitness: Vec<Evaluation>,
}

impl GaspadSnapshot {
    /// Serializes the snapshot to a JSON string (bit-exact floats).
    pub fn to_json(&self) -> String {
        serde::to_json_string(self)
    }

    /// Parses a snapshot from the JSON produced by [`GaspadSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the text is not a GASPAD snapshot.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde::from_json_str(text).map_err(|e| e.to_string())
    }
}

/// Deb's feasibility rules: `a` is better than `b`.
fn better(a: &Evaluation, b: &Evaluation) -> bool {
    match (a.is_feasible(), b.is_feasible()) {
        (true, true) => a.objective < b.objective,
        (true, false) => true,
        (false, true) => false,
        (false, false) => a.violation() < b.violation(),
    }
}

/// Total order consistent with [`better`] (used to find the worst member).
fn compare(a: &Evaluation, b: &Evaluation) -> std::cmp::Ordering {
    if better(a, b) {
        std::cmp::Ordering::Less
    } else if better(b, a) {
        std::cmp::Ordering::Greater
    } else {
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnbo_core::problems::ConstrainedBranin;

    fn fast_gaspad(config: GaspadConfig) -> Gaspad {
        Gaspad::with_trainer(config, GpSurrogateTrainer::fast())
    }

    #[test]
    fn respects_the_budget() {
        let g = fast_gaspad(GaspadConfig::new(8, 20).with_seed(1));
        let result = g.run(&ConstrainedBranin::new());
        assert_eq!(result.num_evaluations(), 20);
    }

    #[test]
    fn improves_over_its_initial_population() {
        let g = fast_gaspad(GaspadConfig::new(10, 35).with_seed(4));
        let result = g.run(&ConstrainedBranin::new());
        let best = result.best_objective().expect("feasible point found");
        let initial_best = result.evaluations()[..10]
            .iter()
            .filter(|(_, e)| e.is_feasible())
            .map(|(_, e)| e.objective)
            .fold(f64::INFINITY, f64::min);
        assert!(best <= initial_best);
        assert!(best < 6.0, "GASPAD best {best}");
    }

    #[test]
    fn runs_are_reproducible() {
        let run = |seed| {
            fast_gaspad(GaspadConfig::new(6, 14).with_seed(seed))
                .run(&ConstrainedBranin::new())
                .evaluations()
                .iter()
                .map(|(_, e)| e.objective)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(2), run(2));
    }

    #[test]
    #[should_panic(expected = "population of at least 4")]
    fn tiny_population_is_rejected() {
        let _ = Gaspad::new(GaspadConfig::new(2, 10));
    }

    #[test]
    fn snapshot_resume_continues_bit_identically() {
        let problem = ConstrainedBranin::new();
        let g = fast_gaspad(GaspadConfig::new(6, 16).with_seed(9));
        let uninterrupted = g.run(&problem);

        let mut state = g.start(&problem);
        for _ in 0..4 {
            assert!(g.step(&problem, &mut state));
        }
        let snap = GaspadSnapshot::from_json(&g.snapshot(&state).to_json()).unwrap();
        let mut resumed = g.resume(&snap).unwrap();
        assert_eq!(resumed.num_evaluations(), 6 + 4);
        while g.step(&problem, &mut resumed) {}
        let replayed = g.finish(resumed);
        assert_eq!(replayed.evaluations(), uninterrupted.evaluations());
    }

    #[test]
    fn resume_rejects_a_foreign_snapshot() {
        let problem = ConstrainedBranin::new();
        let g = fast_gaspad(GaspadConfig::new(6, 16).with_seed(9));
        let state = g.start(&problem);
        let snap = g.snapshot(&state);
        let other = fast_gaspad(GaspadConfig::new(6, 16).with_seed(10));
        assert!(other.resume(&snap).is_err());
        assert!(GaspadSnapshot::from_json("not a snapshot").is_err());
    }
}
