//! WEIBO: constrained Bayesian optimization with a classical GP surrogate.

use std::sync::Mutex;

use nnbo_core::{BayesOpt, BoConfig, Prediction, SurrogateModel, SurrogateTrainer};
use nnbo_gp::{FitContext, GpConfig, GpHyperParams, GpModel, GpPredictScratch, GpPrediction};
use rand::rngs::StdRng;
use serde::{DeError, Deserialize, Serialize, Value};

/// A classical-GP surrogate model (adapter around [`nnbo_gp::GpModel`]).
///
/// The adapter owns a lazily grown [`GpPredictScratch`] (behind a `Mutex`, so
/// the surrogate stays `Sync`): once the buffers have grown to the
/// acquisition pool size, every batched scoring round of a
/// Bayesian-optimization run predicts allocation-free through
/// [`GpModel::predict_batch_into`] — the packed-GEMM cross-kernel with its
/// fused `exp` pass, the in-place batched triangular solve, and the output
/// vectors all reuse the same memory.  A clone starts with fresh (empty)
/// scratch of its own.
#[derive(Debug)]
pub struct GpSurrogate {
    model: GpModel,
    scratch: Mutex<PredictBuffers>,
}

/// The per-surrogate prediction buffers: the GP scratch plus the raw
/// prediction vector mapped into `nnbo-core` predictions on the way out.
#[derive(Debug, Default)]
struct PredictBuffers {
    scratch: GpPredictScratch,
    preds: Vec<GpPrediction>,
}

impl Clone for GpSurrogate {
    fn clone(&self) -> Self {
        GpSurrogate::from_model(self.model.clone())
    }
}

impl GpSurrogate {
    fn from_model(model: GpModel) -> Self {
        GpSurrogate {
            model,
            scratch: Mutex::new(PredictBuffers::default()),
        }
    }

    /// The underlying GP model.
    pub fn model(&self) -> &GpModel {
        &self.model
    }
}

/// The surrogate serialises as its [`GpModel`] alone — the prediction scratch
/// is rebuilt empty on restore, so a round-tripped surrogate predicts
/// bit-identically while checkpoints stay free of buffer noise.  This is what
/// lets [`nnbo_core::BayesOpt::snapshot`] capture GP-backed runs (WEIBO,
/// LinEasyBO) with their fitted models inline.
impl Serialize for GpSurrogate {
    fn to_value(&self) -> Value {
        self.model.to_value()
    }
}

impl<'de> Deserialize<'de> for GpSurrogate {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        GpModel::from_value(value).map(GpSurrogate::from_model)
    }
}

impl SurrogateModel for GpSurrogate {
    fn predict(&self, x: &[f64]) -> Prediction {
        let p = self.model.predict(x);
        Prediction::new(p.mean, p.variance)
    }

    /// Batched prediction through [`nnbo_gp::GpModel::predict_batch`]: one
    /// packed-GEMM cross-kernel product with a fused `exp` pass and one
    /// batched triangular solve for the whole candidate set.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        let mut out = Vec::with_capacity(xs.len());
        self.predict_batch_into(xs, &mut out);
        out
    }

    /// The allocation-free variant: scores the batch through the adapter's
    /// cached [`GpPredictScratch`] into the caller's output vector.
    fn predict_batch_into(&self, xs: &[Vec<f64>], out: &mut Vec<Prediction>) {
        let mut buffers = self
            .scratch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let PredictBuffers { scratch, preds } = &mut *buffers;
        self.model.predict_batch_into(xs, preds, scratch);
        out.clear();
        out.extend(preds.iter().map(|p| Prediction::new(p.mean, p.variance)));
    }

    /// The GP's negative log marginal likelihood on its training set
    /// ([`GpModel::nll`]) — refreshed by the incremental
    /// `append_observation`, so `RefitPolicy::NllDrift` can watch the
    /// incremental model's quality between full refits.
    fn training_nll(&self) -> Option<f64> {
        Some(self.model.nll())
    }

    /// The fitted ARD lengthscales `exp(log ℓ_d)` — the adaptive signal the
    /// LinEasyBO line strategy's `DirectionRule::LengthscaleWeighted` reads
    /// to tilt its search direction toward the active dimensions.
    fn lengthscales(&self) -> Option<Vec<f64>> {
        Some(self.model.hyper_params().lengthscales())
    }
}

/// Trainer producing classical-GP surrogates, used by the WEIBO and GASPAD
/// baselines.
///
/// Across the refits of one Bayesian-optimization run the trainer keeps the
/// previous [`FitContext`] (the `N × N × D` pairwise squared-distance tensor)
/// in a cache slot: since the BO history grows append-only, each refit
/// extends the tensor by one row/column in `O(N·D)` instead of rebuilding it
/// in `O(N²·D)`.  The cache never changes results — an incrementally grown
/// context is bit-identical to a fresh one, and a history that does not
/// extend the cached rows triggers a rebuild.  A clone starts with an empty
/// slot of its own: two trainers driving different BO runs would only evict
/// each other's context (and contend on the lock) if they shared one.
#[derive(Debug, Default)]
pub struct GpSurrogateTrainer {
    /// GP fitting configuration.
    pub config: GpConfig,
    ctx_cache: Mutex<Option<FitContext>>,
}

impl Clone for GpSurrogateTrainer {
    fn clone(&self) -> Self {
        GpSurrogateTrainer {
            config: self.config.clone(),
            ctx_cache: Mutex::new(None),
        }
    }
}

impl GpSurrogateTrainer {
    /// Creates a trainer with the given GP configuration.
    pub fn new(config: GpConfig) -> Self {
        GpSurrogateTrainer {
            config,
            ctx_cache: Mutex::new(None),
        }
    }

    /// A cheaper trainer for tests and smoke experiments.
    pub fn fast() -> Self {
        Self::new(GpConfig::fast())
    }
}

impl SurrogateTrainer for GpSurrogateTrainer {
    type Model = GpSurrogate;

    fn fit(&self, xs: &[Vec<f64>], ys: &[f64], rng: &mut StdRng) -> Result<GpSurrogate, String> {
        GpModel::fit(xs, ys, &self.config, rng)
            .map(GpSurrogate::from_model)
            .map_err(|e| e.to_string())
    }

    /// Multi-output fitting through [`GpModel::fit_multi_warm_cached`]: the
    /// objective and every constraint share one fit context (pairwise
    /// squared-distance tensor over the common design points, grown
    /// incrementally across refits through the trainer's cache), train on
    /// scoped threads, and — when the previous refit's surrogates are
    /// supplied — warm-start each output's hyper-parameter optimization from
    /// its last optimum instead of rerunning the multi-restart schedule.
    fn fit_many(
        &self,
        xs: &[Vec<f64>],
        targets: &[Vec<f64>],
        prev: Option<&[&GpSurrogate]>,
        rng: &mut StdRng,
    ) -> Result<Vec<GpSurrogate>, String> {
        let warm: Vec<Option<GpHyperParams>> = match prev {
            Some(models) if models.len() == targets.len() => models
                .iter()
                .map(|m| Some(m.model().hyper_params().clone()))
                .collect(),
            _ => vec![None; targets.len()],
        };
        let mut cache = self
            .ctx_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        GpModel::fit_multi_warm_cached(xs, targets, &self.config, rng, &warm, &mut cache)
            .map(|models| models.into_iter().map(GpSurrogate::from_model).collect())
            .map_err(|e| e.to_string())
    }

    /// Incremental single-observation refit through the bordered Cholesky
    /// update ([`nnbo_gp::GpModel::append_observation`]), keeping the
    /// hyper-parameters frozen between full refits.
    fn update(
        &self,
        prev: &GpSurrogate,
        x: &[f64],
        y: f64,
        _rng: &mut StdRng,
    ) -> Option<Result<GpSurrogate, String>> {
        Some(
            prev.model
                .append_observation(x, y)
                .map(GpSurrogate::from_model)
                .map_err(|e| e.to_string()),
        )
    }
}

/// Builds the WEIBO baseline: the constrained BO loop of `nnbo-core` with a
/// classical GP surrogate and the wEI acquisition — the state-of-the-art algorithm
/// the paper compares against.
///
/// # Example
///
/// ```
/// use nnbo_baselines::weibo;
/// use nnbo_core::{problems::ConstrainedBranin, BoConfig};
///
/// # fn main() -> Result<(), nnbo_core::BoError> {
/// let result = weibo(BoConfig::fast(8, 12).with_seed(1)).run(&ConstrainedBranin::new())?;
/// assert_eq!(result.num_evaluations(), 12);
/// # Ok(())
/// # }
/// ```
pub fn weibo(config: BoConfig) -> BayesOpt<GpSurrogateTrainer> {
    BayesOpt::with_trainer(config, GpSurrogateTrainer::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnbo_core::problems::{ConstrainedBranin, Problem};
    use rand::SeedableRng;

    #[test]
    fn gp_surrogate_trains_and_predicts() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
        let trainer = GpSurrogateTrainer::fast();
        let mut rng = StdRng::seed_from_u64(0);
        let model = trainer.fit(&xs, &ys, &mut rng).unwrap();
        let p = model.predict(&[0.5]);
        assert!((p.mean - (1.5_f64).sin()).abs() < 0.2);
        assert!(p.variance >= 0.0);
    }

    #[test]
    fn weibo_improves_on_constrained_branin() {
        let problem = ConstrainedBranin::new();
        let bo = BayesOpt::with_trainer(
            BoConfig::fast(10, 26).with_seed(3),
            GpSurrogateTrainer::fast(),
        );
        let result = bo.run(&problem).unwrap();
        let best = result.best_objective().expect("found a feasible point");
        assert!(best < 5.0, "WEIBO best {best}");
        // The proposal phase actually helped compared to the initial design alone.
        let initial_best = result.evaluations()[..10]
            .iter()
            .filter(|(_, e)| e.is_feasible())
            .map(|(_, e)| e.objective)
            .fold(f64::INFINITY, f64::min);
        assert!(best <= initial_best);
    }

    #[test]
    fn degenerate_training_data_reports_an_error() {
        let trainer = GpSurrogateTrainer::fast();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(trainer.fit(&[], &[], &mut rng).is_err());
    }

    #[test]
    fn gp_surrogate_batch_prediction_matches_per_point() {
        let xs: Vec<Vec<f64>> = (0..18).map(|i| vec![i as f64 / 17.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (5.0 * x[0]).cos()).collect();
        let trainer = GpSurrogateTrainer::fast();
        let mut rng = StdRng::seed_from_u64(8);
        let model = trainer.fit(&xs, &ys, &mut rng).unwrap();
        let queries: Vec<Vec<f64>> = (0..25).map(|i| vec![(i as f64 * 0.41) % 1.0]).collect();
        let batch = model.predict_batch(&queries);
        for (q, b) in queries.iter().zip(batch.iter()) {
            let single = model.predict(q);
            assert_eq!(single.mean, b.mean);
            assert_eq!(single.variance, b.variance);
        }
    }

    #[test]
    fn fit_many_trains_every_output_and_warm_starts_from_previous_models() {
        let xs: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64 / 15.0]).collect();
        let targets = vec![
            xs.iter().map(|x| (3.0 * x[0]).sin()).collect::<Vec<f64>>(),
            xs.iter().map(|x| x[0] * x[0]).collect::<Vec<f64>>(),
        ];
        let trainer = GpSurrogateTrainer::fast();
        let mut rng = StdRng::seed_from_u64(11);
        let cold = trainer.fit_many(&xs, &targets, None, &mut rng).unwrap();
        assert_eq!(cold.len(), 2);

        // Warm refit over one more observation: models stay accurate.
        let mut xs2 = xs.clone();
        xs2.push(vec![0.42]);
        let targets2 = vec![
            xs2.iter().map(|x| (3.0 * x[0]).sin()).collect::<Vec<f64>>(),
            xs2.iter().map(|x| x[0] * x[0]).collect::<Vec<f64>>(),
        ];
        let prev: Vec<&GpSurrogate> = cold.iter().collect();
        let warm = trainer
            .fit_many(&xs2, &targets2, Some(&prev), &mut rng)
            .unwrap();
        assert_eq!(warm.len(), 2);
        let p = warm[0].predict(&[0.5]);
        assert!((p.mean - (1.5_f64).sin()).abs() < 0.2, "mean {}", p.mean);
        let p1 = warm[1].predict(&[0.5]);
        assert!((p1.mean - 0.25).abs() < 0.1, "mean {}", p1.mean);
    }

    #[test]
    fn cached_fit_context_is_bit_identical_to_fresh_fits() {
        // One trainer reused across a growing history (its context cache
        // appends rows) must produce exactly the models a fresh trainer
        // (fresh context every call) produces.
        let grow = |n: usize| -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
            let xs: Vec<Vec<f64>> = (0..n)
                .map(|i| vec![i as f64 / 24.0, ((i * i) % 7) as f64 / 7.0])
                .collect();
            let targets = vec![
                xs.iter().map(|x| (3.0 * x[0]).sin() + x[1]).collect(),
                xs.iter().map(|x| x[0] * x[0] - x[1]).collect(),
            ];
            (xs, targets)
        };
        let cached = GpSurrogateTrainer::fast();
        for n in [12, 13, 14] {
            let (xs, targets) = grow(n);
            let mut rng_cached = StdRng::seed_from_u64(n as u64);
            let with_cache = cached
                .fit_many(&xs, &targets, None, &mut rng_cached)
                .unwrap();
            let fresh = GpSurrogateTrainer::fast();
            let mut rng_fresh = StdRng::seed_from_u64(n as u64);
            let without_cache = fresh.fit_many(&xs, &targets, None, &mut rng_fresh).unwrap();
            for (a, b) in with_cache.iter().zip(without_cache.iter()) {
                assert_eq!(a.model().hyper_params(), b.model().hyper_params());
                assert_eq!(a.model().nll(), b.model().nll());
                let q = [0.37, 0.81];
                assert_eq!(a.predict(&q).mean, b.predict(&q).mean);
                assert_eq!(a.predict(&q).variance, b.predict(&q).variance);
            }
        }
    }

    #[test]
    fn weibo_supports_incremental_refits() {
        use nnbo_core::RefitPolicy;
        let problem = ConstrainedBranin::new();
        let bo = BayesOpt::with_trainer(
            BoConfig::fast(8, 18)
                .with_seed(7)
                .with_refit_policy(RefitPolicy::Fixed(5)),
            GpSurrogateTrainer::fast(),
        );
        let result = bo.run(&problem).unwrap();
        assert_eq!(result.num_evaluations(), 18);
        assert!(result.best_objective().is_some());
        assert!(result.full_refits() < 10);
    }

    #[test]
    fn weibo_drift_policy_saves_refits_and_zero_threshold_matches_always_refit() {
        use nnbo_core::RefitPolicy;
        let problem = ConstrainedBranin::new();
        let always = BayesOpt::with_trainer(
            BoConfig::fast(8, 20).with_seed(13),
            GpSurrogateTrainer::fast(),
        )
        .run(&problem)
        .unwrap();
        // threshold = 0 reproduces always-refit bit for bit (the GP's
        // incremental update freezes the warm-start hyper-parameters).
        let zero = BayesOpt::with_trainer(
            BoConfig::fast(8, 20)
                .with_seed(13)
                .with_refit_policy(RefitPolicy::NllDrift {
                    threshold: 0.0,
                    min_gap: 1,
                    max_gap: 1000,
                }),
            GpSurrogateTrainer::fast(),
        )
        .run(&problem)
        .unwrap();
        assert_eq!(always.evaluations(), zero.evaluations());
        assert_eq!(always.full_refits(), zero.full_refits());
        // A real threshold performs measurably fewer full fits on the same
        // budget and still optimizes.
        let drift = BayesOpt::with_trainer(
            BoConfig::fast(8, 20)
                .with_seed(13)
                .with_refit_policy(RefitPolicy::nll_drift(0.2)),
            GpSurrogateTrainer::fast(),
        )
        .run(&problem)
        .unwrap();
        assert_eq!(drift.num_evaluations(), always.num_evaluations());
        assert!(
            drift.full_refits() < always.full_refits(),
            "drift {} vs always {}",
            drift.full_refits(),
            always.full_refits()
        );
        assert!(drift.best_objective().is_some());
    }

    #[test]
    fn weibo_uses_the_requested_budget() {
        let problem = ConstrainedBranin::new();
        assert_eq!(problem.num_constraints(), 1);
        let result = weibo(BoConfig::fast(6, 9).with_seed(5))
            .run(&problem)
            .unwrap();
        assert_eq!(result.num_evaluations(), 9);
    }
}
