//! WEIBO: constrained Bayesian optimization with a classical GP surrogate.

use nnbo_core::{BayesOpt, BoConfig, Prediction, SurrogateModel, SurrogateTrainer};
use nnbo_gp::{GpConfig, GpModel};
use rand::rngs::StdRng;

/// A classical-GP surrogate model (adapter around [`nnbo_gp::GpModel`]).
#[derive(Debug, Clone)]
pub struct GpSurrogate {
    model: GpModel,
}

impl GpSurrogate {
    /// The underlying GP model.
    pub fn model(&self) -> &GpModel {
        &self.model
    }
}

impl SurrogateModel for GpSurrogate {
    fn predict(&self, x: &[f64]) -> Prediction {
        let p = self.model.predict(x);
        Prediction::new(p.mean, p.variance)
    }

    /// Batched prediction through [`nnbo_gp::GpModel::predict_batch`]: one
    /// blocked cross-kernel product and one batched triangular solve for the
    /// whole candidate set.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        self.model
            .predict_batch(xs)
            .into_iter()
            .map(|p| Prediction::new(p.mean, p.variance))
            .collect()
    }
}

/// Trainer producing classical-GP surrogates, used by the WEIBO and GASPAD
/// baselines.
#[derive(Debug, Clone, Default)]
pub struct GpSurrogateTrainer {
    /// GP fitting configuration.
    pub config: GpConfig,
}

impl GpSurrogateTrainer {
    /// Creates a trainer with the given GP configuration.
    pub fn new(config: GpConfig) -> Self {
        GpSurrogateTrainer { config }
    }

    /// A cheaper trainer for tests and smoke experiments.
    pub fn fast() -> Self {
        GpSurrogateTrainer {
            config: GpConfig::fast(),
        }
    }
}

impl SurrogateTrainer for GpSurrogateTrainer {
    type Model = GpSurrogate;

    fn fit(&self, xs: &[Vec<f64>], ys: &[f64], rng: &mut StdRng) -> Result<GpSurrogate, String> {
        GpModel::fit(xs, ys, &self.config, rng)
            .map(|model| GpSurrogate { model })
            .map_err(|e| e.to_string())
    }

    /// Incremental single-observation refit through the bordered Cholesky
    /// update ([`nnbo_gp::GpModel::append_observation`]), keeping the
    /// hyper-parameters frozen between full refits.
    fn update(
        &self,
        prev: &GpSurrogate,
        x: &[f64],
        y: f64,
        _rng: &mut StdRng,
    ) -> Option<Result<GpSurrogate, String>> {
        Some(
            prev.model
                .append_observation(x, y)
                .map(|model| GpSurrogate { model })
                .map_err(|e| e.to_string()),
        )
    }
}

/// Builds the WEIBO baseline: the constrained BO loop of `nnbo-core` with a
/// classical GP surrogate and the wEI acquisition — the state-of-the-art algorithm
/// the paper compares against.
///
/// # Example
///
/// ```
/// use nnbo_baselines::weibo;
/// use nnbo_core::{problems::ConstrainedBranin, BoConfig};
///
/// # fn main() -> Result<(), nnbo_core::BoError> {
/// let result = weibo(BoConfig::fast(8, 12).with_seed(1)).run(&ConstrainedBranin::new())?;
/// assert_eq!(result.num_evaluations(), 12);
/// # Ok(())
/// # }
/// ```
pub fn weibo(config: BoConfig) -> BayesOpt<GpSurrogateTrainer> {
    BayesOpt::with_trainer(config, GpSurrogateTrainer::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnbo_core::problems::{ConstrainedBranin, Problem};
    use rand::SeedableRng;

    #[test]
    fn gp_surrogate_trains_and_predicts() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin()).collect();
        let trainer = GpSurrogateTrainer::fast();
        let mut rng = StdRng::seed_from_u64(0);
        let model = trainer.fit(&xs, &ys, &mut rng).unwrap();
        let p = model.predict(&[0.5]);
        assert!((p.mean - (1.5_f64).sin()).abs() < 0.2);
        assert!(p.variance >= 0.0);
    }

    #[test]
    fn weibo_improves_on_constrained_branin() {
        let problem = ConstrainedBranin::new();
        let bo = BayesOpt::with_trainer(
            BoConfig::fast(10, 26).with_seed(3),
            GpSurrogateTrainer::fast(),
        );
        let result = bo.run(&problem).unwrap();
        let best = result.best_objective().expect("found a feasible point");
        assert!(best < 5.0, "WEIBO best {best}");
        // The proposal phase actually helped compared to the initial design alone.
        let initial_best = result.evaluations()[..10]
            .iter()
            .filter(|(_, e)| e.is_feasible())
            .map(|(_, e)| e.objective)
            .fold(f64::INFINITY, f64::min);
        assert!(best <= initial_best);
    }

    #[test]
    fn degenerate_training_data_reports_an_error() {
        let trainer = GpSurrogateTrainer::fast();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(trainer.fit(&[], &[], &mut rng).is_err());
    }

    #[test]
    fn gp_surrogate_batch_prediction_matches_per_point() {
        let xs: Vec<Vec<f64>> = (0..18).map(|i| vec![i as f64 / 17.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (5.0 * x[0]).cos()).collect();
        let trainer = GpSurrogateTrainer::fast();
        let mut rng = StdRng::seed_from_u64(8);
        let model = trainer.fit(&xs, &ys, &mut rng).unwrap();
        let queries: Vec<Vec<f64>> = (0..25).map(|i| vec![(i as f64 * 0.41) % 1.0]).collect();
        let batch = model.predict_batch(&queries);
        for (q, b) in queries.iter().zip(batch.iter()) {
            let single = model.predict(q);
            assert_eq!(single.mean, b.mean);
            assert_eq!(single.variance, b.variance);
        }
    }

    #[test]
    fn weibo_supports_incremental_refits() {
        let problem = ConstrainedBranin::new();
        let bo = BayesOpt::with_trainer(
            BoConfig::fast(8, 18).with_seed(7).with_refit_every(5),
            GpSurrogateTrainer::fast(),
        );
        let result = bo.run(&problem).unwrap();
        assert_eq!(result.num_evaluations(), 18);
        assert!(result.best_objective().is_some());
    }

    #[test]
    fn weibo_uses_the_requested_budget() {
        let problem = ConstrainedBranin::new();
        assert_eq!(problem.num_constraints(), 1);
        let result = weibo(BoConfig::fast(6, 9).with_seed(5))
            .run(&problem)
            .unwrap();
        assert_eq!(result.num_evaluations(), 9);
    }
}
