//! Quickstart: constrained Bayesian optimization with the neural-GP surrogate.
//!
//! Optimizes the constrained Branin benchmark with a tiny budget and prints the
//! convergence history — a one-minute tour of the public API.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p nnbo-bench --example quickstart
//! ```

use nnbo_core::problems::ConstrainedBranin;
use nnbo_core::{BayesOpt, BoConfig, BoError, EnsembleConfig};

fn main() -> Result<(), BoError> {
    // 1. Pick a problem: minimise Branin subject to a disk constraint.
    let problem = ConstrainedBranin::new();

    // 2. Configure the optimizer: 10 Latin-hypercube samples, 30 total simulations,
    //    a 3-member neural-GP ensemble, and the paper's wEI acquisition.
    let config = BoConfig::new(10, 30).with_seed(42);
    let ensemble = EnsembleConfig {
        members: 3,
        ..EnsembleConfig::default()
    };
    let optimizer = BayesOpt::neural_with(config, ensemble);

    // 3. Run.
    let result = optimizer.run(&problem)?;

    // 4. Inspect the outcome.
    println!("evaluations used : {}", result.num_evaluations());
    println!(
        "first feasible at: {:?}",
        result.first_feasible_at().unwrap_or(0)
    );
    if let Some((x, eval)) = result.best() {
        println!(
            "best objective   : {:.4} (true optimum 0.3979)",
            eval.objective
        );
        println!("best point (norm): [{:.3}, {:.3}]", x[0], x[1]);
    }
    println!("\nconvergence curve (best feasible objective so far):");
    for (i, v) in result.convergence_curve().iter().enumerate() {
        if v.is_finite() {
            println!("  sim {:>3}: {:.4}", i + 1, v);
        }
    }
    Ok(())
}
