//! Charge-pump sizing over PVT corners (the paper's Table-II workload).
//!
//! Minimises the current-matching figure of merit of the 36-variable charge pump
//! over 18 process/voltage/temperature corners, then reports the per-corner metrics
//! (diff1..diff4, deviation) of the best design — the quantities of eq. 16.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p nnbo-bench --example charge_pump_pvt
//! ```

use nnbo_core::problems::ChargePumpProblem;
use nnbo_core::{BayesOpt, BoConfig, BoError, EnsembleConfig, NeuralGpConfig};

const INITIAL_SAMPLES: usize = 30;
const MAX_SIMS: usize = 55;

fn main() -> Result<(), BoError> {
    let problem = ChargePumpProblem::new();
    println!(
        "charge-pump sizing: 36 design variables, {} PVT corners, {} simulations",
        problem.bench().corners().len(),
        MAX_SIMS
    );

    let config = BoConfig::new(INITIAL_SAMPLES, MAX_SIMS).with_seed(3);
    let ensemble = EnsembleConfig {
        members: 3,
        member_config: NeuralGpConfig {
            epochs: 100,
            ..NeuralGpConfig::default()
        },
        parallel: true,
    };
    let result = BayesOpt::neural_with(config, ensemble).run(&problem)?;

    match result.best() {
        Some((x, eval)) => {
            let perf = problem.performances(x);
            println!("\nbest feasible design:");
            println!("  FOM       = {:.3} uA (objective)", eval.objective);
            println!("  diff1     = {:.3} uA (spec < 20)", perf.diff1);
            println!("  diff2     = {:.3} uA (spec < 20)", perf.diff2);
            println!("  diff3     = {:.3} uA (spec < 5)", perf.diff3);
            println!("  diff4     = {:.3} uA (spec < 5)", perf.diff4);
            println!("  deviation = {:.3} uA (spec < 5)", perf.deviation);
            println!(
                "\nconvergence: first feasible at simulation {:?}, best reached by simulation {:?}",
                result.first_feasible_at(),
                result.simulations_to_converge(0.05)
            );
        }
        None => println!("no feasible design found within the budget — increase MAX_SIMS"),
    }
    Ok(())
}
