//! Two-stage operational-amplifier sizing (the paper's Table-I workload).
//!
//! Sizes the 10-variable two-stage Miller op-amp for maximum gain subject to
//! UGF > 40 MHz and PM > 60°, using the neural-GP Bayesian optimizer, and prints
//! the circuit performances of the best design found.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p nnbo-bench --example opamp_sizing
//! ```
//!
//! Increase `MAX_SIMS` (e.g. to the paper's 100) for better designs at the cost of
//! a longer run.

use nnbo_core::problems::OpAmpProblem;
use nnbo_core::{BayesOpt, BoConfig, BoError, EnsembleConfig, NeuralGpConfig};

const INITIAL_SAMPLES: usize = 20;
const MAX_SIMS: usize = 45;

fn main() -> Result<(), BoError> {
    let problem = OpAmpProblem::new();

    let config = BoConfig::new(INITIAL_SAMPLES, MAX_SIMS).with_seed(7);
    let ensemble = EnsembleConfig {
        members: 3,
        member_config: NeuralGpConfig {
            epochs: 120,
            ..NeuralGpConfig::default()
        },
        parallel: true,
    };
    println!(
        "sizing the two-stage op-amp: {} initial samples, {} total simulations",
        INITIAL_SAMPLES, MAX_SIMS
    );
    let result = BayesOpt::neural_with(config, ensemble).run(&problem)?;

    match result.best() {
        Some((x, eval)) => {
            let perf = problem.performances(x);
            let phys = problem.bench().denormalize(x);
            println!(
                "\nbest feasible design (found after {:?} sims to first feasible):",
                result.first_feasible_at()
            );
            println!("  GAIN = {:.2} dB", -eval.objective);
            println!("  UGF  = {:.2} MHz (spec > 40 MHz)", perf.ugf_hz / 1e6);
            println!("  PM   = {:.2} deg (spec > 60 deg)", perf.pm_deg);
            println!("  power = {:.2} mW", perf.power_w * 1e3);
            println!("\ndevice sizes:");
            let names = [
                "W1 (diff pair)",
                "L1",
                "W3 (mirror)",
                "L3",
                "W5 (tail)",
                "L5",
                "W6 (2nd stage)",
                "L6",
                "Cc",
                "Ibias",
            ];
            for (name, value) in names.iter().zip(phys.iter()) {
                if name.starts_with('W') || name.starts_with('L') {
                    println!("  {name:<16} = {:.2} um", value * 1e6);
                } else if *name == "Cc" {
                    println!("  {name:<16} = {:.2} pF", value * 1e12);
                } else {
                    println!("  {name:<16} = {:.2} uA", value * 1e6);
                }
            }
        }
        None => println!("no feasible design found within the budget — increase MAX_SIMS"),
    }
    Ok(())
}
