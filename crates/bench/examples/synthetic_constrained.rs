//! Algorithm shoot-out on synthetic constrained benchmarks.
//!
//! Runs the paper's method and the three baselines (WEIBO, GASPAD, DE) on the
//! constrained Branin and Gardner-sine problems with a small budget, and prints a
//! comparison table — a fast, circuit-free way to see the sample-efficiency gap the
//! paper reports.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p nnbo-bench --example synthetic_constrained
//! ```

use nnbo_baselines::{weibo, DeConfig, DifferentialEvolution, Gaspad, GaspadConfig};
use nnbo_core::problems::{ConstrainedBranin, GardnerSine, Problem};
use nnbo_core::{BayesOpt, BoConfig, EnsembleConfig, NeuralGpConfig, OptimizationResult};

const INIT: usize = 10;
const BUDGET_BO: usize = 35;
const BUDGET_EVOLUTIONARY: usize = 80;

fn main() {
    let problems: Vec<(&str, Box<dyn Problem>)> = vec![
        ("constrained-branin", Box::new(ConstrainedBranin::new())),
        ("gardner-sine", Box::new(GardnerSine::new())),
    ];
    for (name, problem) in &problems {
        println!("== {name} ==");
        println!(
            "  {:<10} {:>8} {:>12} {:>16}",
            "algorithm", "budget", "best value", "first feasible"
        );
        for (alg, result) in run_all(problem.as_ref()) {
            println!(
                "  {:<10} {:>8} {:>12} {:>16}",
                alg,
                result.num_evaluations(),
                result
                    .best_objective()
                    .map(|v| format!("{v:.4}"))
                    .unwrap_or_else(|| "-".to_string()),
                result
                    .first_feasible_at()
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        println!();
    }
}

fn run_all(problem: &dyn Problem) -> Vec<(&'static str, OptimizationResult)> {
    let ensemble = EnsembleConfig {
        members: 3,
        member_config: NeuralGpConfig {
            epochs: 100,
            ..NeuralGpConfig::default()
        },
        parallel: true,
    };
    let ours = BayesOpt::neural_with(BoConfig::new(INIT, BUDGET_BO).with_seed(1), ensemble)
        .run(problem)
        .expect("neural BO failed");
    let weibo_result = weibo(BoConfig::new(INIT, BUDGET_BO).with_seed(1))
        .run(problem)
        .expect("WEIBO failed");
    let gaspad =
        Gaspad::new(GaspadConfig::new(INIT, BUDGET_EVOLUTIONARY).with_seed(1)).run(problem);
    let de = DifferentialEvolution::new(DeConfig::new(INIT, BUDGET_EVOLUTIONARY).with_seed(1))
        .run(problem);
    vec![
        ("Ours", ours),
        ("WEIBO", weibo_result),
        ("GASPAD", gaspad),
        ("DE", de),
    ]
}
