//! Surrogate-model comparison: neural GP vs. classical GP.
//!
//! Fits both surrogates on the same op-amp simulation data and compares held-out
//! prediction accuracy and wall-clock cost — the motivation of the paper's
//! neural-network kernel (§III.A and §III.D).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p nnbo-bench --example surrogate_comparison
//! ```

use std::time::Instant;

use nnbo_circuits::{TwoStageOpAmp, OPAMP_DIM};
use nnbo_core::{latin_hypercube, NeuralGp, NeuralGpConfig, SurrogateModel};
use nnbo_gp::{GpConfig, GpModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let bench = TwoStageOpAmp::new();
    let mut rng = StdRng::seed_from_u64(17);

    // Training and held-out sets of op-amp gain observations.
    let train_x = latin_hypercube(120, OPAMP_DIM, &mut rng);
    let train_y: Vec<f64> = train_x
        .iter()
        .map(|x| bench.evaluate_normalized(x).gain_db)
        .collect();
    let test_x = latin_hypercube(200, OPAMP_DIM, &mut rng);
    let test_y: Vec<f64> = test_x
        .iter()
        .map(|x| bench.evaluate_normalized(x).gain_db)
        .collect();

    // Classical GP.
    let t0 = Instant::now();
    let gp = GpModel::fit(&train_x, &train_y, &GpConfig::default(), &mut rng)
        .expect("GP training failed");
    let gp_time = t0.elapsed();
    let gp_rmse = rmse(test_x.iter().map(|x| gp.predict(x).mean), &test_y);

    // Neural GP (the paper's surrogate).
    let t0 = Instant::now();
    let nngp = NeuralGp::fit(&train_x, &train_y, &NeuralGpConfig::default(), &mut rng)
        .expect("neural GP training failed");
    let nngp_time = t0.elapsed();
    let nngp_rmse = rmse(test_x.iter().map(|x| nngp.predict(x).mean), &test_y);

    println!(
        "surrogate comparison on {} op-amp gain samples (held-out set of {}):",
        train_x.len(),
        test_x.len()
    );
    println!(
        "  {:<12} {:>12} {:>16}",
        "model", "RMSE (dB)", "training time"
    );
    println!(
        "  {:<12} {:>12.3} {:>14.1?}",
        "classic GP", gp_rmse, gp_time
    );
    println!(
        "  {:<12} {:>12.3} {:>14.1?}",
        "neural GP", nngp_rmse, nngp_time
    );
    println!();
    println!(
        "prediction cost: the neural GP factorizes an {}x{} matrix regardless of N,",
        nngp.feature_dim(),
        nngp.feature_dim()
    );
    println!(
        "the classic GP back-solves against all {} training points.",
        gp.len()
    );
}

fn rmse(predictions: impl Iterator<Item = f64>, targets: &[f64]) -> f64 {
    let mut acc = 0.0;
    let mut n = 0usize;
    for (p, t) in predictions.zip(targets.iter()) {
        acc += (p - t) * (p - t);
        n += 1;
    }
    (acc / n as f64).sqrt()
}
