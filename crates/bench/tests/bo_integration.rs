//! Cross-crate integration tests: every optimizer through the full stack on
//! synthetic constrained problems.

use nnbo_baselines::{weibo, DeConfig, DifferentialEvolution, Gaspad, GaspadConfig, RandomSearch};
use nnbo_core::problems::{ConstrainedBranin, GardnerSine, Hartmann6, Problem};
use nnbo_core::{BayesOpt, BoConfig, EnsembleConfig, NeuralGpConfig, RunStatistics, RunSummary};

fn fast_ensemble() -> EnsembleConfig {
    EnsembleConfig {
        members: 2,
        member_config: NeuralGpConfig {
            epochs: 60,
            ..NeuralGpConfig::fast()
        },
        parallel: false,
    }
}

#[test]
fn neural_bo_beats_random_search_on_constrained_branin() {
    let problem = ConstrainedBranin::new();
    let budget = 30;
    let mut bo_best = Vec::new();
    let mut random_best = Vec::new();
    for seed in 0..3u64 {
        let bo = BayesOpt::neural_with(BoConfig::fast(10, budget).with_seed(seed), fast_ensemble())
            .run(&problem)
            .expect("bo run");
        bo_best.push(bo.best_objective().expect("feasible"));
        let rs = RandomSearch::new(budget, seed).run(&problem);
        random_best.push(rs.best_objective().unwrap_or(f64::INFINITY));
    }
    let bo_mean: f64 = bo_best.iter().sum::<f64>() / bo_best.len() as f64;
    let rs_mean: f64 = random_best.iter().sum::<f64>() / random_best.len() as f64;
    assert!(
        bo_mean <= rs_mean + 0.5,
        "BO mean {bo_mean} should not lose to random search mean {rs_mean}"
    );
}

#[test]
fn all_four_algorithms_complete_on_gardner_sine() {
    let problem = GardnerSine::new();
    let ours = BayesOpt::neural_with(BoConfig::fast(8, 16).with_seed(1), fast_ensemble())
        .run(&problem)
        .expect("ours");
    let wb = weibo(BoConfig::fast(8, 16).with_seed(1))
        .run(&problem)
        .expect("weibo");
    let gp = Gaspad::new(GaspadConfig::new(8, 16).with_seed(1)).run(&problem);
    let de = DifferentialEvolution::new(DeConfig::new(8, 40).with_seed(1)).run(&problem);
    for (name, result) in [("ours", &ours), ("weibo", &wb), ("gaspad", &gp)] {
        assert_eq!(result.num_evaluations(), 16, "{name} budget mismatch");
    }
    assert_eq!(de.num_evaluations(), 40);
}

#[test]
fn statistics_aggregate_repeated_runs() {
    let problem = Hartmann6::new();
    let mut summaries = Vec::new();
    for seed in 0..3u64 {
        let result = BayesOpt::neural_with(BoConfig::fast(10, 18).with_seed(seed), fast_ensemble())
            .run(&problem)
            .expect("run");
        summaries.push(RunSummary::from_result(&result, 1e-3));
    }
    let stats = RunStatistics::from_summaries(&summaries).expect("some run succeeded");
    assert_eq!(stats.runs, 3);
    assert_eq!(stats.successes, 3);
    assert!(stats.best <= stats.median && stats.median <= stats.worst);
    assert!(
        stats.mean < 0.0,
        "Hartmann6 values are negative near the optimum"
    );
}

#[test]
fn weibo_and_neural_bo_share_the_same_loop_semantics() {
    // Identical configuration and seed: both methods evaluate the same initial
    // design (the surrogates only influence the model-guided phase).
    let problem = ConstrainedBranin::new();
    let config = BoConfig::fast(9, 12).with_seed(33);
    let ours = BayesOpt::neural_with(config.clone(), fast_ensemble())
        .run(&problem)
        .expect("ours");
    let wb = weibo(config).run(&problem).expect("weibo");
    for i in 0..9 {
        assert_eq!(
            ours.evaluations()[i].1.objective,
            wb.evaluations()[i].1.objective,
            "initial design diverged at sample {i}"
        );
    }
}

#[test]
fn unconstrained_problem_reports_every_point_feasible() {
    let problem = Hartmann6::new();
    assert_eq!(problem.num_constraints(), 0);
    let result = BayesOpt::neural_with(BoConfig::fast(8, 12).with_seed(2), fast_ensemble())
        .run(&problem)
        .expect("run");
    assert!(result.evaluations().iter().all(|(_, e)| e.is_feasible()));
    assert_eq!(result.first_feasible_at(), Some(1));
}
