//! End-to-end circuit-synthesis integration tests: the optimizer driving the
//! circuit-simulation substrate, exactly as in the paper's experiments (at reduced
//! budgets so the test-suite stays fast).

use nnbo_circuits::PvtCorner;
use nnbo_core::problems::{ChargePumpProblem, OpAmpProblem, Problem};
use nnbo_core::{BayesOpt, BoConfig, EnsembleConfig, NeuralGpConfig};

fn fast_ensemble() -> EnsembleConfig {
    EnsembleConfig {
        members: 2,
        member_config: NeuralGpConfig {
            epochs: 60,
            ..NeuralGpConfig::fast()
        },
        parallel: false,
    }
}

#[test]
fn opamp_sizing_finds_a_feasible_high_gain_design() {
    let problem = OpAmpProblem::new();
    let result = BayesOpt::neural_with(BoConfig::fast(18, 30).with_seed(5), fast_ensemble())
        .run(&problem)
        .expect("op-amp sizing run failed");
    let (x, eval) = result.best().expect("a feasible op-amp design exists");
    let perf = problem.performances(x);
    assert!(perf.ugf_hz > 40e6, "UGF {} violates the spec", perf.ugf_hz);
    assert!(perf.pm_deg > 60.0, "PM {} violates the spec", perf.pm_deg);
    assert!(
        -eval.objective > 60.0,
        "gain {} dB is implausibly low",
        -eval.objective
    );
}

#[test]
fn opamp_objective_improves_over_the_initial_design() {
    let problem = OpAmpProblem::new();
    let result = BayesOpt::neural_with(BoConfig::fast(15, 28).with_seed(9), fast_ensemble())
        .run(&problem)
        .expect("run failed");
    let best = result.best_objective().expect("feasible design");
    let initial_best = result.evaluations()[..15]
        .iter()
        .filter(|(_, e)| e.is_feasible())
        .map(|(_, e)| e.objective)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best <= initial_best,
        "model-guided phase ({best}) did not improve on the initial design ({initial_best})"
    );
}

#[test]
fn charge_pump_nominal_corner_sizing_reaches_feasibility() {
    // Use the nominal corner only so the test stays cheap; the full 18-corner
    // problem is exercised by the reproduction harness.
    let bench = nnbo_circuits::ChargePump::with_corners(vec![PvtCorner::nominal()]);
    let problem = ChargePumpProblem::from_bench(bench);
    assert_eq!(problem.dim(), 36);
    let result = BayesOpt::neural_with(BoConfig::fast(20, 32).with_seed(11), fast_ensemble())
        .run(&problem)
        .expect("charge-pump sizing run failed");
    let (x, eval) = result.best().expect("a feasible charge-pump design exists");
    let perf = problem.performances(x);
    assert!(perf.feasible());
    assert!(
        eval.objective < 15.0,
        "FOM {} is implausibly high",
        eval.objective
    );
}

#[test]
fn full_18_corner_charge_pump_problem_is_consistent() {
    let problem = ChargePumpProblem::new();
    let x = vec![0.6; 36];
    let eval = problem.evaluate(&x);
    let perf = problem.performances(&x);
    // The worst case over 18 corners can only be as good as the nominal corner.
    let nominal = ChargePumpProblem::from_bench(nnbo_circuits::ChargePump::with_corners(vec![
        PvtCorner::nominal(),
    ]));
    let nominal_eval = nominal.evaluate(&x);
    assert!(eval.objective >= nominal_eval.objective - 1e-9);
    assert_eq!(eval.is_feasible(), perf.feasible());
}
