//! Smoke tests of the reproduction harness itself (tiny protocols): the same entry
//! points the `reproduce` binary uses for Tables I/II, the scaling study and the
//! ablations.

use nnbo_bench::{
    format_table1, format_table2, run_ablation_ensemble, run_scaling, run_table1, run_table2,
    Protocol,
};

/// A protocol small enough to finish in seconds.
fn tiny(initial: usize, bo: usize, gaspad: usize, de: usize) -> Protocol {
    Protocol {
        runs: 1,
        initial_samples: initial,
        max_sims_bo: bo,
        max_sims_gaspad: gaspad,
        max_sims_de: de,
        ensemble_members: 2,
        epochs: 30,
        candidate_pool: 48,
        seed: 7,
    }
}

#[test]
fn table1_rows_cover_all_five_algorithms() {
    let rows = run_table1(&tiny(8, 12, 14, 40)).expect("table 1 runs");
    assert_eq!(rows.len(), 5);
    let names: Vec<_> = rows.iter().map(|r| r.algorithm.as_str()).collect();
    assert_eq!(names, vec!["Ours", "WEIBO", "LinEasyBO", "GASPAD", "DE"]);
    for row in &rows {
        // Gain statistics are plausible dB numbers whenever a run succeeded.
        if !row.mean_gain.is_nan() {
            assert!(row.mean_gain > 20.0 && row.mean_gain < 120.0, "{row:?}");
            assert!(row.best_gain >= row.worst_gain);
        }
    }
    let text = format_table1(&rows);
    assert!(text.contains("Ours") && text.contains("DE"));
}

#[test]
fn table2_rows_report_constraint_metrics() {
    let rows = run_table2(&tiny(10, 14, 16, 40)).expect("table 2 runs");
    assert_eq!(rows.len(), 5);
    for row in &rows {
        if !row.mean_fom.is_nan() {
            assert!(row.mean_fom > 0.0, "{row:?}");
            assert!(row.diff1 >= 0.0 && row.deviation >= 0.0);
        }
    }
    let text = format_table2(&rows);
    assert!(text.contains("deviation"));
}

#[test]
fn scaling_study_shows_gp_training_growing_faster_than_neural_gp() {
    let points = run_scaling(&[40, 160], 20).expect("scaling study runs");
    assert_eq!(points.len(), 2);
    let gp_growth = points[1].gp_fit_ms / points[0].gp_fit_ms;
    let nn_growth = points[1].neural_fit_ms / points[0].neural_fit_ms;
    // 4x more data: the O(N³) GP should grow clearly faster than the O(N) neural GP.
    assert!(
        gp_growth > nn_growth,
        "GP growth {gp_growth:.2}x vs neural GP growth {nn_growth:.2}x"
    );
}

#[test]
fn ensemble_ablation_produces_one_row_per_setting() {
    let rows =
        run_ablation_ensemble(&tiny(8, 11, 12, 20), &[1, 2]).expect("ensemble ablation runs");
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].setting, "K = 1");
    assert!(rows.iter().any(|r| r.stats.is_some()));
}

#[test]
fn environment_overrides_change_the_protocol() {
    // NNBO_RUNS / NNBO_MAX_SIMS are read by `with_env_overrides`; simulate the
    // override by setting the variables for the duration of this test.
    std::env::set_var("NNBO_RUNS", "5");
    std::env::set_var("NNBO_MAX_SIMS", "77");
    let p = Protocol::table1_quick().with_env_overrides(Protocol::table1_paper());
    std::env::remove_var("NNBO_RUNS");
    std::env::remove_var("NNBO_MAX_SIMS");
    assert_eq!(p.runs, 5);
    assert_eq!(p.max_sims_bo, 77);
}
