//! End-to-end surrogate-lifecycle harness: pins the full
//! suggest → append → drift-check → refit cycle of the Bayesian-optimization
//! loop under *both* kernel dispatch paths (packed AVX2+FMA with the fused
//! `exp` prediction kernel, and the portable scalar fallback), so future
//! kernel or policy work cannot silently change BO behaviour.
//!
//! The tests live in their own integration-test binary because
//! [`nnbo_linalg::force_portable_kernels`] is a process-global switch; a
//! mutex serialises every test that touches it.  The "golden" contract is
//! three-fold:
//!
//! 1. **Determinism** — a seeded run reproduces its entire evaluation
//!    trajectory bit for bit on whichever path is active, and the two paths
//!    draw the identical (model-free) initial design.
//! 2. **Policy equivalences** — `RefitPolicy::NllDrift` with `threshold = 0`
//!    reproduces always-refit (`Fixed(1)`) suggestions bit-identically, and
//!    the deprecated `with_refit_every(k)` shim reproduces
//!    `RefitPolicy::Fixed(k)` — on both dispatch paths.
//! 3. **Drift economics** — the drift policy performs measurably fewer full
//!    refits than always-refit at equal observation count while its final
//!    likelihood stays within a tight band of the always-refit one
//!    (`run_refit_lifecycle`, the same decision rule the loop applies).

use std::sync::Mutex;

use nnbo_baselines::GpSurrogateTrainer;
use nnbo_bench::run_refit_lifecycle;
use nnbo_core::problems::ConstrainedBranin;
use nnbo_core::{BayesOpt, BoConfig, OptimizationResult, RefitPolicy};
use nnbo_gp::GpConfig;
use nnbo_linalg::force_portable_kernels;

static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    DISPATCH_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` with the portable kernels forced, restoring the automatic
/// dispatch afterwards (also on panic).
fn with_portable<T>(f: impl FnOnce() -> T) -> T {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            force_portable_kernels(false);
        }
    }
    let _restore = Restore;
    force_portable_kernels(true);
    f()
}

fn weibo_run(seed: u64, budget: usize, policy: RefitPolicy) -> OptimizationResult {
    BayesOpt::with_trainer(
        BoConfig::fast(8, budget)
            .with_seed(seed)
            .with_refit_policy(policy),
        GpSurrogateTrainer::fast(),
    )
    .run(&ConstrainedBranin::new())
    .expect("WEIBO run")
}

/// Structural golden invariants every healthy run satisfies on any path.
fn assert_run_invariants(result: &OptimizationResult, budget: usize, best_bound: f64) {
    assert_eq!(result.num_evaluations(), budget);
    for (x, _) in result.evaluations() {
        assert!(x.iter().all(|v| (0.0..=1.0).contains(v)), "point {x:?}");
    }
    let curve = result.convergence_curve();
    for w in curve.windows(2) {
        assert!(w[1] <= w[0], "incumbent trajectory must be monotone");
    }
    let best = result.best_objective().expect("feasible point found");
    assert!(
        best < best_bound,
        "Branin best {best} is far from the optimum"
    );
}

#[test]
fn seeded_runs_are_golden_deterministic_on_both_dispatch_paths() {
    let _guard = serial();
    let budget = 16;
    let run = || weibo_run(33, budget, RefitPolicy::Fixed(1));
    let packed_a = run();
    let packed_b = run();
    assert_eq!(
        packed_a.evaluations(),
        packed_b.evaluations(),
        "active-path rerun diverged"
    );
    assert_eq!(packed_a.full_refits(), packed_b.full_refits());
    assert_run_invariants(&packed_a, budget, 6.0);

    let (portable_a, portable_b) = with_portable(|| (run(), run()));
    assert_eq!(
        portable_a.evaluations(),
        portable_b.evaluations(),
        "portable-path rerun diverged"
    );
    assert_run_invariants(&portable_a, budget, 6.0);

    // The model-free initial design depends only on the rng, so the two
    // dispatch paths must agree on it bit for bit; the model-guided tail may
    // differ in argmax rounding, but both must optimize.
    assert_eq!(
        &packed_a.evaluations()[..8],
        &portable_a.evaluations()[..8],
        "initial design differs between dispatch paths"
    );
}

#[test]
fn zero_threshold_drift_reproduces_always_refit_on_both_dispatch_paths() {
    let _guard = serial();
    let budget = 14;
    let zero_drift = RefitPolicy::NllDrift {
        threshold: 0.0,
        min_gap: 1,
        max_gap: 1000,
    };
    let check = || {
        let always = weibo_run(51, budget, RefitPolicy::Fixed(1));
        let drift = weibo_run(51, budget, zero_drift);
        assert_eq!(
            always.evaluations(),
            drift.evaluations(),
            "threshold = 0 must reproduce always-refit bit-identically"
        );
        assert_eq!(always.full_refits(), drift.full_refits());
    };
    check();
    with_portable(check);
}

#[test]
fn deprecated_refit_every_shim_matches_fixed_policy_end_to_end() {
    let _guard = serial();
    let budget = 14;
    let check = || {
        #[allow(deprecated)]
        let shim_config = BoConfig::fast(8, budget).with_seed(62).with_refit_every(4);
        let shim = BayesOpt::with_trainer(shim_config, GpSurrogateTrainer::fast())
            .run(&ConstrainedBranin::new())
            .expect("shim run");
        let fixed = weibo_run(62, budget, RefitPolicy::Fixed(4));
        assert_eq!(shim.evaluations(), fixed.evaluations());
        assert_eq!(shim.full_refits(), fixed.full_refits());
    };
    check();
    with_portable(check);
}

#[test]
fn drift_policy_saves_full_refits_at_matched_final_quality() {
    let _guard = serial();
    // The exact decision rule the loop applies, driven over a growing
    // observation stream long enough for the policies to diverge.
    let (xs, targets) = nnbo_bench::fit_dataset(72, 6, 17);
    let ys = &targets[0];
    let config = GpConfig {
        max_iters: 40,
        warm_iters: 12,
        ..GpConfig::default()
    };
    let policy = RefitPolicy::NllDrift {
        threshold: 0.01,
        min_gap: 1,
        max_gap: 16,
    };
    let check = || {
        let fixed = run_refit_lifecycle(&xs, ys, &config, RefitPolicy::Fixed(1), 24, 5)
            .expect("fixed-policy lifecycle runs");
        let drift =
            run_refit_lifecycle(&xs, ys, &config, policy, 24, 5).expect("drift lifecycle runs");
        assert_eq!(
            fixed.full_refits,
            xs.len() - 24,
            "Fixed(1) refits each step"
        );
        assert!(
            drift.full_refits < fixed.full_refits,
            "drift performed {} full refits vs always-refit's {}",
            drift.full_refits,
            fixed.full_refits
        );
        assert!(fixed.final_nll.is_finite() && drift.final_nll.is_finite());
        // Final quality stays in a tight band of always-refit (per-point).
        let per_point_gap = (drift.final_nll - fixed.final_nll).abs() / xs.len() as f64;
        assert!(
            per_point_gap < 0.05,
            "drift final NLL {} vs always-refit {} (per-point gap {per_point_gap})",
            drift.final_nll,
            fixed.final_nll
        );
    };
    check();
    with_portable(check);
}

#[test]
fn neural_loop_runs_the_drift_policy_end_to_end_on_the_active_path() {
    let _guard = serial();
    // The paper's own surrogate (neural-GP ensemble) through the same
    // lifecycle: suggest → append (rank-1, NLL refreshed) → drift check →
    // warm refit, on whichever kernel path the machine dispatches.
    use nnbo_core::EnsembleConfig;
    let result = BayesOpt::neural_with(
        BoConfig::fast(8, 18)
            .with_seed(3)
            .with_refit_policy(RefitPolicy::nll_drift(0.25)),
        EnsembleConfig::fast(),
    )
    .run(&ConstrainedBranin::new())
    .expect("neural drift run");
    assert_run_invariants(&result, 18, 12.0);
    assert!(
        result.full_refits() <= 10,
        "drift policy refitted {} times in 10 iterations",
        result.full_refits()
    );
}
