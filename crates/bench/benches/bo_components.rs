//! Criterion benchmark of the Bayesian-optimization building blocks: acquisition
//! evaluation, ensemble prediction, and one full surrogate-fit + proposal step.

use criterion::{criterion_group, criterion_main, Criterion};
use nnbo_core::acquisition::{self, AcquisitionKind};
use nnbo_core::problems::{ConstrainedBranin, Problem};
use nnbo_core::{
    BayesOpt, BoConfig, EnsembleConfig, NeuralGpConfig, NeuralGpEnsemble, Prediction,
    SurrogateModel,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_acquisition(c: &mut Criterion) {
    let objective = Prediction::new(-0.5, 0.4);
    let constraints = vec![Prediction::new(-1.0, 0.2), Prediction::new(0.3, 0.5)];
    c.bench_function("wei_single_evaluation", |b| {
        b.iter(|| {
            acquisition::evaluate(
                AcquisitionKind::WeightedExpectedImprovement,
                &objective,
                &constraints,
                Some(0.0),
            )
        })
    });
}

fn bench_ensemble_prediction(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let xs: Vec<Vec<f64>> = (0..60)
        .map(|_| (0..6).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x: &Vec<f64>| x.iter().sum::<f64>().sin())
        .collect();
    let config = EnsembleConfig {
        members: 5,
        member_config: NeuralGpConfig {
            epochs: 40,
            ..NeuralGpConfig::default()
        },
        parallel: false,
    };
    let ensemble = NeuralGpEnsemble::fit(&xs, &ys, &config, &mut rng).expect("ensemble fit");
    let query = vec![0.3; 6];
    c.bench_function("ensemble_predict_k5", |b| {
        b.iter(|| ensemble.predict(&query))
    });
}

fn bench_bo_iteration(c: &mut Criterion) {
    // One complete small BO run on the constrained Branin problem — dominated by the
    // per-iteration surrogate refits, i.e. the cost the paper's complexity analysis
    // is about.
    let problem = ConstrainedBranin::new();
    assert_eq!(problem.dim(), 2);
    let mut group = c.benchmark_group("bo_run");
    group.sample_size(10);
    group.bench_function("neural_bo_8_plus_4_iterations", |b| {
        b.iter(|| {
            let config = BoConfig::fast(8, 12).with_seed(9);
            let ensemble = EnsembleConfig {
                members: 3,
                member_config: NeuralGpConfig {
                    epochs: 40,
                    ..NeuralGpConfig::fast()
                },
                parallel: false,
            };
            BayesOpt::neural_with(config, ensemble)
                .run(&problem)
                .expect("bo run")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_acquisition, bench_ensemble_prediction, bench_bo_iteration
}
criterion_main!(benches);
