//! Criterion benchmark for experiment E3: surrogate training / prediction cost as a
//! function of the number of observations (classic GP vs. neural GP).
//!
//! This regenerates the complexity claims of §III.D of the paper: classical GP
//! training scales as O(N³) and prediction as O(N²), while the neural GP scales
//! linearly in N for training and has constant prediction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nnbo_core::{NeuralGp, NeuralGpConfig, SurrogateModel};
use nnbo_gp::{GpConfig, GpModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x: &Vec<f64>| {
            x.iter()
                .enumerate()
                .map(|(i, v)| (i as f64 + 1.0) * v.sin())
                .sum()
        })
        .collect();
    (xs, ys)
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("surrogate_training");
    group.sample_size(10);
    for &n in &[50usize, 100, 200] {
        let (xs, ys) = dataset(n, 10, 7);
        let gp_config = GpConfig {
            restarts: 1,
            max_iters: 20,
            ..GpConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("classic_gp_fit", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                GpModel::fit(&xs, &ys, &gp_config, &mut rng).expect("gp fit")
            })
        });
        let nn_config = NeuralGpConfig {
            epochs: 50,
            ..NeuralGpConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("neural_gp_fit", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                NeuralGp::fit(&xs, &ys, &nn_config, &mut rng).expect("neural gp fit")
            })
        });
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("surrogate_prediction");
    for &n in &[50usize, 100, 200, 400] {
        let (xs, ys) = dataset(n, 10, 11);
        let mut rng = StdRng::seed_from_u64(2);
        let gp = GpModel::fit(
            &xs,
            &ys,
            &GpConfig {
                restarts: 1,
                max_iters: 10,
                ..GpConfig::default()
            },
            &mut rng,
        )
        .expect("gp fit");
        let nngp = NeuralGp::fit(
            &xs,
            &ys,
            &NeuralGpConfig {
                epochs: 20,
                ..NeuralGpConfig::default()
            },
            &mut rng,
        )
        .expect("neural gp fit");
        let query = vec![0.4; 10];
        group.bench_with_input(BenchmarkId::new("classic_gp_predict", n), &n, |b, _| {
            b.iter(|| gp.predict(&query))
        });
        group.bench_with_input(BenchmarkId::new("neural_gp_predict", n), &n, |b, _| {
            b.iter(|| nngp.predict(&query))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2)).sample_size(10);
    targets = bench_training, bench_prediction
}
criterion_main!(benches);
