//! Criterion benchmark of the blocked/batched/incremental surrogate hot path
//! against the reference implementations it replaced.
//!
//! Mirrors the comparisons of `reproduce linalg` (which additionally emits the
//! machine-readable `BENCH_linalg.json`):
//!
//! * blocked vs naive `matmul` / `matmul_transpose` at N ∈ {64, 256, 1024}
//! * packed AVX2+FMA micro-kernels vs the portable blocked-scalar kernels
//!   (`micro_kernels` group: matmul, SYRK, symmetric inverse) at the same
//!   sizes, toggled through the runtime dispatch
//! * blocked vs reference Cholesky at the same sizes
//! * rank-1 bordered Cholesky append vs full refactorization at N = 512
//! * batched vs per-point GP / neural-GP prediction of 512 candidates at 256
//!   training points

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nnbo_core::{NeuralGp, NeuralGpConfig, SurrogateModel};
use nnbo_gp::{GpConfig, GpModel};
use nnbo_linalg::{Cholesky, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(n: usize, m: usize, rng: &mut StdRng) -> Matrix {
    let data: Vec<f64> = (0..n * m).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Matrix::from_vec(n, m, data)
}

fn random_spd(n: usize, rng: &mut StdRng) -> Matrix {
    let b = random_matrix(n, n, rng);
    let mut a = b.matmul_transpose(&b);
    a.add_diag(n as f64);
    a
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        let a = random_matrix(n, n, &mut rng);
        let b = random_matrix(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| a.matmul_naive(&b))
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b))
        });
        group.bench_with_input(BenchmarkId::new("transpose_naive", n), &n, |bench, _| {
            bench.iter(|| a.matmul_transpose_naive(&b))
        });
        group.bench_with_input(BenchmarkId::new("transpose_blocked", n), &n, |bench, _| {
            bench.iter(|| a.matmul_transpose(&b))
        });
    }
    group.finish();
}

fn bench_micro_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(23);
    let mut group = c.benchmark_group("micro_kernels");
    group.sample_size(10);
    for &n in &[256usize, 512, 1024] {
        let a = random_matrix(n, n, &mut rng);
        let b = random_matrix(n, n, &mut rng);
        let spd = random_spd(n, &mut rng);
        let chol = Cholesky::decompose(&spd).expect("SPD");
        let mut inv = Matrix::zeros(n, n);
        let mut work = Matrix::zeros(n, n);
        group.bench_with_input(BenchmarkId::new("matmul_portable", n), &n, |bench, _| {
            nnbo_linalg::force_portable_kernels(true);
            bench.iter(|| a.matmul(&b));
            nnbo_linalg::force_portable_kernels(false);
        });
        group.bench_with_input(BenchmarkId::new("matmul_dispatch", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b))
        });
        group.bench_with_input(BenchmarkId::new("syrk_portable", n), &n, |bench, _| {
            nnbo_linalg::force_portable_kernels(true);
            bench.iter(|| a.transpose_matmul_self());
            nnbo_linalg::force_portable_kernels(false);
        });
        group.bench_with_input(BenchmarkId::new("syrk_dispatch", n), &n, |bench, _| {
            bench.iter(|| a.transpose_matmul_self())
        });
        group.bench_with_input(BenchmarkId::new("inverse_dense", n), &n, |bench, _| {
            bench.iter(|| chol.inverse_into(&mut inv))
        });
        group.bench_with_input(BenchmarkId::new("inverse_symmetric", n), &n, |bench, _| {
            bench.iter(|| chol.symmetric_inverse_into(&mut inv, &mut work))
        });
    }
    group.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let mut group = c.benchmark_group("cholesky");
    group.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        let spd = random_spd(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |bench, _| {
            bench.iter(|| Cholesky::decompose_reference(&spd).expect("SPD"))
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| Cholesky::decompose(&spd).expect("SPD"))
        });
    }
    group.finish();
}

fn bench_cholesky_append(c: &mut Criterion) {
    let n = 512;
    let mut rng = StdRng::seed_from_u64(17);
    let spd = random_spd(n + 1, &mut rng);
    let mut small = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            small[(i, j)] = spd[(i, j)];
        }
    }
    let border: Vec<f64> = (0..=n).map(|j| spd[(n, j)]).collect();
    let base = Cholesky::decompose(&small).expect("SPD");

    let mut group = c.benchmark_group("cholesky_append_512");
    group.sample_size(10);
    group.bench_function("full_refactorization", |bench| {
        bench.iter(|| Cholesky::decompose(&spd).expect("SPD"))
    });
    group.bench_function("rank1_append", |bench| {
        bench.iter(|| {
            let mut chol = base.clone();
            chol.append_row(&border).expect("SPD border");
            chol
        })
    });
    group.finish();
}

fn bench_predict_batch(c: &mut Criterion) {
    let (train_n, batch, dim) = (256usize, 512usize, 10usize);
    let mut rng = StdRng::seed_from_u64(19);
    let xs: Vec<Vec<f64>> = (0..train_n)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| {
            x.iter()
                .enumerate()
                .map(|(i, v)| ((i + 1) as f64 * v).sin())
                .sum()
        })
        .collect();
    let queries: Vec<Vec<f64>> = (0..batch)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();

    let gp_config = GpConfig {
        restarts: 1,
        max_iters: 10,
        ..GpConfig::default()
    };
    let mut fit_rng = StdRng::seed_from_u64(1);
    let gp = GpModel::fit(&xs, &ys, &gp_config, &mut fit_rng).expect("gp fit");
    let nn_config = NeuralGpConfig {
        epochs: 40,
        ..NeuralGpConfig::default()
    };
    let mut fit_rng = StdRng::seed_from_u64(2);
    let neural = NeuralGp::fit(&xs, &ys, &nn_config, &mut fit_rng).expect("neural gp fit");

    let mut group = c.benchmark_group("predict_512_at_n256");
    group.sample_size(10);
    group.bench_function("gp_per_point", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for q in &queries {
                acc += gp.predict(q).mean;
            }
            acc
        })
    });
    group.bench_function("gp_batched", |bench| {
        bench.iter(|| gp.predict_batch(&queries))
    });
    group.bench_function("neural_per_point", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for q in &queries {
                acc += neural.predict(q).mean;
            }
            acc
        })
    });
    group.bench_function("neural_batched", |bench| {
        bench.iter(|| neural.predict_batch(&queries))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_micro_kernels,
    bench_cholesky,
    bench_cholesky_append,
    bench_predict_batch
);
criterion_main!(benches);
