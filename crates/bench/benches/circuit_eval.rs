//! Criterion benchmark of the circuit-simulation substrate: cost of one "HSPICE
//! call" substitute for each of the paper's two testbenches, plus the underlying
//! DC/AC engine on a reference amplifier.

use criterion::{criterion_group, criterion_main, Criterion};
use nnbo_circuits::{
    AcAnalysis, AcSweep, ChargePump, Circuit, DcAnalysis, Element, MosTransistor, MosfetModel,
    SmallSignalCircuit, TwoStageOpAmp, CHARGE_PUMP_DIM, GROUND, OPAMP_DIM,
};

fn bench_testbenches(c: &mut Criterion) {
    let opamp = TwoStageOpAmp::new();
    let x10 = vec![0.55; OPAMP_DIM];
    c.bench_function("opamp_evaluate", |b| {
        b.iter(|| opamp.evaluate_normalized(&x10))
    });

    let pump = ChargePump::new();
    let x36 = vec![0.5; CHARGE_PUMP_DIM];
    c.bench_function("chargepump_evaluate_18_corners", |b| {
        b.iter(|| pump.evaluate_normalized(&x36))
    });
}

fn bench_simulator(c: &mut Criterion) {
    // Nonlinear DC + linearised AC of a common-source amplifier.
    let mut ckt = Circuit::new();
    let vdd = ckt.add_node();
    let gate = ckt.add_node();
    let out = ckt.add_node();
    ckt.add(Element::VoltageSource {
        plus: vdd,
        minus: GROUND,
        volts: 1.8,
    });
    ckt.add(Element::VoltageSource {
        plus: gate,
        minus: GROUND,
        volts: 0.55,
    });
    ckt.add(Element::Resistor {
        a: vdd,
        b: out,
        ohms: 20e3,
    });
    ckt.add(Element::Capacitor {
        a: out,
        b: GROUND,
        farads: 1e-12,
    });
    ckt.add(Element::Mosfet {
        drain: out,
        gate,
        source: GROUND,
        transistor: MosTransistor::new(MosfetModel::nmos_180nm(), 20e-6, 1e-6),
    });

    c.bench_function("dc_newton_operating_point", |b| {
        b.iter(|| DcAnalysis::new().solve(&ckt).expect("dc"))
    });

    let dc = DcAnalysis::new().solve(&ckt).expect("dc");
    let ss = SmallSignalCircuit::linearize(&ckt, &dc, gate, out);
    let analysis = AcAnalysis::new(AcSweep {
        start_hz: 10.0,
        stop_hz: 1e9,
        points_per_decade: 20,
    });
    c.bench_function("ac_sweep_bode_metrics", |b| {
        b.iter(|| analysis.bode_metrics(&ss).expect("ac"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2)).sample_size(10);
    targets = bench_testbenches, bench_simulator
}
criterion_main!(benches);
