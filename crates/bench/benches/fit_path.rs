//! Criterion benchmark for the fit path: cold multi-restart GP fits vs
//! warm-started refits, sequential per-output fits vs the shared-context
//! multi-output `fit_multi`, and cold vs warm-started neural-GP ensemble
//! refits — the regression guard for the fit-path work pinned in
//! `BENCH_fit.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nnbo_bench::fit_dataset;
use nnbo_core::{EnsembleConfig, NeuralGpConfig, NeuralGpEnsemble};
use nnbo_gp::{GpConfig, GpModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_config() -> GpConfig {
    GpConfig {
        restarts: 2,
        max_iters: 30,
        warm_iters: 10,
        ..GpConfig::default()
    }
}

fn bench_warm_vs_cold_refit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_path_refit");
    group.sample_size(10);
    let config = bench_config();
    for &n in &[64usize, 128] {
        let (xs, targets) = fit_dataset(n, 10, 3);
        let ys = &targets[0];
        let mut rng = StdRng::seed_from_u64(5);
        let prev = GpModel::fit(&xs, ys, &config, &mut rng).expect("initial fit");
        group.bench_with_input(BenchmarkId::new("cold_refit", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(6);
                GpModel::fit(&xs, ys, &config, &mut rng).expect("cold refit")
            })
        });
        group.bench_with_input(BenchmarkId::new("warm_refit", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(6);
                GpModel::fit_warm(&xs, ys, &config, &mut rng, Some(prev.hyper_params()))
                    .expect("warm refit")
            })
        });
    }
    group.finish();
}

fn bench_multi_output_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_path_multi_output");
    group.sample_size(10);
    let config = bench_config();
    let n = 96;
    let (xs, targets) = fit_dataset(n, 10, 4);
    group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            targets
                .iter()
                .map(|ys| GpModel::fit(&xs, ys, &config, &mut rng).expect("sequential fit"))
                .collect::<Vec<_>>()
        })
    });
    group.bench_with_input(BenchmarkId::new("shared_context", n), &n, |b, _| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            GpModel::fit_multi(&xs, &targets, &config, &mut rng).expect("fit_multi")
        })
    });
    group.finish();
}

fn bench_ensemble_warm_refit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_path_ensemble");
    group.sample_size(10);
    let config = EnsembleConfig {
        members: 2,
        member_config: NeuralGpConfig {
            epochs: 30,
            warm_epochs: 10,
            ..NeuralGpConfig::fast()
        },
        parallel: false,
    };
    // prev is trained on n−1 points and the refit sees one appended
    // observation, mirroring the BO loop's refresh (refitting on identical
    // data would let the gradient-RMS early stop fire immediately and
    // overstate the warm speedup).
    let n = 48;
    let (xs, targets) = fit_dataset(n, 10, 9);
    let ys = &targets[0];
    let xs_base: Vec<Vec<f64>> = xs[..n - 1].to_vec();
    let ys_base: Vec<f64> = ys[..n - 1].to_vec();
    let mut rng = StdRng::seed_from_u64(5);
    let prev =
        NeuralGpEnsemble::fit(&xs_base, &ys_base, &config, &mut rng).expect("initial ensemble fit");
    group.bench_with_input(BenchmarkId::new("cold_refit", n), &n, |b, _| {
        b.iter(|| {
            NeuralGpEnsemble::fit(&xs, ys, &config, &mut StdRng::seed_from_u64(6))
                .expect("cold ensemble refit")
        })
    });
    group.bench_with_input(BenchmarkId::new("warm_refit", n), &n, |b, _| {
        b.iter(|| {
            NeuralGpEnsemble::fit_warm(&xs, ys, &config, &mut StdRng::seed_from_u64(6), Some(&prev))
                .expect("warm ensemble refit")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_warm_vs_cold_refit,
    bench_multi_output_fit,
    bench_ensemble_warm_refit
);
criterion_main!(benches);
