//! Experimental protocols (paper-scale and CI-scale) and environment overrides.

use nnbo_core::{BoConfig, EnsembleConfig, NeuralGpConfig};
use serde::{Deserialize, Serialize};

/// The optimizers compared in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// The paper's method: BO with the neural-GP ensemble surrogate ("Ours").
    NeuralBo,
    /// WEIBO: BO with the classical GP surrogate.
    Weibo,
    /// LinEasyBO: WEIBO's surrogate with the one-dimensional line-subspace
    /// acquisition search (arXiv 2109.00617) — the high-dimensional baseline.
    LinEasyBo,
    /// GASPAD-style surrogate-assisted evolutionary search.
    Gaspad,
    /// Plain differential evolution.
    De,
}

impl Algorithm {
    /// All five algorithms, in the column order of the reports (the paper's
    /// four plus the LinEasyBO subspace baseline).
    pub fn all() -> [Algorithm; 5] {
        [
            Algorithm::NeuralBo,
            Algorithm::Weibo,
            Algorithm::LinEasyBo,
            Algorithm::Gaspad,
            Algorithm::De,
        ]
    }

    /// Display name used in the reports.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::NeuralBo => "Ours",
            Algorithm::Weibo => "WEIBO",
            Algorithm::LinEasyBo => "LinEasyBO",
            Algorithm::Gaspad => "GASPAD",
            Algorithm::De => "DE",
        }
    }
}

/// The protocol of one experiment: repetition count, budgets per algorithm and the
/// surrogate settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Protocol {
    /// Number of repeated runs per algorithm.
    pub runs: usize,
    /// Initial (space-filling) samples for the BO methods.
    pub initial_samples: usize,
    /// Simulation budget of the BO methods (Ours and WEIBO).
    pub max_sims_bo: usize,
    /// Simulation budget of GASPAD.
    pub max_sims_gaspad: usize,
    /// Simulation budget of DE.
    pub max_sims_de: usize,
    /// Ensemble size K of the neural-GP surrogate.
    pub ensemble_members: usize,
    /// Training epochs of each neural-GP member.
    pub epochs: usize,
    /// Acquisition candidate-pool size of the BO methods.
    pub candidate_pool: usize,
    /// Base random seed; run `r` of an algorithm uses `seed + r`.
    pub seed: u64,
}

impl Protocol {
    /// The paper's Table-I protocol (two-stage op-amp): 10 runs, 30 initial samples,
    /// 100 simulations for the BO methods, 200 for GASPAD and 1100 for DE.
    pub fn table1_paper() -> Self {
        Protocol {
            runs: 10,
            initial_samples: 30,
            max_sims_bo: 100,
            max_sims_gaspad: 200,
            max_sims_de: 1100,
            ensemble_members: 5,
            epochs: 200,
            candidate_pool: 1024,
            seed: 2019,
        }
    }

    /// A reduced Table-I protocol that finishes in minutes on one core.
    pub fn table1_quick() -> Self {
        Protocol {
            runs: 3,
            initial_samples: 20,
            max_sims_bo: 50,
            max_sims_gaspad: 80,
            max_sims_de: 400,
            ensemble_members: 3,
            epochs: 100,
            candidate_pool: 256,
            seed: 2019,
        }
    }

    /// The paper's Table-II protocol (charge pump): 12 runs, 100 initial samples,
    /// 790 simulations for the BO methods, ≈2300 for GASPAD and ≈1500 for DE.
    pub fn table2_paper() -> Self {
        Protocol {
            runs: 12,
            initial_samples: 100,
            max_sims_bo: 790,
            max_sims_gaspad: 2328,
            max_sims_de: 1538,
            ensemble_members: 5,
            epochs: 200,
            candidate_pool: 1024,
            seed: 40,
        }
    }

    /// A reduced Table-II protocol for CI-scale runs.
    pub fn table2_quick() -> Self {
        Protocol {
            runs: 2,
            initial_samples: 40,
            max_sims_bo: 90,
            max_sims_gaspad: 140,
            max_sims_de: 400,
            ensemble_members: 3,
            epochs: 80,
            candidate_pool: 192,
            seed: 40,
        }
    }

    /// Applies the environment overrides used by the `reproduce` binary:
    /// `NNBO_FULL=1` switches to the paper protocol, `NNBO_RUNS` and
    /// `NNBO_MAX_SIMS` override the repetition count and the BO budget.
    pub fn with_env_overrides(mut self, paper: Self) -> Self {
        if std::env::var("NNBO_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            self = paper;
        }
        if let Ok(runs) = std::env::var("NNBO_RUNS") {
            if let Ok(runs) = runs.parse::<usize>() {
                self.runs = runs.max(1);
            }
        }
        if let Ok(sims) = std::env::var("NNBO_MAX_SIMS") {
            if let Ok(sims) = sims.parse::<usize>() {
                self.max_sims_bo = sims.max(self.initial_samples + 1);
            }
        }
        self
    }

    /// The BO-loop configuration for run index `run`.
    pub fn bo_config(&self, run: usize) -> BoConfig {
        let mut config =
            BoConfig::new(self.initial_samples, self.max_sims_bo).with_seed(self.seed + run as u64);
        config.candidate_pool = self.candidate_pool;
        config.local_candidates = (self.candidate_pool / 4).max(16);
        config
    }

    /// The neural-GP ensemble configuration for this protocol.
    pub fn ensemble_config(&self) -> EnsembleConfig {
        EnsembleConfig {
            members: self.ensemble_members,
            member_config: NeuralGpConfig {
                epochs: self.epochs,
                ..NeuralGpConfig::default()
            },
            parallel: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_protocols_match_the_published_budgets() {
        let t1 = Protocol::table1_paper();
        assert_eq!(t1.runs, 10);
        assert_eq!(t1.initial_samples, 30);
        assert_eq!(t1.max_sims_bo, 100);
        assert_eq!(t1.ensemble_members, 5);
        let t2 = Protocol::table2_paper();
        assert_eq!(t2.runs, 12);
        assert_eq!(t2.initial_samples, 100);
        assert_eq!(t2.max_sims_bo, 790);
    }

    #[test]
    fn bo_config_derives_seed_from_run_index() {
        let p = Protocol::table1_quick();
        assert_ne!(p.bo_config(0).seed, p.bo_config(1).seed);
        assert_eq!(p.bo_config(2).max_evaluations, p.max_sims_bo);
        assert_eq!(p.ensemble_config().members, p.ensemble_members);
    }

    #[test]
    fn algorithm_names_are_stable() {
        assert_eq!(Algorithm::NeuralBo.name(), "Ours");
        assert_eq!(Algorithm::LinEasyBo.name(), "LinEasyBO");
        assert_eq!(Algorithm::all().len(), 5);
    }
}
