//! Shared framing for the hand-written `BENCH_*.json` documents (the
//! workspace's serde is an offline no-op stand-in, so the emitters build the
//! JSON text themselves; this module keeps the document skeleton in one
//! place).

/// Builds a `BENCH_*.json` document: a `schema` / `generated_by` / `quick` /
/// `isa` / `cores` header plus one array named `array_name` whose elements
/// are the pre-rendered `rows` (each a complete JSON value, no trailing
/// comma).
///
/// `isa` is the kernel path the runtime dispatch selected
/// ([`nnbo_linalg::kernel_isa`]) and `cores` the hardware parallelism — the
/// two facts needed to interpret a benchmark trajectory across machines
/// (single-core boxes cannot show threading wins; non-AVX2 boxes cannot show
/// micro-kernel wins).
pub(crate) fn document(
    schema: &str,
    subcommand: &str,
    quick: bool,
    array_name: &str,
    rows: &[String],
) -> String {
    document_sections(schema, subcommand, quick, &[(array_name, rows)])
}

/// Like [`document`], but with several named arrays in one document — the
/// multi-experiment reports (`BENCH_table2.json`, `BENCH_scaling.json`) keep
/// their main table and the high-dimensional companion study side by side.
pub(crate) fn document_sections(
    schema: &str,
    subcommand: &str,
    quick: bool,
    sections: &[(&str, &[String])],
) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{schema}\",\n"));
    out.push_str(&format!(
        "  \"generated_by\": \"cargo run --release -p nnbo-bench --bin reproduce -- {subcommand}\",\n"
    ));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"isa\": \"{}\",\n", nnbo_linalg::kernel_isa()));
    out.push_str(&format!("  \"cores\": {cores},\n"));
    for (si, (array_name, rows)) in sections.iter().enumerate() {
        out.push_str(&format!("  \"{array_name}\": [\n"));
        for (i, row) in rows.iter().enumerate() {
            out.push_str("    ");
            out.push_str(row);
            out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
        }
        out.push_str(if si + 1 == sections.len() {
            "  ]\n"
        } else {
            "  ],\n"
        });
    }
    out.push_str("}\n");
    out
}

/// Formats a float as a JSON value (`null` for NaN/∞, which JSON cannot
/// represent — the tables use NaN for "no successful run").
pub(crate) fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_frames_rows_with_commas_between() {
        let doc = document(
            "s-v1",
            "fit",
            true,
            "entries",
            &["{\"a\": 1}".to_string(), "{\"a\": 2}".to_string()],
        );
        assert!(doc.contains("\"schema\": \"s-v1\""));
        assert!(doc.contains("reproduce -- fit"));
        assert!(doc.contains("\"isa\": \""));
        assert!(doc.contains("\"cores\": "));
        assert!(doc.contains("{\"a\": 1},\n"));
        assert!(doc.contains("{\"a\": 2}\n"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn multi_section_documents_emit_every_named_array() {
        let a = ["{\"x\": 1}".to_string()];
        let b = ["{\"y\": 2}".to_string(), "{\"y\": 3}".to_string()];
        let doc = document_sections(
            "s-v2",
            "table2",
            false,
            &[("rows", &a[..]), ("highdim", &b[..])],
        );
        assert!(doc.contains("\"rows\": [\n"));
        assert!(doc.contains("\"highdim\": [\n"));
        assert!(doc.contains("  ],\n"), "sections are comma-separated");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn number_encodes_non_finite_as_null() {
        assert_eq!(number(1.25), "1.2500");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
